"""Independent per-column sampler.

Samples every column independently from its empirical marginal distribution
(bootstrap for continuous columns with a small jitter, categorical draws by
empirical frequency).  It has perfect marginal fidelity but destroys all
cross-attribute structure, which makes it a useful sanity floor for the
distance / validity / utility comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Synthesizer
from repro.engine import sampling_rng
from repro.tabular.table import Table

__all__ = ["IndependentSampler"]


class IndependentSampler(Synthesizer):
    """Per-column empirical-marginal sampler."""

    name = "INDEPENDENT"

    def __init__(self, jitter: float = 0.01, seed: int = 0) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.jitter = jitter
        self.seed = seed
        self._table: Table | None = None
        self._fitted = False

    def fit(self, table: Table, **kwargs) -> "IndependentSampler":
        if table.n_rows == 0:
            raise ValueError("cannot fit on an empty table")
        self._table = table
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #
    # Artifact-state protocol (repro.serve)
    # ------------------------------------------------------------------ #
    def artifact_state(self) -> dict:
        self._require_fitted(self._fitted)
        assert self._table is not None
        return {
            "jitter": self.jitter,
            "seed": self.seed,
            # The empirical marginals *are* the model; the fitted table (a
            # schema plus plain numpy columns) is the exact state.
            "table": self._table,
        }

    def restore_state(self, state: dict) -> None:
        self.jitter = float(state["jitter"])
        self.seed = int(state["seed"])
        self._table = state["table"]
        self._fitted = True

    def artifact_networks(self) -> dict:
        self._require_fitted(self._fitted)
        return {}

    def sample(
        self, n: int, conditions: dict | None = None, rng: np.random.Generator | None = None
    ) -> Table:
        self._require_fitted(self._fitted)
        if conditions:
            raise ValueError("IndependentSampler does not support conditions")
        if n <= 0:
            raise ValueError("n must be positive")
        assert self._table is not None
        rng = rng if rng is not None else sampling_rng(self.seed)
        columns: dict[str, np.ndarray] = {}
        for spec in self._table.schema:
            values = self._table.column(spec.name)
            indices = rng.integers(0, len(values), size=n)
            sampled = values[indices]
            if spec.is_continuous:
                numeric = sampled.astype(np.float64)
                scale = float(numeric.std()) * self.jitter
                if scale > 0:
                    numeric = numeric + rng.normal(0.0, scale, size=n)
                if spec.minimum is not None:
                    numeric = np.maximum(numeric, spec.minimum)
                if spec.maximum is not None:
                    numeric = np.minimum(numeric, spec.maximum)
                columns[spec.name] = numeric
            else:
                columns[spec.name] = sampled
        return Table(self._table.schema, columns)
