"""TableGAN baseline (Park et al., VLDB 2018).

TableGAN is an *unconditional* GAN over min-max scaled features with two
auxiliary losses on top of the adversarial game:

* an **information loss** matching the first and second moments of the
  generated batch to those of the real batch, and
* a **classification loss**: an auxiliary classifier is trained on real data
  to predict the label column from the remaining features, and the generator
  is penalised when the classifier disagrees with the label its own sample
  carries (semantic-integrity constraint).

We keep the convolution-free MLP formulation appropriate for flow records.
The epoch/batch loop runs through :class:`repro.engine.TrainingEngine`;
this module contributes only the adversarial + auxiliary-loss step.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Synthesizer
from repro.core.config import KiNETGANConfig
from repro.core.discriminator import DataDiscriminator
from repro.core.generator import ConditionalGenerator
from repro.engine import RecordMetric, TrainingEngine, TrainStep, sampling_rng, seeded_rng
from repro.neural.losses import BinaryCrossEntropy
from repro.neural.network import Sequential
from repro.neural.optimizers import Adam
from repro.tabular.table import Table
from repro.tabular.transformer import DataTransformer

__all__ = ["TableGAN"]

_EPS = 1e-6


class _TableGANStep(TrainStep):
    """One TableGAN round: discriminator, classifier, then generator."""

    def __init__(self, model: "TableGAN", data: np.ndarray, opt_c: Adam | None) -> None:
        config = model.config
        self.model = model
        self.data = data
        self.bce = BinaryCrossEntropy(from_logits=True)
        self.opt_g = Adam(model.generator.parameters(), lr=config.generator_lr, betas=(0.5, 0.9))
        self.opt_d = Adam(
            model.discriminator.parameters(), lr=config.discriminator_lr, betas=(0.5, 0.9)
        )
        self.opt_c = opt_c

    def step(self, rng: np.random.Generator, batch_index: int) -> dict[str, float]:
        model = self.model
        config = model.config
        bce = self.bce
        real = self.data[rng.integers(0, len(self.data), size=config.batch_size)]
        noise = rng.normal(size=(config.batch_size, config.embedding_dim))
        fake = model.generator.forward(noise, None, training=True)

        # Discriminator update.
        model.discriminator.zero_grad()
        logits_real = model.discriminator.forward(real, None, training=True)
        loss_d = bce.forward(logits_real, np.ones_like(logits_real))
        model.discriminator.backward(bce.backward())
        logits_fake = model.discriminator.forward(fake, None, training=True)
        loss_d += bce.forward(logits_fake, np.zeros_like(logits_fake))
        model.discriminator.backward(bce.backward())
        self.opt_d.step()

        # Classifier update (real data only).
        if model.classifier is not None and self.opt_c is not None:
            features, _label_target = model._split_label(real)
            model.classifier.zero_grad()
            logits = model.classifier.forward(features, None, training=True)
            target = model._binary_label_target(real)
            class_loss = bce.forward(logits, target)
            model.classifier.backward(bce.backward())
            self.opt_c.step()
        else:
            class_loss = 0.0

        # Generator update: adversarial + information + classification.
        noise = rng.normal(size=(config.batch_size, config.embedding_dim))
        fake = model.generator.forward(noise, None, training=True)
        logits_fake = model.discriminator.forward(fake, None, training=True)
        loss_g = bce.forward(logits_fake, np.ones_like(logits_fake))
        grad_fake = model.discriminator.backward(bce.backward())
        model.discriminator.zero_grad()

        info_loss, grad_info = model._information_loss(real, fake)
        grad_total = grad_fake + model.info_weight * grad_info

        if model.classifier is not None:
            class_g_loss, grad_class = model._classification_loss(fake, bce)
            grad_total = grad_total + model.class_weight * grad_class
        else:
            class_g_loss = 0.0

        model.generator.zero_grad()
        model.generator.backward(grad_total)
        self.opt_g.step()
        return {"loss": loss_d + loss_g + info_loss + class_loss + class_g_loss}

    def checkpoint_targets(self) -> dict[str, Sequential]:
        targets = {
            "generator": self.model.generator.network,
            "discriminator": self.model.discriminator.network,
        }
        if self.model.classifier is not None:
            targets["classifier"] = self.model.classifier.network
        return targets


class TableGAN(Synthesizer):
    """Unconditional GAN with information and classification losses."""

    name = "TABLEGAN"

    def __init__(
        self,
        config: KiNETGANConfig | None = None,
        label_column: str | None = None,
        info_weight: float = 1.0,
        class_weight: float = 1.0,
    ) -> None:
        base = config if config is not None else KiNETGANConfig()
        # TableGAN scales continuous features to [-1, 1] rather than using
        # mode-specific normalisation.
        self.config = base.with_overrides(continuous_encoding="minmax")
        self.label_column = label_column
        self.info_weight = info_weight
        self.class_weight = class_weight
        self.transformer: DataTransformer | None = None
        self.generator: ConditionalGenerator | None = None
        self.discriminator: DataDiscriminator | None = None
        self.classifier: DataDiscriminator | None = None
        self._label_slice: slice | None = None
        self.loss_history: list[float] = []
        self._fitted = False

    # ------------------------------------------------------------------ #
    def fit(self, table: Table, label_column: str | None = None, **kwargs) -> "TableGAN":
        config = self.config
        rng = seeded_rng(config.seed)
        self._rng = rng
        if label_column is not None:
            self.label_column = label_column
        if self.label_column is None:
            # Fall back to the last categorical column, which is the label in
            # both bundled datasets.
            categorical = table.schema.categorical_names
            self.label_column = categorical[-1] if categorical else None

        self.transformer = DataTransformer(
            max_modes=config.max_modes,
            continuous_encoding="minmax",
            seed=config.seed,
        ).fit(table)
        data = self.transformer.transform(table, rng=rng)
        if self.label_column is not None and self.label_column in table.schema.names:
            info = self.transformer.column_info(self.label_column)
            self._label_slice = slice(info.start, info.end)
        self._build_networks(rng)

        # Auxiliary classifier over the non-label features.
        opt_c = None
        if self.classifier is not None:
            opt_c = Adam(self.classifier.parameters(), lr=config.discriminator_lr)

        step = _TableGANStep(self, data, opt_c)
        engine = TrainingEngine(
            step,
            epochs=config.epochs,
            batch_size=config.batch_size,
            n_rows=len(data),
            rng=rng,
            callbacks=[RecordMetric(self.loss_history, "loss")]
            + config.engine_callbacks(prefix="[TableGAN]"),
        )
        engine.run()
        self._fitted = True
        return self

    def _build_networks(self, rng: np.random.Generator) -> None:
        """Construct generator / discriminator / classifier over the
        fitted transformer (``_label_slice`` must already be resolved)."""
        assert self.transformer is not None
        config = self.config
        data_dim = self.transformer.output_dim
        self.generator = ConditionalGenerator(
            noise_dim=config.embedding_dim,
            condition_dim=0,
            transformer=self.transformer,
            hidden_dims=config.generator_dims,
            gumbel_tau=config.gumbel_tau,
            rng=rng,
        )
        self.discriminator = DataDiscriminator(
            data_dim=data_dim,
            condition_dim=0,
            hidden_dims=config.discriminator_dims,
            dropout=config.dropout,
            rng=rng,
        )
        if self._label_slice is not None:
            feature_dim = data_dim - (self._label_slice.stop - self._label_slice.start)
            self.classifier = DataDiscriminator(
                data_dim=feature_dim,
                condition_dim=0,
                hidden_dims=(64,),
                dropout=0.0,
                rng=rng,
            )

    # ------------------------------------------------------------------ #
    # Artifact-state protocol (repro.serve)
    # ------------------------------------------------------------------ #
    def artifact_state(self) -> dict:
        self._require_fitted(self._fitted)
        assert self.transformer is not None
        label_slice = self._label_slice
        return {
            "config": self.config,
            "label_column": self.label_column,
            "info_weight": self.info_weight,
            "class_weight": self.class_weight,
            "label_slice": (
                (label_slice.start, label_slice.stop) if label_slice is not None else None
            ),
            "transformer": self.transformer.artifact_state(),
        }

    def restore_state(self, state: dict) -> None:
        self.config = state["config"]
        self.label_column = state["label_column"]
        self.info_weight = float(state["info_weight"])
        self.class_weight = float(state["class_weight"])
        bounds = state["label_slice"]
        self._label_slice = slice(bounds[0], bounds[1]) if bounds is not None else None
        self.transformer = DataTransformer.from_artifact_state(state["transformer"])
        self._build_networks(seeded_rng(self.config.seed))
        self._fitted = True

    def artifact_networks(self) -> dict[str, Sequential]:
        self._require_fitted(self._fitted)
        assert self.generator is not None and self.discriminator is not None
        networks = {
            "generator": self.generator.network,
            "discriminator": self.discriminator.network,
        }
        if self.classifier is not None:
            networks["classifier"] = self.classifier.network
        return networks

    # ------------------------------------------------------------------ #
    def _split_label(self, matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        assert self._label_slice is not None
        label = matrix[:, self._label_slice]
        features = np.concatenate(
            [matrix[:, : self._label_slice.start], matrix[:, self._label_slice.stop :]], axis=1
        )
        return features, label

    def _binary_label_target(self, matrix: np.ndarray) -> np.ndarray:
        """Binary target: is the row's label the majority (first) category?"""
        assert self._label_slice is not None
        label_block = matrix[:, self._label_slice]
        return (label_block.argmax(axis=1) == 0).astype(np.float64)[:, None]

    def _information_loss(
        self, real: np.ndarray, fake: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Moment-matching loss and its gradient with respect to ``fake``."""
        batch = fake.shape[0]
        mean_diff = fake.mean(axis=0) - real.mean(axis=0)
        std_diff = fake.std(axis=0) - real.std(axis=0)
        loss = float((mean_diff**2).sum() + (std_diff**2).sum())
        fake_std = fake.std(axis=0) + _EPS
        grad_mean = 2.0 * mean_diff / batch
        grad_std = 2.0 * std_diff * (fake - fake.mean(axis=0)) / (batch * fake_std)
        return loss, grad_mean[None, :] + grad_std

    def _classification_loss(
        self, fake: np.ndarray, bce: BinaryCrossEntropy
    ) -> tuple[float, np.ndarray]:
        """Semantic-integrity loss: classifier(features) should match the label."""
        assert self.classifier is not None and self._label_slice is not None
        features, _ = self._split_label(fake)
        target = self._binary_label_target(fake)
        logits = self.classifier.forward(features, None, training=True)
        loss = bce.forward(logits, target)
        grad_features = self.classifier.backward(bce.backward())
        self.classifier.zero_grad()
        grad = np.zeros_like(fake)
        grad[:, : self._label_slice.start] = grad_features[:, : self._label_slice.start]
        grad[:, self._label_slice.stop :] = grad_features[:, self._label_slice.start :]
        return loss, grad

    # ------------------------------------------------------------------ #
    def sample(
        self, n: int, conditions: dict | None = None, rng: np.random.Generator | None = None
    ) -> Table:
        self._require_fitted(self._fitted)
        if conditions:
            raise ValueError("TableGAN is unconditional and does not support conditions")
        if n <= 0:
            raise ValueError("n must be positive")
        assert self.generator is not None and self.transformer is not None
        rng = rng if rng is not None else sampling_rng(self.config.seed)
        outputs: list[np.ndarray] = []
        for start in range(0, n, self.config.batch_size):
            end = min(start + self.config.batch_size, n)
            noise = rng.normal(size=(end - start, self.config.embedding_dim))
            outputs.append(self.generator.forward(noise, None, training=False))
        hardened = self.transformer.harden(np.concatenate(outputs, axis=0), inplace=True)
        return self.transformer.inverse_transform(hardened)
