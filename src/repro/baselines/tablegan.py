"""TableGAN baseline (Park et al., VLDB 2018).

TableGAN is an *unconditional* GAN over min-max scaled features with two
auxiliary losses on top of the adversarial game:

* an **information loss** matching the first and second moments of the
  generated batch to those of the real batch, and
* a **classification loss**: an auxiliary classifier is trained on real data
  to predict the label column from the remaining features, and the generator
  is penalised when the classifier disagrees with the label its own sample
  carries (semantic-integrity constraint).

We keep the convolution-free MLP formulation appropriate for flow records.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Synthesizer
from repro.core.config import KiNETGANConfig
from repro.core.discriminator import DataDiscriminator
from repro.core.generator import ConditionalGenerator
from repro.neural.losses import BinaryCrossEntropy
from repro.neural.optimizers import Adam
from repro.tabular.table import Table
from repro.tabular.transformer import DataTransformer

__all__ = ["TableGAN"]

_EPS = 1e-6


class TableGAN(Synthesizer):
    """Unconditional GAN with information and classification losses."""

    name = "TABLEGAN"

    def __init__(
        self,
        config: KiNETGANConfig | None = None,
        label_column: str | None = None,
        info_weight: float = 1.0,
        class_weight: float = 1.0,
    ) -> None:
        base = config if config is not None else KiNETGANConfig()
        # TableGAN scales continuous features to [-1, 1] rather than using
        # mode-specific normalisation.
        self.config = base.with_overrides(continuous_encoding="minmax")
        self.label_column = label_column
        self.info_weight = info_weight
        self.class_weight = class_weight
        self.transformer: DataTransformer | None = None
        self.generator: ConditionalGenerator | None = None
        self.discriminator: DataDiscriminator | None = None
        self.classifier: DataDiscriminator | None = None
        self._label_slice: slice | None = None
        self.loss_history: list[float] = []
        self._fitted = False

    # ------------------------------------------------------------------ #
    def fit(self, table: Table, label_column: str | None = None, **kwargs) -> "TableGAN":
        config = self.config
        rng = np.random.default_rng(config.seed)
        self._rng = rng
        if label_column is not None:
            self.label_column = label_column
        if self.label_column is None:
            # Fall back to the last categorical column, which is the label in
            # both bundled datasets.
            categorical = table.schema.categorical_names
            self.label_column = categorical[-1] if categorical else None

        self.transformer = DataTransformer(
            max_modes=config.max_modes,
            continuous_encoding="minmax",
            seed=config.seed,
        ).fit(table)
        data = self.transformer.transform(table, rng=rng)
        data_dim = self.transformer.output_dim

        self.generator = ConditionalGenerator(
            noise_dim=config.embedding_dim,
            condition_dim=0,
            transformer=self.transformer,
            hidden_dims=config.generator_dims,
            gumbel_tau=config.gumbel_tau,
            rng=rng,
        )
        self.discriminator = DataDiscriminator(
            data_dim=data_dim,
            condition_dim=0,
            hidden_dims=config.discriminator_dims,
            dropout=config.dropout,
            rng=rng,
        )
        opt_g = Adam(self.generator.parameters(), lr=config.generator_lr, betas=(0.5, 0.9))
        opt_d = Adam(self.discriminator.parameters(), lr=config.discriminator_lr, betas=(0.5, 0.9))
        bce = BinaryCrossEntropy(from_logits=True)

        # Auxiliary classifier over the non-label features.
        opt_c = None
        feature_dim = data_dim
        if self.label_column is not None and self.label_column in table.schema.names:
            info = self.transformer.column_info(self.label_column)
            self._label_slice = slice(info.start, info.end)
            feature_dim = data_dim - (info.end - info.start)
            self.classifier = DataDiscriminator(
                data_dim=feature_dim,
                condition_dim=0,
                hidden_dims=(64,),
                dropout=0.0,
                rng=rng,
            )
            opt_c = Adam(self.classifier.parameters(), lr=config.discriminator_lr)

        steps_per_epoch = max(1, len(data) // config.batch_size)
        for _epoch in range(config.epochs):
            epoch_loss = 0.0
            for _ in range(steps_per_epoch):
                real = data[rng.integers(0, len(data), size=config.batch_size)]
                noise = rng.normal(size=(config.batch_size, config.embedding_dim))
                fake = self.generator.forward(noise, None, training=True)

                # Discriminator update.
                self.discriminator.zero_grad()
                logits_real = self.discriminator.forward(real, None, training=True)
                loss_d = bce.forward(logits_real, np.ones_like(logits_real))
                self.discriminator.backward(bce.backward())
                logits_fake = self.discriminator.forward(fake, None, training=True)
                loss_d += bce.forward(logits_fake, np.zeros_like(logits_fake))
                self.discriminator.backward(bce.backward())
                opt_d.step()

                # Classifier update (real data only).
                if self.classifier is not None and opt_c is not None:
                    features, label_target = self._split_label(real)
                    self.classifier.zero_grad()
                    logits = self.classifier.forward(features, None, training=True)
                    target = self._binary_label_target(real)
                    class_loss = bce.forward(logits, target)
                    self.classifier.backward(bce.backward())
                    opt_c.step()
                else:
                    class_loss = 0.0

                # Generator update: adversarial + information + classification.
                noise = rng.normal(size=(config.batch_size, config.embedding_dim))
                fake = self.generator.forward(noise, None, training=True)
                logits_fake = self.discriminator.forward(fake, None, training=True)
                loss_g = bce.forward(logits_fake, np.ones_like(logits_fake))
                grad_fake = self.discriminator.backward(bce.backward())
                self.discriminator.zero_grad()

                info_loss, grad_info = self._information_loss(real, fake)
                grad_total = grad_fake + self.info_weight * grad_info

                if self.classifier is not None:
                    class_g_loss, grad_class = self._classification_loss(fake, bce)
                    grad_total = grad_total + self.class_weight * grad_class
                else:
                    class_g_loss = 0.0

                self.generator.zero_grad()
                self.generator.backward(grad_total)
                opt_g.step()
                epoch_loss += loss_d + loss_g + info_loss + class_loss + class_g_loss
            self.loss_history.append(epoch_loss / steps_per_epoch)
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #
    def _split_label(self, matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        assert self._label_slice is not None
        label = matrix[:, self._label_slice]
        features = np.concatenate(
            [matrix[:, : self._label_slice.start], matrix[:, self._label_slice.stop :]], axis=1
        )
        return features, label

    def _binary_label_target(self, matrix: np.ndarray) -> np.ndarray:
        """Binary target: is the row's label the majority (first) category?"""
        assert self._label_slice is not None
        label_block = matrix[:, self._label_slice]
        return (label_block.argmax(axis=1) == 0).astype(np.float64)[:, None]

    def _information_loss(
        self, real: np.ndarray, fake: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Moment-matching loss and its gradient with respect to ``fake``."""
        batch = fake.shape[0]
        mean_diff = fake.mean(axis=0) - real.mean(axis=0)
        std_diff = fake.std(axis=0) - real.std(axis=0)
        loss = float((mean_diff**2).sum() + (std_diff**2).sum())
        fake_std = fake.std(axis=0) + _EPS
        grad_mean = 2.0 * mean_diff / batch
        grad_std = 2.0 * std_diff * (fake - fake.mean(axis=0)) / (batch * fake_std)
        return loss, grad_mean[None, :] + grad_std

    def _classification_loss(
        self, fake: np.ndarray, bce: BinaryCrossEntropy
    ) -> tuple[float, np.ndarray]:
        """Semantic-integrity loss: classifier(features) should match the label."""
        assert self.classifier is not None and self._label_slice is not None
        features, _ = self._split_label(fake)
        target = self._binary_label_target(fake)
        logits = self.classifier.forward(features, None, training=True)
        loss = bce.forward(logits, target)
        grad_features = self.classifier.backward(bce.backward())
        self.classifier.zero_grad()
        grad = np.zeros_like(fake)
        grad[:, : self._label_slice.start] = grad_features[:, : self._label_slice.start]
        grad[:, self._label_slice.stop :] = grad_features[:, self._label_slice.start :]
        return loss, grad

    # ------------------------------------------------------------------ #
    def sample(
        self, n: int, conditions: dict | None = None, rng: np.random.Generator | None = None
    ) -> Table:
        self._require_fitted(self._fitted)
        if conditions:
            raise ValueError("TableGAN is unconditional and does not support conditions")
        if n <= 0:
            raise ValueError("n must be positive")
        assert self.generator is not None and self.transformer is not None
        rng = rng if rng is not None else np.random.default_rng(self.config.seed + 1)
        outputs: list[np.ndarray] = []
        for start in range(0, n, self.config.batch_size):
            end = min(start + self.config.batch_size, n)
            noise = rng.normal(size=(end - start, self.config.embedding_dim))
            outputs.append(self.generator.forward(noise, None, training=False))
        matrix = np.concatenate(outputs, axis=0)
        hardened = matrix.copy()
        for start, end, activation in self.transformer.activation_spans():
            if activation != "softmax":
                continue
            block = hardened[:, start:end]
            one_hot = np.zeros_like(block)
            one_hot[np.arange(len(block)), block.argmax(axis=1)] = 1.0
            hardened[:, start:end] = one_hot
        return self.transformer.inverse_transform(hardened)
