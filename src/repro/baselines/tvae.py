"""TVAE baseline (Xu et al. 2019): a variational autoencoder for tabular data.

The encoder maps a transformed row to the mean and log-variance of a
Gaussian latent; the decoder maps a latent sample back to the transformed
representation (tanh scalars + softmax one-hot blocks).  Training minimises
the usual ELBO: per-span reconstruction loss (MSE for continuous scalars,
cross-entropy for one-hot blocks) plus the closed-form Gaussian KL.

The epoch/batch loop runs through :class:`repro.engine.TrainingEngine`;
this module contributes only the ELBO step.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Synthesizer
from repro.core.config import KiNETGANConfig
from repro.core.generator import TabularOutputActivation
from repro.engine import RecordMetric, TrainingEngine, TrainStep, sampling_rng, seeded_rng
from repro.neural.layers import Dense, ReLU
from repro.neural.losses import GaussianKLDivergence
from repro.neural.network import Sequential
from repro.neural.optimizers import Adam
from repro.tabular.table import Table
from repro.tabular.transformer import DataTransformer

__all__ = ["TVAE"]

_EPS = 1e-6


def _reconstruction_loss_and_grad(
    x_hat: np.ndarray, x: np.ndarray, spans: list[tuple[int, int, str]]
) -> tuple[float, np.ndarray]:
    """Span-aware reconstruction loss and gradient w.r.t. ``x_hat``."""
    grad = np.zeros_like(x_hat)
    total = 0.0
    batch = x_hat.shape[0]
    for start, end, activation in spans:
        prediction = x_hat[:, start:end]
        target = x[:, start:end]
        if activation == "tanh":
            diff = prediction - target
            total += float((diff**2).sum())
            grad[:, start:end] = 2.0 * diff
        else:
            p = np.clip(prediction, _EPS, 1.0 - _EPS)
            total += float(-(target * np.log(p)).sum())
            grad[:, start:end] = -target / p
    return total / batch, grad / batch


class _TVAEStep(TrainStep):
    """One ELBO descent step over a random mini-batch."""

    def __init__(self, model: "TVAE", data: np.ndarray) -> None:
        self.model = model
        self.data = data
        self.spans = model.transformer.activation_spans()
        self.kl_loss = GaussianKLDivergence()
        self.optimizer = Adam(
            model.encoder.parameters() + model.decoder.parameters(),
            lr=model.config.generator_lr,
        )

    def step(self, rng: np.random.Generator, batch_index: int) -> dict[str, float]:
        model = self.model
        latent_dim = model.latent_dim
        batch_idx = rng.integers(0, len(self.data), size=model.config.batch_size)
        x = self.data[batch_idx]

        stats = model.encoder.forward(x, training=True)
        mu = stats[:, :latent_dim]
        log_var = np.clip(stats[:, latent_dim:], -8.0, 8.0)
        eps = rng.normal(size=mu.shape)
        z = mu + eps * np.exp(0.5 * log_var)

        x_hat = model.decoder.forward(z, training=True)
        recon, grad_x_hat = _reconstruction_loss_and_grad(x_hat, x, self.spans)
        kl = self.kl_loss.forward(np.concatenate([mu, log_var], axis=1))
        grad_kl = self.kl_loss.backward()

        model.encoder.zero_grad()
        model.decoder.zero_grad()
        grad_z = model.decoder.backward(grad_x_hat)
        grad_mu = grad_z + model.kl_weight * grad_kl[:, :latent_dim]
        grad_log_var = (
            grad_z * eps * 0.5 * np.exp(0.5 * log_var)
            + model.kl_weight * grad_kl[:, latent_dim:]
        )
        model.encoder.backward(np.concatenate([grad_mu, grad_log_var], axis=1))
        self.optimizer.step()
        return {
            "loss": recon + model.kl_weight * kl,
            "reconstruction_loss": recon,
            "kl_loss": kl,
        }

    def checkpoint_targets(self) -> dict[str, Sequential]:
        return {"encoder": self.model.encoder, "decoder": self.model.decoder}


class TVAE(Synthesizer):
    """Tabular variational autoencoder."""

    name = "TVAE"

    def __init__(
        self,
        config: KiNETGANConfig | None = None,
        latent_dim: int = 32,
        kl_weight: float = 1.0,
    ) -> None:
        self.config = config if config is not None else KiNETGANConfig()
        self.latent_dim = latent_dim
        self.kl_weight = kl_weight
        self.transformer: DataTransformer | None = None
        self.encoder: Sequential | None = None
        self.decoder: Sequential | None = None
        self.loss_history: list[float] = []
        self._fitted = False

    # ------------------------------------------------------------------ #
    def fit(self, table: Table, **kwargs) -> "TVAE":
        config = self.config
        rng = seeded_rng(config.seed)
        self._rng = rng
        self.transformer = DataTransformer(
            max_modes=config.max_modes,
            continuous_encoding=config.continuous_encoding,
            seed=config.seed,
        ).fit(table)
        data = self.transformer.transform(table, rng=rng)
        self._build_networks(rng)

        step = _TVAEStep(self, data)
        engine = TrainingEngine(
            step,
            epochs=config.epochs,
            batch_size=config.batch_size,
            n_rows=len(data),
            rng=rng,
            callbacks=[RecordMetric(self.loss_history, "loss")]
            + config.engine_callbacks(prefix="[TVAE]"),
        )
        engine.run()
        self._fitted = True
        return self

    def _build_networks(self, rng: np.random.Generator) -> None:
        """Construct the encoder / decoder stacks over the fitted transformer."""
        assert self.transformer is not None
        config = self.config
        data_dim = self.transformer.output_dim
        hidden = config.generator_dims[0] if config.generator_dims else 128
        self.encoder = Sequential(
            [
                Dense(data_dim, hidden, rng=rng, init="he"),
                ReLU(),
                Dense(hidden, 2 * self.latent_dim, rng=rng, init="glorot"),
            ]
        )
        self.decoder = Sequential(
            [
                Dense(self.latent_dim, hidden, rng=rng, init="he"),
                ReLU(),
                Dense(hidden, data_dim, rng=rng, init="glorot"),
                TabularOutputActivation(self.transformer.activation_spans(), tau=1.0, rng=rng),
            ]
        )
        self.encoder.consolidate()
        self.decoder.consolidate()

    # ------------------------------------------------------------------ #
    # Artifact-state protocol (repro.serve)
    # ------------------------------------------------------------------ #
    def artifact_state(self) -> dict:
        self._require_fitted(self._fitted)
        assert self.transformer is not None
        return {
            "config": self.config,
            "latent_dim": self.latent_dim,
            "kl_weight": self.kl_weight,
            "transformer": self.transformer.artifact_state(),
        }

    def restore_state(self, state: dict) -> None:
        self.config = state["config"]
        self.latent_dim = int(state["latent_dim"])
        self.kl_weight = float(state["kl_weight"])
        self.transformer = DataTransformer.from_artifact_state(state["transformer"])
        self._build_networks(seeded_rng(self.config.seed))
        self._fitted = True

    def artifact_networks(self) -> dict[str, Sequential]:
        self._require_fitted(self._fitted)
        assert self.encoder is not None and self.decoder is not None
        return {"encoder": self.encoder, "decoder": self.decoder}

    # ------------------------------------------------------------------ #
    def sample(
        self, n: int, conditions: dict | None = None, rng: np.random.Generator | None = None
    ) -> Table:
        self._require_fitted(self._fitted)
        if conditions:
            raise ValueError("TVAE is unconditional and does not support conditions")
        if n <= 0:
            raise ValueError("n must be positive")
        assert self.decoder is not None and self.transformer is not None
        rng = rng if rng is not None else sampling_rng(self.config.seed)
        outputs: list[np.ndarray] = []
        batch_size = self.config.batch_size
        for start in range(0, n, batch_size):
            end = min(start + batch_size, n)
            z = rng.normal(size=(end - start, self.latent_dim))
            outputs.append(self.decoder.forward(z, training=False))
        matrix = self.transformer.harden(np.concatenate(outputs, axis=0), inplace=True)
        return self.transformer.inverse_transform(matrix)
