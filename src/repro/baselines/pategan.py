"""PATE-GAN baseline (Jordon et al., ICLR 2019).

PATE-GAN trains ``k`` teacher discriminators on disjoint partitions of the
real data; the student discriminator never touches real data -- it is
trained on generated samples labelled by a *noisy majority vote* over the
teachers (the PATE mechanism, which is what provides the differential-privacy
guarantee); the generator plays against the student.  Every noisy vote
consumes privacy budget, which we track with simple (eps, 0)-composition of
the Laplace mechanism so the model can report a conservative epsilon.

The epoch/batch loop runs through :class:`repro.engine.TrainingEngine`;
this module contributes only the teachers/student/generator step.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Synthesizer
from repro.core.config import KiNETGANConfig
from repro.core.discriminator import DataDiscriminator
from repro.core.generator import ConditionalGenerator
from repro.engine import RecordMetric, TrainingEngine, TrainStep, sampling_rng, seeded_rng
from repro.neural.losses import BinaryCrossEntropy
from repro.neural.network import Sequential
from repro.neural.optimizers import Adam
from repro.tabular.table import Table
from repro.tabular.transformer import DataTransformer

__all__ = ["PATEGAN"]


class _PATEGANStep(TrainStep):
    """One PATE round: teacher updates, noisy-vote student update, generator."""

    def __init__(self, model: "PATEGAN", data: np.ndarray, partitions: list[np.ndarray]) -> None:
        config = model.config
        self.model = model
        self.data = data
        self.partitions = partitions
        self.teacher_batch = max(8, config.batch_size // model.num_teachers)
        self.bce = BinaryCrossEntropy(from_logits=True)
        self.opt_g = Adam(model.generator.parameters(), lr=config.generator_lr, betas=(0.5, 0.9))
        self.opt_s = Adam(model.student.parameters(), lr=config.discriminator_lr, betas=(0.5, 0.9))
        self.opt_teachers = [
            Adam(teacher.parameters(), lr=config.discriminator_lr, betas=(0.5, 0.9))
            for teacher in model.teachers
        ]

    def step(self, rng: np.random.Generator, batch_index: int) -> dict[str, float]:
        model = self.model
        config = model.config
        bce = self.bce
        loss = 0.0

        # --- teachers: real (own partition) vs generated ----------
        noise = rng.normal(size=(self.teacher_batch, config.embedding_dim))
        fake = model.generator.forward(noise, None, training=True)
        for teacher, optimizer, part in zip(model.teachers, self.opt_teachers, self.partitions):
            real = self.data[rng.choice(part, size=min(self.teacher_batch, len(part)))]
            teacher.zero_grad()
            logits_real = teacher.forward(real, None, training=True)
            teacher_loss = bce.forward(logits_real, np.ones_like(logits_real))
            teacher.backward(bce.backward())
            logits_fake = teacher.forward(fake, None, training=True)
            teacher_loss += bce.forward(logits_fake, np.zeros_like(logits_fake))
            teacher.backward(bce.backward())
            optimizer.step()
            loss += teacher_loss / model.num_teachers

        # --- student: generated samples with noisy teacher labels --
        noise = rng.normal(size=(config.batch_size, config.embedding_dim))
        fake = model.generator.forward(noise, None, training=True)
        labels = model._noisy_vote(fake, rng)
        model.student.zero_grad()
        logits = model.student.forward(fake, None, training=True)
        student_loss = bce.forward(logits, labels)
        model.student.backward(bce.backward())
        self.opt_s.step()

        # --- generator: fool the student ---------------------------
        noise = rng.normal(size=(config.batch_size, config.embedding_dim))
        fake = model.generator.forward(noise, None, training=True)
        logits = model.student.forward(fake, None, training=True)
        gen_loss = bce.forward(logits, np.ones_like(logits))
        grad_fake = model.student.backward(bce.backward())
        model.student.zero_grad()
        model.generator.zero_grad()
        model.generator.backward(grad_fake)
        self.opt_g.step()

        return {"loss": loss + student_loss + gen_loss}

    def checkpoint_targets(self) -> dict[str, Sequential]:
        return {
            "generator": self.model.generator.network,
            "student": self.model.student.network,
        }


class PATEGAN(Synthesizer):
    """GAN with PATE-style differentially private teacher aggregation."""

    name = "PATEGAN"

    def __init__(
        self,
        config: KiNETGANConfig | None = None,
        num_teachers: int = 5,
        laplace_scale: float = 1.0,
    ) -> None:
        if num_teachers < 2:
            raise ValueError("num_teachers must be at least 2")
        if laplace_scale <= 0:
            raise ValueError("laplace_scale must be positive")
        self.config = config if config is not None else KiNETGANConfig()
        self.num_teachers = num_teachers
        self.laplace_scale = laplace_scale
        self.transformer: DataTransformer | None = None
        self.generator: ConditionalGenerator | None = None
        self.student: DataDiscriminator | None = None
        self.teachers: list[DataDiscriminator] = []
        self.epsilon_spent = 0.0
        self.loss_history: list[float] = []
        self._fitted = False

    # ------------------------------------------------------------------ #
    def fit(self, table: Table, **kwargs) -> "PATEGAN":
        config = self.config
        rng = seeded_rng(config.seed)
        self._rng = rng
        self.transformer = DataTransformer(
            max_modes=config.max_modes,
            continuous_encoding=config.continuous_encoding,
            seed=config.seed,
        ).fit(table)
        data = self.transformer.transform(table, rng=rng)

        # Disjoint teacher partitions.
        permutation = rng.permutation(len(data))
        partitions = np.array_split(permutation, self.num_teachers)

        self._build_networks(rng, with_teachers=True)

        step = _PATEGANStep(self, data, partitions)
        engine = TrainingEngine(
            step,
            epochs=config.epochs,
            batch_size=config.batch_size,
            n_rows=len(data),
            rng=rng,
            callbacks=[RecordMetric(self.loss_history, "loss")]
            + config.engine_callbacks(prefix="[PATEGAN]"),
        )
        engine.run()
        self._fitted = True
        return self

    def _build_networks(self, rng: np.random.Generator, with_teachers: bool) -> None:
        """Construct the generator / teachers / student stacks.

        ``with_teachers=False`` (the artifact-restore path) skips the teacher
        ensemble: teachers are a training-time construct and are not part of
        the persisted model, matching ``checkpoint_targets()``.
        """
        assert self.transformer is not None
        config = self.config
        data_dim = self.transformer.output_dim
        self.generator = ConditionalGenerator(
            noise_dim=config.embedding_dim,
            condition_dim=0,
            transformer=self.transformer,
            hidden_dims=config.generator_dims,
            gumbel_tau=config.gumbel_tau,
            rng=rng,
        )
        if with_teachers:
            self.teachers = [
                DataDiscriminator(
                    data_dim=data_dim,
                    condition_dim=0,
                    hidden_dims=(64,),
                    dropout=config.dropout,
                    rng=rng,
                )
                for _ in range(self.num_teachers)
            ]
        else:
            self.teachers = []
        self.student = DataDiscriminator(
            data_dim=data_dim,
            condition_dim=0,
            hidden_dims=config.discriminator_dims,
            dropout=config.dropout,
            rng=rng,
        )

    # ------------------------------------------------------------------ #
    # Artifact-state protocol (repro.serve)
    # ------------------------------------------------------------------ #
    def artifact_state(self) -> dict:
        self._require_fitted(self._fitted)
        assert self.transformer is not None
        return {
            "config": self.config,
            "num_teachers": self.num_teachers,
            "laplace_scale": self.laplace_scale,
            "epsilon_spent": self.epsilon_spent,
            "transformer": self.transformer.artifact_state(),
        }

    def restore_state(self, state: dict) -> None:
        self.config = state["config"]
        self.num_teachers = int(state["num_teachers"])
        self.laplace_scale = float(state["laplace_scale"])
        self.epsilon_spent = float(state["epsilon_spent"])
        self.transformer = DataTransformer.from_artifact_state(state["transformer"])
        self._build_networks(seeded_rng(self.config.seed), with_teachers=False)
        self._fitted = True

    def artifact_networks(self) -> dict[str, Sequential]:
        self._require_fitted(self._fitted)
        assert self.generator is not None and self.student is not None
        return {"generator": self.generator.network, "student": self.student.network}

    def _noisy_vote(self, fake: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """PATE noisy-majority labels for a generated batch.

        Each teacher votes "looks real" when its logit is positive; Laplace
        noise of scale ``laplace_scale`` is added to the count before the
        majority threshold.  Each aggregation step costs
        ``2 / laplace_scale`` epsilon under naive composition.
        """
        votes = np.zeros((fake.shape[0], 1))
        for teacher in self.teachers:
            votes += (teacher.forward(fake, None, training=False) > 0).astype(np.float64)
        noisy = votes + rng.laplace(0.0, self.laplace_scale, size=votes.shape)
        self.epsilon_spent += 2.0 / self.laplace_scale
        return (noisy > self.num_teachers / 2.0).astype(np.float64)

    # ------------------------------------------------------------------ #
    def sample(
        self, n: int, conditions: dict | None = None, rng: np.random.Generator | None = None
    ) -> Table:
        self._require_fitted(self._fitted)
        if conditions:
            raise ValueError("PATEGAN is unconditional and does not support conditions")
        if n <= 0:
            raise ValueError("n must be positive")
        assert self.generator is not None and self.transformer is not None
        rng = rng if rng is not None else sampling_rng(self.config.seed)
        outputs: list[np.ndarray] = []
        for start in range(0, n, self.config.batch_size):
            end = min(start + self.config.batch_size, n)
            noise = rng.normal(size=(end - start, self.config.embedding_dim))
            outputs.append(self.generator.forward(noise, None, training=False))
        matrix = self.transformer.harden(np.concatenate(outputs, axis=0), inplace=True)
        return self.transformer.inverse_transform(matrix)
