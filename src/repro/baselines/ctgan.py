"""CTGAN baseline (Xu et al., "Modeling Tabular Data using Conditional GAN").

KiNETGAN builds directly on the CTGAN recipe -- mode-specific normalisation,
a conditional generator, training-by-sampling and a condition cross-entropy
penalty -- and adds the knowledge-guided discriminator and uniform minority
boosting on top.  The CTGAN baseline is therefore expressed as KiNETGAN with
those two additions switched off, which both matches the lineage described
in the paper (section II) and makes the knowledge ablation exact.
"""

from __future__ import annotations

from repro.core.config import KiNETGANConfig
from repro.core.synthesizer import KiNETGAN

__all__ = ["CTGAN"]


class CTGAN(KiNETGAN):
    """Conditional tabular GAN without knowledge guidance."""

    name = "CTGAN"

    def __init__(self, config: KiNETGANConfig | None = None) -> None:
        config = config if config is not None else KiNETGANConfig()
        config = config.with_overrides(
            use_knowledge_discriminator=False,
            lambda_knowledge=0.0,
            # CTGAN samples conditions by log-frequency only; the paper's
            # uniform minority boosting is a KiNETGAN addition.
            uniform_probability=0.0,
        )
        super().__init__(config)

    def fit(self, table, **kwargs):  # type: ignore[override]
        """Fit ignoring any knowledge source (CTGAN is knowledge-free)."""
        kwargs.pop("catalog", None)
        kwargs.pop("knowledge_graph", None)
        kwargs.pop("reasoner", None)
        return super().fit(table, **kwargs)
