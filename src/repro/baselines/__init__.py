"""Baseline tabular synthesizers the paper compares against (Table I, Figs 3-7).

All five baselines from the paper are re-implemented from scratch on the
same numpy neural framework, plus a trivial per-column sampler as a sanity
floor:

* :class:`CTGAN` -- conditional tabular GAN with mode-specific normalisation
  and training-by-sampling (Xu et al., NeurIPS 2019).
* :class:`OCTGAN` -- CTGAN with neural-ODE blocks in the generator and
  discriminator (Kim et al., WWW 2021).
* :class:`TVAE` -- variational autoencoder for tabular data (Xu et al. 2019).
* :class:`TableGAN` -- unconditional GAN with information and classifier
  losses (Park et al., VLDB 2018).
* :class:`PATEGAN` -- GAN with PATE-style differentially private teacher
  aggregation (Jordon et al., ICLR 2019).
* :class:`IndependentSampler` -- samples each column independently from its
  empirical marginal (no joint structure; sanity baseline).

Every class implements the shared :class:`repro.core.base.Synthesizer`
interface, so the fidelity / utility / privacy harness treats them and
KiNETGAN identically.
"""

from repro.baselines.ctgan import CTGAN
from repro.baselines.octgan import OCTGAN
from repro.baselines.tvae import TVAE
from repro.baselines.tablegan import TableGAN
from repro.baselines.pategan import PATEGAN
from repro.baselines.independent import IndependentSampler

__all__ = ["CTGAN", "OCTGAN", "TVAE", "TableGAN", "PATEGAN", "IndependentSampler"]


def baseline_classes() -> dict[str, type]:
    """Name -> class mapping of every baseline (used by the benchmarks)."""
    return {
        "CTGAN": CTGAN,
        "OCTGAN": OCTGAN,
        "TVAE": TVAE,
        "TABLEGAN": TableGAN,
        "PATEGAN": PATEGAN,
        "INDEPENDENT": IndependentSampler,
    }
