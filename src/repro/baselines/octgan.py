"""OCT-GAN baseline (Kim et al., "OCT-GAN: Neural ODE-based Conditional
Tabular GANs", WWW 2021).

OCT-GAN keeps the CTGAN data pipeline but inserts neural-ODE blocks into the
generator and the discriminator.  We reproduce that structure with the
fixed-step :class:`repro.neural.ode.ODEBlock`: the generator integrates its
hidden state through a learned vector field before the output projection,
and the discriminator integrates its first hidden layer before classifying.
"""

from __future__ import annotations

from repro.core.config import KiNETGANConfig
from repro.core.discriminator import DataDiscriminator
from repro.core.generator import ConditionalGenerator, TabularOutputActivation
from repro.core.synthesizer import KiNETGAN
from repro.core.trainer import KiNETGANTrainer
from repro.engine import seeded_rng
from repro.neural.layers import BatchNorm, Dense, Dropout, LeakyReLU, ReLU
from repro.neural.network import Sequential
from repro.neural.ode import ODEBlock

__all__ = ["OCTGAN"]


class _ODEGenerator(ConditionalGenerator):
    """CTGAN-style generator with an ODE block before the output projection."""

    def __init__(
        self, noise_dim, condition_dim, transformer, hidden_dims, gumbel_tau, ode_steps, rng
    ) -> None:
        # Build the base object first, then replace its network with the
        # ODE-augmented stack (same public interface).
        super().__init__(
            noise_dim,
            condition_dim,
            transformer,
            hidden_dims=hidden_dims,
            gumbel_tau=gumbel_tau,
            rng=rng,
        )
        width = noise_dim + condition_dim
        hidden = hidden_dims[0] if hidden_dims else 128
        layers = [
            Dense(width, hidden, rng=rng, init="he"),
            BatchNorm(hidden),
            ReLU(),
            ODEBlock(hidden, hidden_dim=hidden, num_steps=ode_steps, rng=rng),
            Dense(hidden, self.output_dim, rng=rng, init="glorot"),
            TabularOutputActivation(transformer.activation_spans(), tau=gumbel_tau, rng=rng),
        ]
        self.network = Sequential(layers)
        self.network.consolidate()


class _ODEDiscriminator(DataDiscriminator):
    """Discriminator whose hidden representation is integrated through an ODE."""

    def __init__(self, data_dim, condition_dim, hidden_dims, dropout, ode_steps, rng) -> None:
        super().__init__(
            data_dim, condition_dim, hidden_dims=hidden_dims, dropout=dropout, rng=rng
        )
        hidden = hidden_dims[0] if hidden_dims else 128
        layers = [
            Dense(data_dim + condition_dim, hidden, rng=rng, init="he"),
            LeakyReLU(0.2),
            Dropout(dropout, rng=rng),
            ODEBlock(hidden, hidden_dim=hidden, num_steps=ode_steps, rng=rng),
            LeakyReLU(0.2),
            Dense(hidden, 1, rng=rng, init="glorot"),
        ]
        self.network = Sequential(layers)
        self.network.consolidate()


class OCTGAN(KiNETGAN):
    """Neural-ODE conditional tabular GAN (no knowledge guidance)."""

    name = "OCTGAN"

    def __init__(self, config: KiNETGANConfig | None = None, ode_steps: int = 3) -> None:
        config = config if config is not None else KiNETGANConfig()
        config = config.with_overrides(
            use_knowledge_discriminator=False,
            lambda_knowledge=0.0,
            uniform_probability=0.0,
        )
        super().__init__(config)
        self.ode_steps = ode_steps

    def fit(self, table, **kwargs):  # type: ignore[override]
        kwargs.pop("catalog", None)
        kwargs.pop("knowledge_graph", None)
        kwargs.pop("reasoner", None)
        return super().fit(table, **kwargs)

    def _extra_artifact_state(self) -> dict:
        return {"ode_steps": self.ode_steps}

    def _apply_extra_artifact_state(self, state: dict) -> None:
        self.ode_steps = int(state["ode_steps"])

    def _build_trainer(self) -> KiNETGANTrainer:
        assert self.transformer is not None and self.sampler is not None
        rng = seeded_rng(self.config.seed)
        generator = _ODEGenerator(
            noise_dim=self.config.embedding_dim,
            condition_dim=self.sampler.condition_dim,
            transformer=self.transformer,
            hidden_dims=self.config.generator_dims,
            gumbel_tau=self.config.gumbel_tau,
            ode_steps=self.ode_steps,
            rng=rng,
        )
        discriminator = _ODEDiscriminator(
            data_dim=self.transformer.output_dim,
            condition_dim=self.sampler.condition_dim,
            hidden_dims=self.config.discriminator_dims,
            dropout=self.config.dropout,
            ode_steps=self.ode_steps,
            rng=rng,
        )
        return KiNETGANTrainer(
            config=self.config,
            transformer=self.transformer,
            sampler=self.sampler,
            reasoner=None,
            generator=generator,
            discriminator=discriminator,
        )
