"""Callbacks dispatched by :class:`~repro.engine.engine.TrainingEngine`.

Callbacks observe the loop at four points -- train begin/end and epoch
begin/end -- and may ask the engine to stop early.  The stock callbacks
cover the needs of every synthesizer in the repository: metric history,
periodic logging, loss-plateau early stopping and checkpointing.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.engine.checkpoint import save_checkpoint
from repro.obs import MetricsRegistry, default_registry, log_line

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import TrainingEngine

__all__ = [
    "Callback",
    "CallbackList",
    "History",
    "RecordMetric",
    "PeriodicLogger",
    "MetricsCallback",
    "EarlyStopping",
    "Checkpointer",
    "standard_callbacks",
]


class Callback:
    """Observer of the training loop; all hooks default to no-ops."""

    def on_train_begin(self, engine: "TrainingEngine") -> None: ...

    def on_epoch_begin(self, engine: "TrainingEngine", epoch: int) -> None: ...

    def on_epoch_end(
        self, engine: "TrainingEngine", epoch: int, metrics: dict[str, float]
    ) -> None: ...

    def on_train_end(self, engine: "TrainingEngine") -> None: ...


class CallbackList(Callback):
    """Dispatches every hook to its children in registration order."""

    def __init__(self, callbacks: Iterable[Callback] = ()) -> None:
        self.callbacks: list[Callback] = list(callbacks)

    def append(self, callback: Callback) -> None:
        self.callbacks.append(callback)

    def on_train_begin(self, engine: "TrainingEngine") -> None:
        for callback in self.callbacks:
            callback.on_train_begin(engine)

    def on_epoch_begin(self, engine: "TrainingEngine", epoch: int) -> None:
        for callback in self.callbacks:
            callback.on_epoch_begin(engine, epoch)

    def on_epoch_end(self, engine: "TrainingEngine", epoch: int, metrics: dict[str, float]) -> None:
        for callback in self.callbacks:
            callback.on_epoch_end(engine, epoch, metrics)

    def on_train_end(self, engine: "TrainingEngine") -> None:
        for callback in self.callbacks:
            callback.on_train_end(engine)


class History(Callback):
    """Records every epoch's metrics as a dict of per-metric traces."""

    def __init__(self) -> None:
        self.metrics: dict[str, list[float]] = {}

    @property
    def epochs(self) -> int:
        return max((len(trace) for trace in self.metrics.values()), default=0)

    def last(self) -> dict[str, float]:
        """The most recent epoch's metrics (empty before the first epoch)."""
        return {name: trace[-1] for name, trace in self.metrics.items() if trace}

    def on_epoch_end(self, engine: "TrainingEngine", epoch: int, metrics: dict[str, float]) -> None:
        for name, value in metrics.items():
            self.metrics.setdefault(name, []).append(value)


class RecordMetric(Callback):
    """Appends one metric's per-epoch value to an externally owned list.

    The baselines keep their public ``loss_history`` lists alive through
    this adapter instead of hand-rolling the bookkeeping in their loops.
    """

    def __init__(self, target: list[float], key: str = "loss") -> None:
        self.target = target
        self.key = key

    def on_epoch_end(self, engine: "TrainingEngine", epoch: int, metrics: dict[str, float]) -> None:
        if self.key in metrics:
            self.target.append(metrics[self.key])


class PeriodicLogger(Callback):
    """Prints one metrics line every ``log_every`` epochs.

    ``labels`` selects and renames the metrics to display (insertion order
    is respected); ``extra`` can supply additional values computed on demand
    -- KiNETGAN uses it for the knowledge-graph validity rate, which is too
    expensive to evaluate every epoch.
    """

    def __init__(
        self,
        log_every: int = 1,
        prefix: str = "",
        labels: dict[str, str] | None = None,
        extra: Callable[["TrainingEngine", int, dict[str, float]], dict[str, float]] | None = None,
        printer: Callable[[str], None] | None = None,
    ) -> None:
        if log_every < 1:
            raise ValueError("log_every must be at least 1")
        self.log_every = log_every
        self.prefix = prefix
        self.labels = labels
        self.extra = extra
        # None routes through the repro.obs log sink, whose default
        # StreamSink writes to sys.stdout byte-for-byte like print() did;
        # an explicit printer (tests pass list.append) bypasses the sink.
        self.printer = printer if printer is not None else log_line

    def on_epoch_end(self, engine: "TrainingEngine", epoch: int, metrics: dict[str, float]) -> None:
        if (epoch + 1) % self.log_every != 0:
            return
        shown: dict[str, float] = {}
        if self.labels is None:
            shown.update(metrics)
        else:
            for key, label in self.labels.items():
                if key in metrics:
                    shown[label] = metrics[key]
        if self.extra is not None:
            shown.update(self.extra(engine, epoch, metrics))
        parts = [f"{name}={value:.3f}" for name, value in shown.items()]
        head = f"{self.prefix} " if self.prefix else ""
        self.printer(f"{head}epoch {epoch + 1}/{engine.epochs} " + " ".join(parts))


class MetricsCallback(Callback):
    """Publishes the engine's epoch loop into a :class:`MetricsRegistry`.

    Per epoch it observes the wall-clock duration in the
    ``repro_engine_epoch_seconds`` histogram, counts
    ``repro_engine_epochs_total``, and mirrors every averaged epoch metric
    into a ``repro_engine_metric`` gauge labelled by metric name -- so a
    scrape of ``GET /metrics`` shows the live loss of a training run.
    ``prefix`` becomes a ``loop`` label separating concurrent loops (e.g.
    federated sites).  Reads the wall clock only: attaching it never
    touches the engine's RNG stream, so seeded histories stay
    bit-identical (asserted in tests/engine and benchmarks/bench_obs).
    """

    def __init__(self, registry: MetricsRegistry | None = None, prefix: str = "engine") -> None:
        self.registry = registry
        self.prefix = prefix
        self._epoch_start: float | None = None

    def _registry(self) -> MetricsRegistry:
        return self.registry if self.registry is not None else default_registry()

    def on_epoch_begin(self, engine: "TrainingEngine", epoch: int) -> None:
        self._epoch_start = time.perf_counter()

    def on_epoch_end(self, engine: "TrainingEngine", epoch: int, metrics: dict[str, float]) -> None:
        registry = self._registry()
        labels = {"loop": self.prefix}
        if self._epoch_start is not None:
            registry.histogram(
                "repro_engine_epoch_seconds",
                help="Wall-clock duration of one training epoch.",
                labels=labels,
            ).observe(time.perf_counter() - self._epoch_start)
            self._epoch_start = None
        registry.counter(
            "repro_engine_epochs_total",
            help="Training epochs completed.",
            labels=labels,
        ).inc()
        for name, value in metrics.items():
            if np.isfinite(value):
                registry.gauge(
                    "repro_engine_metric",
                    help="Most recent per-epoch training metric value.",
                    labels={**labels, "metric": name},
                ).set(float(value))


class EarlyStopping(Callback):
    """Stops training when the monitored metric stops improving.

    After ``patience`` consecutive epochs without an improvement of more
    than ``min_delta`` the callback asks the engine to stop; the epoch at
    which that happened is kept in ``stopped_epoch``.
    """

    def __init__(self, monitor: str = "loss", patience: int = 3, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be at least 1")
        if min_delta < 0:
            raise ValueError("min_delta must be non-negative")
        self.monitor = monitor
        self.patience = patience
        self.min_delta = min_delta
        self.best = np.inf
        self.wait = 0
        self.stopped_epoch: int | None = None

    def on_train_begin(self, engine: "TrainingEngine") -> None:
        self.best = np.inf
        self.wait = 0
        self.stopped_epoch = None

    def on_epoch_end(self, engine: "TrainingEngine", epoch: int, metrics: dict[str, float]) -> None:
        value = metrics.get(self.monitor)
        if value is None or not np.isfinite(value):
            return
        if value < self.best - self.min_delta:
            self.best = value
            self.wait = 0
            return
        self.wait += 1
        if self.wait >= self.patience:
            self.stopped_epoch = epoch
            engine.request_stop(f"no {self.monitor!r} improvement for {self.patience} epochs")


class Checkpointer(Callback):
    """Persists the step's networks to ``directory``.

    With ``every > 0`` a checkpoint is written after every ``every``-th
    epoch; a final checkpoint is always written when training ends, so the
    directory reflects the finished model even when early stopping fired.
    """

    def __init__(self, directory: str | Path, every: int = 0) -> None:
        if every < 0:
            raise ValueError("every must be non-negative")
        self.directory = Path(directory)
        self.every = every
        self._last_saved_epoch: int | None = None

    def on_train_begin(self, engine: "TrainingEngine") -> None:
        self._last_saved_epoch = None

    def on_epoch_end(self, engine: "TrainingEngine", epoch: int, metrics: dict[str, float]) -> None:
        if self.every > 0 and (epoch + 1) % self.every == 0:
            save_checkpoint(engine.step, self.directory)
            self._last_saved_epoch = epoch

    def on_train_end(self, engine: "TrainingEngine") -> None:
        # Skip the final save when the last periodic save already captured
        # the final epoch's weights.
        if self._last_saved_epoch != engine.epochs_run - 1:
            save_checkpoint(engine.step, self.directory)


def standard_callbacks(
    *,
    verbose: bool = False,
    log_every: int = 1,
    prefix: str = "",
    labels: dict[str, str] | None = None,
    extra: Callable[["TrainingEngine", int, dict[str, float]], dict[str, float]] | None = None,
    patience: int = 0,
    monitor: str = "loss",
    min_delta: float = 0.0,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 0,
    metrics: bool = False,
    metrics_prefix: str = "engine",
) -> list[Callback]:
    """The callback stack every synthesizer derives from its config knobs.

    Logging is attached only when ``verbose``; early stopping only when
    ``patience > 0``; checkpointing only when ``checkpoint_dir`` is set;
    metrics publication only when ``metrics`` is requested -- so the
    default configuration reproduces the historical loops exactly.
    """
    callbacks: list[Callback] = []
    if verbose:
        callbacks.append(
            PeriodicLogger(log_every=log_every, prefix=prefix, labels=labels, extra=extra)
        )
    if metrics:
        callbacks.append(MetricsCallback(prefix=metrics_prefix))
    if patience > 0:
        callbacks.append(EarlyStopping(monitor=monitor, patience=patience, min_delta=min_delta))
    if checkpoint_dir is not None:
        callbacks.append(Checkpointer(checkpoint_dir, every=checkpoint_every))
    return callbacks
