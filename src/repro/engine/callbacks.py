"""Callbacks dispatched by :class:`~repro.engine.engine.TrainingEngine`.

Callbacks observe the loop at four points -- train begin/end and epoch
begin/end -- and may ask the engine to stop early.  The stock callbacks
cover the needs of every synthesizer in the repository: metric history,
periodic logging, loss-plateau early stopping and checkpointing.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.engine.checkpoint import save_checkpoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import TrainingEngine

__all__ = [
    "Callback",
    "CallbackList",
    "History",
    "RecordMetric",
    "PeriodicLogger",
    "EarlyStopping",
    "Checkpointer",
    "standard_callbacks",
]


class Callback:
    """Observer of the training loop; all hooks default to no-ops."""

    def on_train_begin(self, engine: "TrainingEngine") -> None: ...

    def on_epoch_begin(self, engine: "TrainingEngine", epoch: int) -> None: ...

    def on_epoch_end(
        self, engine: "TrainingEngine", epoch: int, metrics: dict[str, float]
    ) -> None: ...

    def on_train_end(self, engine: "TrainingEngine") -> None: ...


class CallbackList(Callback):
    """Dispatches every hook to its children in registration order."""

    def __init__(self, callbacks: Iterable[Callback] = ()) -> None:
        self.callbacks: list[Callback] = list(callbacks)

    def append(self, callback: Callback) -> None:
        self.callbacks.append(callback)

    def on_train_begin(self, engine: "TrainingEngine") -> None:
        for callback in self.callbacks:
            callback.on_train_begin(engine)

    def on_epoch_begin(self, engine: "TrainingEngine", epoch: int) -> None:
        for callback in self.callbacks:
            callback.on_epoch_begin(engine, epoch)

    def on_epoch_end(self, engine: "TrainingEngine", epoch: int, metrics: dict[str, float]) -> None:
        for callback in self.callbacks:
            callback.on_epoch_end(engine, epoch, metrics)

    def on_train_end(self, engine: "TrainingEngine") -> None:
        for callback in self.callbacks:
            callback.on_train_end(engine)


class History(Callback):
    """Records every epoch's metrics as a dict of per-metric traces."""

    def __init__(self) -> None:
        self.metrics: dict[str, list[float]] = {}

    @property
    def epochs(self) -> int:
        return max((len(trace) for trace in self.metrics.values()), default=0)

    def last(self) -> dict[str, float]:
        """The most recent epoch's metrics (empty before the first epoch)."""
        return {name: trace[-1] for name, trace in self.metrics.items() if trace}

    def on_epoch_end(self, engine: "TrainingEngine", epoch: int, metrics: dict[str, float]) -> None:
        for name, value in metrics.items():
            self.metrics.setdefault(name, []).append(value)


class RecordMetric(Callback):
    """Appends one metric's per-epoch value to an externally owned list.

    The baselines keep their public ``loss_history`` lists alive through
    this adapter instead of hand-rolling the bookkeeping in their loops.
    """

    def __init__(self, target: list[float], key: str = "loss") -> None:
        self.target = target
        self.key = key

    def on_epoch_end(self, engine: "TrainingEngine", epoch: int, metrics: dict[str, float]) -> None:
        if self.key in metrics:
            self.target.append(metrics[self.key])


class PeriodicLogger(Callback):
    """Prints one metrics line every ``log_every`` epochs.

    ``labels`` selects and renames the metrics to display (insertion order
    is respected); ``extra`` can supply additional values computed on demand
    -- KiNETGAN uses it for the knowledge-graph validity rate, which is too
    expensive to evaluate every epoch.
    """

    def __init__(
        self,
        log_every: int = 1,
        prefix: str = "",
        labels: dict[str, str] | None = None,
        extra: Callable[["TrainingEngine", int, dict[str, float]], dict[str, float]] | None = None,
        printer: Callable[[str], None] = print,
    ) -> None:
        if log_every < 1:
            raise ValueError("log_every must be at least 1")
        self.log_every = log_every
        self.prefix = prefix
        self.labels = labels
        self.extra = extra
        self.printer = printer

    def on_epoch_end(self, engine: "TrainingEngine", epoch: int, metrics: dict[str, float]) -> None:
        if (epoch + 1) % self.log_every != 0:
            return
        shown: dict[str, float] = {}
        if self.labels is None:
            shown.update(metrics)
        else:
            for key, label in self.labels.items():
                if key in metrics:
                    shown[label] = metrics[key]
        if self.extra is not None:
            shown.update(self.extra(engine, epoch, metrics))
        parts = [f"{name}={value:.3f}" for name, value in shown.items()]
        head = f"{self.prefix} " if self.prefix else ""
        self.printer(f"{head}epoch {epoch + 1}/{engine.epochs} " + " ".join(parts))


class EarlyStopping(Callback):
    """Stops training when the monitored metric stops improving.

    After ``patience`` consecutive epochs without an improvement of more
    than ``min_delta`` the callback asks the engine to stop; the epoch at
    which that happened is kept in ``stopped_epoch``.
    """

    def __init__(self, monitor: str = "loss", patience: int = 3, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be at least 1")
        if min_delta < 0:
            raise ValueError("min_delta must be non-negative")
        self.monitor = monitor
        self.patience = patience
        self.min_delta = min_delta
        self.best = np.inf
        self.wait = 0
        self.stopped_epoch: int | None = None

    def on_train_begin(self, engine: "TrainingEngine") -> None:
        self.best = np.inf
        self.wait = 0
        self.stopped_epoch = None

    def on_epoch_end(self, engine: "TrainingEngine", epoch: int, metrics: dict[str, float]) -> None:
        value = metrics.get(self.monitor)
        if value is None or not np.isfinite(value):
            return
        if value < self.best - self.min_delta:
            self.best = value
            self.wait = 0
            return
        self.wait += 1
        if self.wait >= self.patience:
            self.stopped_epoch = epoch
            engine.request_stop(f"no {self.monitor!r} improvement for {self.patience} epochs")


class Checkpointer(Callback):
    """Persists the step's networks to ``directory``.

    With ``every > 0`` a checkpoint is written after every ``every``-th
    epoch; a final checkpoint is always written when training ends, so the
    directory reflects the finished model even when early stopping fired.
    """

    def __init__(self, directory: str | Path, every: int = 0) -> None:
        if every < 0:
            raise ValueError("every must be non-negative")
        self.directory = Path(directory)
        self.every = every
        self._last_saved_epoch: int | None = None

    def on_train_begin(self, engine: "TrainingEngine") -> None:
        self._last_saved_epoch = None

    def on_epoch_end(self, engine: "TrainingEngine", epoch: int, metrics: dict[str, float]) -> None:
        if self.every > 0 and (epoch + 1) % self.every == 0:
            save_checkpoint(engine.step, self.directory)
            self._last_saved_epoch = epoch

    def on_train_end(self, engine: "TrainingEngine") -> None:
        # Skip the final save when the last periodic save already captured
        # the final epoch's weights.
        if self._last_saved_epoch != engine.epochs_run - 1:
            save_checkpoint(engine.step, self.directory)


def standard_callbacks(
    *,
    verbose: bool = False,
    log_every: int = 1,
    prefix: str = "",
    labels: dict[str, str] | None = None,
    extra: Callable[["TrainingEngine", int, dict[str, float]], dict[str, float]] | None = None,
    patience: int = 0,
    monitor: str = "loss",
    min_delta: float = 0.0,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 0,
) -> list[Callback]:
    """The callback stack every synthesizer derives from its config knobs.

    Logging is attached only when ``verbose``; early stopping only when
    ``patience > 0``; checkpointing only when ``checkpoint_dir`` is set --
    so the default configuration reproduces the historical loops exactly.
    """
    callbacks: list[Callback] = []
    if verbose:
        callbacks.append(
            PeriodicLogger(log_every=log_every, prefix=prefix, labels=labels, extra=extra)
        )
    if patience > 0:
        callbacks.append(EarlyStopping(monitor=monitor, patience=patience, min_delta=min_delta))
    if checkpoint_dir is not None:
        callbacks.append(Checkpointer(checkpoint_dir, every=checkpoint_every))
    return callbacks
