"""Saving and restoring a train step's networks.

Checkpoints reuse the existing :meth:`Sequential.save` / ``load`` npz
format, one file per named network, so a checkpoint directory written by
the engine for KiNETGAN (``generator.npz`` + ``discriminator.npz``) is
directly loadable by :meth:`repro.core.synthesizer.KiNETGAN.load_weights`.
"""

from __future__ import annotations

from pathlib import Path

from repro.engine.steps import TrainStep

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(step: TrainStep, directory: str | Path) -> list[Path]:
    """Persist every checkpoint target of ``step`` into ``directory``."""
    targets = step.checkpoint_targets()
    if not targets:
        raise ValueError(f"{type(step).__name__} exposes no checkpoint targets")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for name, network in targets.items():
        path = directory / f"{name}.npz"
        network.save(path)
        written.append(path)
    return written


def load_checkpoint(step: TrainStep, directory: str | Path) -> None:
    """Restore every checkpoint target of ``step`` from ``directory``."""
    targets = step.checkpoint_targets()
    if not targets:
        raise ValueError(f"{type(step).__name__} exposes no checkpoint targets")
    directory = Path(directory)
    for name, network in targets.items():
        path = directory / f"{name}.npz"
        if not path.exists():
            raise FileNotFoundError(f"checkpoint file missing: {path}")
        network.load(path)
