"""Saving and restoring named network collections.

Checkpoints reuse the existing :meth:`Sequential.save` / ``load`` npz
format, one file per named network, plus a small ``checkpoint.json``
manifest recording the format version and the network names.  A checkpoint
directory written by the engine for KiNETGAN (``generator.npz`` +
``discriminator.npz``) is directly loadable by
:meth:`repro.core.synthesizer.KiNETGAN.load_weights`, and the same
machinery persists the network half of a :mod:`repro.serve` model artifact.

Loading validates the directory up front: a version mismatch or a
missing/unexpected network set fails with one :class:`CheckpointError`
naming every problem, instead of a bare ``FileNotFoundError`` per file.
(``CheckpointError`` subclasses ``FileNotFoundError`` so existing callers
that caught the old error keep working.)  Directories written before the
manifest existed (no ``checkpoint.json``) still load.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.engine.steps import TrainStep

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CHECKPOINT_MANIFEST",
    "CheckpointError",
    "save_networks",
    "load_networks",
    "save_checkpoint",
    "load_checkpoint",
]

#: Bumped when the on-disk checkpoint layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1

#: Manifest file name written alongside the per-network ``.npz`` files.
CHECKPOINT_MANIFEST = "checkpoint.json"


class CheckpointError(FileNotFoundError):
    """A checkpoint directory is missing, incomplete or incompatible."""


def save_networks(networks: dict, directory: str | Path) -> list[Path]:
    """Persist named networks into ``directory`` (one ``.npz`` each).

    Writes a ``checkpoint.json`` manifest with the format version and the
    network names so :func:`load_networks` can diagnose mismatches.  An
    empty ``networks`` dict is allowed (the manifest alone is written);
    callers that require targets, like :func:`save_checkpoint`, check first.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for name, network in networks.items():
        path = directory / f"{name}.npz"
        network.save(path)
        written.append(path)
    manifest = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "networks": sorted(networks),
    }
    (directory / CHECKPOINT_MANIFEST).write_text(json.dumps(manifest, indent=2) + "\n")
    return written


def load_networks(networks: dict, directory: str | Path) -> None:
    """Restore named networks from ``directory``, validating up front.

    Every problem -- wrong format version, networks named in the manifest
    but not expected by the caller (or vice versa), missing ``.npz`` files
    -- is reported in a single :class:`CheckpointError` listing all of them.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise CheckpointError(f"checkpoint directory does not exist: {directory}")
    problems: list[str] = []

    manifest_path = directory / CHECKPOINT_MANIFEST
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as error:
            raise CheckpointError(f"unreadable checkpoint manifest {manifest_path}: {error}")
        version = manifest.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            problems.append(
                f"format version {version!r} is not the supported "
                f"version {CHECKPOINT_FORMAT_VERSION}"
            )
        recorded = set(manifest.get("networks", []))
        expected = set(networks)
        for name in sorted(expected - recorded):
            problems.append(f"network {name!r} expected by the model but not in the checkpoint")
        for name in sorted(recorded - expected):
            problems.append(f"network {name!r} in the checkpoint but not expected by the model")

    missing = [name for name in networks if not (directory / f"{name}.npz").exists()]
    for name in sorted(missing):
        problems.append(f"weight file missing: {directory / f'{name}.npz'}")

    if problems:
        raise CheckpointError(
            f"cannot load checkpoint from {directory}:\n  - " + "\n  - ".join(problems)
        )
    for name, network in networks.items():
        network.load(directory / f"{name}.npz")


def save_checkpoint(step: TrainStep, directory: str | Path) -> list[Path]:
    """Persist every checkpoint target of ``step`` into ``directory``."""
    targets = step.checkpoint_targets()
    if not targets:
        raise ValueError(f"{type(step).__name__} exposes no checkpoint targets")
    return save_networks(targets, directory)


def load_checkpoint(step: TrainStep, directory: str | Path) -> None:
    """Restore every checkpoint target of ``step`` from ``directory``."""
    targets = step.checkpoint_targets()
    if not targets:
        raise ValueError(f"{type(step).__name__} exposes no checkpoint targets")
    load_networks(targets, directory)
