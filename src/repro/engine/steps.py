"""The :class:`TrainStep` protocol and reusable step implementations.

A *train step* is the model-specific half of a training loop: everything
that happens inside one mini-batch update.  The engine owns the rest (epoch
iteration, batch counting, metric averaging, callbacks).  A step only needs
``step``; ``begin_epoch`` and ``checkpoint_targets`` have sensible defaults.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.neural.network import Sequential

__all__ = ["TrainStep", "SupervisedStep"]


class TrainStep:
    """Base class for pluggable per-batch training logic.

    Subclasses implement :meth:`step`, which must consume randomness only
    from the ``rng`` handed in by the engine (or objects seeded from the
    same stream) so seeded runs stay bit-reproducible.
    """

    def begin_epoch(self, rng: np.random.Generator, epoch: int) -> int | None:
        """Hook called before each epoch's batches.

        May reshuffle data and return the number of batches for this epoch;
        returning ``None`` keeps the engine's default ``steps_per_epoch``.
        """
        return None

    def step(self, rng: np.random.Generator, batch_index: int) -> dict[str, float]:
        """Run one optimisation step and return its loss metrics."""
        raise NotImplementedError

    def checkpoint_targets(self) -> dict[str, Sequential]:
        """Named networks to persist when checkpointing (empty = none)."""
        return {}


class SupervisedStep(TrainStep):
    """Mini-batch SGD over a fixed ``(features, labels)`` design matrix.

    Each epoch visits every example exactly once in a freshly shuffled
    order.  ``grad_hook`` runs after the backward pass and before the
    optimizer step -- the federated client uses it to add the FedProx
    proximal term to the parameter gradients.
    """

    def __init__(
        self,
        model: Sequential,
        loss_fn,
        optimizer,
        features: np.ndarray,
        labels: np.ndarray,
        batch_size: int,
        grad_hook: Callable[[Sequential], None] | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.model = model
        self.loss_fn = loss_fn
        self.optimizer = optimizer
        self.features = features
        self.labels = labels
        self.batch_size = batch_size
        self.grad_hook = grad_hook
        self.last_loss = 0.0
        self._order: np.ndarray | None = None

    def begin_epoch(self, rng: np.random.Generator, epoch: int) -> int:
        self._order = rng.permutation(len(self.features))
        return max(1, -(-len(self.features) // self.batch_size))

    def step(self, rng: np.random.Generator, batch_index: int) -> dict[str, float]:
        assert self._order is not None, "begin_epoch() must run before step()"
        start = batch_index * self.batch_size
        batch = self._order[start : start + self.batch_size]
        logits = self.model.forward(self.features[batch], training=True)
        self.last_loss = float(self.loss_fn.forward(logits, self.labels[batch]))
        self.model.zero_grad()
        self.model.backward(self.loss_fn.backward())
        if self.grad_hook is not None:
            self.grad_hook(self.model)
        self.optimizer.step()
        return {"loss": self.last_loss}

    def checkpoint_targets(self) -> dict[str, Sequential]:
        return {"model": self.model}
