"""The :class:`TrainingEngine` epoch/step loop."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.engine.callbacks import Callback, CallbackList, History
from repro.engine.seeding import seeded_rng
from repro.engine.steps import TrainStep
from repro.obs import span

__all__ = ["TrainingEngine"]


class TrainingEngine:
    """Drives a :class:`TrainStep` for a fixed number of epochs.

    The engine owns everything the per-model loops used to duplicate:

    * the seeded RNG (either handed in, so a caller can interleave model
      construction and training on one stream, or derived from ``seed``);
    * the batch count per epoch (``max(1, n_rows // batch_size)`` unless the
      step's ``begin_epoch`` overrides it, as shuffled full-pass steps do);
    * averaging per-step metrics into per-epoch metrics;
    * callback dispatch and cooperative early stopping via
      :meth:`request_stop`.

    ``run()`` returns the engine's :class:`History`; ``epochs_run`` and
    ``stop_reason`` describe how the loop actually ended.
    """

    def __init__(
        self,
        step: TrainStep,
        *,
        epochs: int,
        batch_size: int = 1,
        n_rows: int | None = None,
        steps_per_epoch: int | None = None,
        rng: np.random.Generator | None = None,
        seed: int | None = 0,
        callbacks: Iterable[Callback] = (),
    ) -> None:
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if steps_per_epoch is not None and steps_per_epoch <= 0:
            raise ValueError("steps_per_epoch must be positive")
        self.step = step
        self.epochs = epochs
        self.batch_size = batch_size
        if steps_per_epoch is not None:
            self.default_steps_per_epoch = steps_per_epoch
        elif n_rows is not None:
            self.default_steps_per_epoch = max(1, n_rows // batch_size)
        else:
            self.default_steps_per_epoch = 1
        self.rng = rng if rng is not None else seeded_rng(seed)
        self.history = History()
        self.callbacks = CallbackList([self.history, *callbacks])
        self.stop_training = False
        self.stop_reason: str | None = None
        self.epochs_run = 0

    # ------------------------------------------------------------------ #
    def request_stop(self, reason: str = "") -> None:
        """Ask the engine to stop after the current epoch (callback API)."""
        self.stop_training = True
        self.stop_reason = reason or None

    def run(self) -> History:
        """Execute the loop and return the per-epoch metric history."""
        self.stop_training = False
        self.stop_reason = None
        self.epochs_run = 0
        self.callbacks.on_train_begin(self)
        # Spans are recorded at epoch granularity only: when tracing is
        # disabled each span() call costs one branch, and the per-batch
        # inner loop stays untouched either way.
        with span("engine.run", epochs=self.epochs):
            for epoch in range(self.epochs):
                with span("engine.epoch", epoch=epoch):
                    self.callbacks.on_epoch_begin(self, epoch)
                    declared = self.step.begin_epoch(self.rng, epoch)
                    n_steps = declared if declared is not None else self.default_steps_per_epoch
                    totals: dict[str, float] = {}
                    for batch_index in range(n_steps):
                        metrics = self.step.step(self.rng, batch_index)
                        for name, value in metrics.items():
                            totals[name] = totals.get(name, 0.0) + float(value)
                    epoch_metrics = {name: value / n_steps for name, value in totals.items()}
                    self.epochs_run = epoch + 1
                    self.callbacks.on_epoch_end(self, epoch, epoch_metrics)
                if self.stop_training:
                    break
        self.callbacks.on_train_end(self)
        return self.history
