"""Deterministic RNG construction for every training loop.

All synthesizers must build their generators through these helpers rather
than calling :func:`numpy.random.default_rng` directly, so that

* a seeded ``fit()`` is bit-reproducible across re-runs (the regression
  tests in ``tests/engine/test_seeding.py`` rely on this), and
* the training stream and the sampling stream never collide: training
  consumes the ``seed`` stream while post-fit sampling uses the disjoint
  ``seed + _SAMPLING_OFFSET`` stream, matching the historical convention.
"""

from __future__ import annotations

import numpy as np

__all__ = ["seeded_rng", "sampling_rng"]

#: Offset separating the sampling stream from the training stream.
_SAMPLING_OFFSET = 1


def seeded_rng(seed: int | None) -> np.random.Generator:
    """The training-time generator for ``seed`` (entropy-seeded if ``None``)."""
    return np.random.default_rng(seed)


def sampling_rng(seed: int | None) -> np.random.Generator:
    """The post-fit sampling generator: a stream disjoint from training.

    Keeping sampling on its own stream means drawing synthetic rows never
    perturbs a subsequent ``fit()`` continuation, and two models fitted with
    the same seed produce identical default samples.
    """
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(seed + _SAMPLING_OFFSET)
