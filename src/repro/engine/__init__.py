"""The shared training engine.

Every synthesizer in this repository -- KiNETGAN itself, the GAN / VAE
baselines and the federated detector clients -- used to hand-roll its own
epoch/batch loop, RNG seeding, loss bookkeeping and logging.  This package
centralises that machinery:

* :class:`TrainingEngine` owns the epoch/step loop: it derives the number of
  batches per epoch, drives a model-specific :class:`TrainStep`, averages the
  per-step metrics into per-epoch metrics and dispatches them to callbacks.
* :class:`TrainStep` is the small protocol a model implements to plug in:
  ``step(rng, batch_index)`` runs one optimisation step and returns its loss
  metrics; ``begin_epoch`` optionally reshuffles data and overrides the batch
  count; ``checkpoint_targets`` exposes the networks to persist.
* :mod:`repro.engine.callbacks` provides the :class:`Callback` protocol plus
  the stock implementations: :class:`History` (dict-of-lists metric traces),
  :class:`RecordMetric`, :class:`PeriodicLogger`, :class:`EarlyStopping` and
  :class:`Checkpointer`.
* :mod:`repro.engine.seeding` is the single place where seeds become
  :class:`numpy.random.Generator` objects, so seeded re-runs of ``fit()``
  are bit-reproducible across every synthesizer.
* :mod:`repro.engine.checkpoint` saves / restores named network collections
  through the existing ``Sequential.save`` / ``Sequential.load`` npz format,
  with a versioned ``checkpoint.json`` manifest and one aggregated
  :class:`CheckpointError` for missing / mismatched networks.  The same
  machinery persists the network half of a :mod:`repro.serve` artifact.
"""

from repro.engine.callbacks import (
    Callback,
    CallbackList,
    Checkpointer,
    EarlyStopping,
    History,
    MetricsCallback,
    PeriodicLogger,
    RecordMetric,
    standard_callbacks,
)
from repro.engine.checkpoint import (
    CheckpointError,
    load_checkpoint,
    load_networks,
    save_checkpoint,
    save_networks,
)
from repro.engine.engine import TrainingEngine
from repro.engine.seeding import sampling_rng, seeded_rng
from repro.engine.steps import SupervisedStep, TrainStep

__all__ = [
    "Callback",
    "CallbackList",
    "Checkpointer",
    "EarlyStopping",
    "History",
    "MetricsCallback",
    "PeriodicLogger",
    "RecordMetric",
    "standard_callbacks",
    "SupervisedStep",
    "TrainStep",
    "TrainingEngine",
    "CheckpointError",
    "load_checkpoint",
    "load_networks",
    "save_checkpoint",
    "save_networks",
    "sampling_rng",
    "seeded_rng",
]
