"""Worker-resident state and shared-memory parameter transport.

The stateless ``map(fn, payloads)`` contract of :mod:`repro.runtime.executor`
re-pickles everything a work unit needs on every call.  For round-based
workloads (federated rounds, repeated simulations) most of that payload never
changes: the client's feature partition, a whole KiNETGAN site, a node
pipeline.  This module splits a payload into

* a **resident state** -- installed into the execution plane *once* via
  :meth:`repro.runtime.Executor.install` and addressed afterwards by a small
  picklable :class:`StateRef`; and
* a **per-round delta** -- whatever actually changed (a spawned round seed, a
  flattened parameter buffer), shipped through the ordinary task payload or
  through a :class:`SharedBuffer`.

Transport is executor-specific but the worker-facing API is uniform: a task
carries refs, the worker function calls ``ref.resolve()``.

* In-process executors (serial, thread) hand out :class:`DirectStateRef` /
  :class:`DirectBufferRef`, which hold the object / array itself -- resolving
  is free and nothing is ever copied.
* :class:`~repro.runtime.ProcessExecutor` pickles a resident state **once**
  into a :class:`multiprocessing.shared_memory.SharedMemory` segment and
  hands out :class:`SharedStateRef`.  Every worker process unpickles the
  segment the first time it resolves the ref and caches the object in its
  process-local :class:`StateStore`, so successive rounds ship only the ref
  (a name and a byte count).  :class:`SharedBuffer` maps a numeric array of
  a caller-chosen dtype -- float64 by default, float32 for float32 models,
  which halves the mapped bytes (for example the ``(clients, total_params)``
  round matrices of :mod:`repro.federated.parameters`) -- into shared
  memory: the parent writes parameters in place, workers read -- or write
  their result rows -- without any bytes crossing the task pipe.  Writes
  through :meth:`SharedBuffer.write` are dtype-checked and raise
  :class:`BufferDtypeError` on mismatch instead of silently casting.

Synchronisation contract: rounds are synchronous (``Executor.map`` returns
only after every task finished), so the parent may rewrite a shared buffer
between rounds but never during one, and workers must copy anything they
want to keep past the end of their task.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any

import numpy as np

__all__ = [
    "StateStore",
    "StateRef",
    "DirectStateRef",
    "SharedStateRef",
    "BufferRef",
    "BufferDtypeError",
    "DirectBufferRef",
    "SharedBufferRef",
    "SharedBuffer",
    "LocalBuffer",
    "SharedMemoryBuffer",
    "worker_store",
]


class BufferDtypeError(TypeError):
    """A value's dtype does not match the shared buffer it is written into.

    Raised instead of silently casting: a float64 write into a float32
    transport buffer (or vice versa) would change bits mid-flight and break
    the bit-exact broadcast/update contract of the federated runtime.
    """


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting cleanup responsibility.

    The parent process that created a segment owns its lifetime (it unlinks
    on ``evict``/``close``).  Python 3.13 lets an attaching worker opt out
    of resource tracking with ``track=False``; on older versions the worker
    attaches normally, which is harmless under the Linux default ``fork``
    start method (parent and workers share one resource tracker, and its
    registry is a set, so the extra registration dedupes away).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - Python < 3.13
        return shared_memory.SharedMemory(name=name)


class StateStore:
    """Process-local cache of resolved resident states and attached segments.

    One instance lives at module level in every process (parent and workers
    alike).  ``resolve`` is keyed by segment name, which is unique per
    ``install`` call, so re-installing a state under a new segment never
    collides with a stale cache entry.
    """

    def __init__(self) -> None:
        self._objects: dict[str, Any] = {}
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def __len__(self) -> int:
        return len(self._objects)

    def attach(self, name: str) -> shared_memory.SharedMemory:
        """The (cached) attachment to the shared-memory segment ``name``."""
        segment = self._segments.get(name)
        if segment is None:
            segment = _attach_segment(name)
            self._segments[name] = segment
        return segment

    def resolve(self, name: str, nbytes: int) -> Any:
        """Unpickle (once) and return the resident state stored in ``name``."""
        if name not in self._objects:
            segment = self.attach(name)
            self._objects[name] = pickle.loads(bytes(segment.buf[:nbytes]))
        return self._objects[name]

    def forget(self, name: str) -> None:
        """Drop a cached object/attachment (idempotent)."""
        self._objects.pop(name, None)
        segment = self._segments.pop(name, None)
        if segment is not None:
            segment.close()

    def contains(self, name: str) -> bool:
        """True when a resolved copy of ``name`` is cached here."""
        return name in self._objects

    def purge(self, names) -> None:
        """Drop every cached copy named in ``names`` (eviction broadcast).

        Called by the process-pool work-unit wrapper before a task body
        runs: the parent piggybacks the names of evicted shared-memory
        segments on each dispatch, so a long-lived worker releases the
        memory of resident states the parent has already unlinked instead
        of holding them until the pool closes.
        """
        for name in names:
            self.forget(name)


#: The one store of the current process.  Workers populate it lazily the
#: first time a task resolves a shared ref.
_STORE = StateStore()


def worker_store() -> StateStore:
    """The calling process's :class:`StateStore` (parent or worker)."""
    return _STORE


# --------------------------------------------------------------------------- #
# Resident-state refs
# --------------------------------------------------------------------------- #
class StateRef:
    """Small picklable address of an installed resident state."""

    def resolve(self) -> Any:
        """The resident state, materialised in the calling process."""
        raise NotImplementedError


@dataclass(eq=False)
class DirectStateRef(StateRef):
    """In-process ref: holds the object itself (serial / thread executors)."""

    state: Any

    def resolve(self) -> Any:
        return self.state


@dataclass(frozen=True)
class SharedStateRef(StateRef):
    """Cross-process ref: the state was pickled once into shared memory."""

    name: str
    nbytes: int

    def resolve(self) -> Any:
        return _STORE.resolve(self.name, self.nbytes)


# --------------------------------------------------------------------------- #
# Shared parameter buffers
# --------------------------------------------------------------------------- #
class BufferRef:
    """Picklable address of (a row of) a shared numeric buffer.

    The buffer's dtype travels with the ref, so a worker resolving it maps
    the segment with the exact dtype the parent allocated.
    """

    def resolve(self) -> np.ndarray:
        """The addressed array (a view -- copy anything kept past the task)."""
        raise NotImplementedError


@dataclass(eq=False)
class DirectBufferRef(BufferRef):
    """In-process ref: a view of the parent's own array."""

    array: np.ndarray
    row: int | None = None

    def resolve(self) -> np.ndarray:
        return self.array if self.row is None else self.array[self.row]


@dataclass(frozen=True)
class SharedBufferRef(BufferRef):
    """Cross-process ref: maps the segment and returns an ndarray view.

    ``dtype`` is carried as a dtype name string so the frozen dataclass
    stays hashable and cheaply picklable.
    """

    name: str
    shape: tuple[int, ...]
    row: int | None = None
    dtype: str = "float64"

    def resolve(self) -> np.ndarray:
        segment = _STORE.attach(self.name)
        array: np.ndarray = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=segment.buf)
        return array if self.row is None else array[self.row]


class SharedBuffer:
    """Parent-side handle to a numeric array every worker can address.

    Created with :meth:`repro.runtime.Executor.shared_array` in a caller-
    chosen dtype (float64 by default); ``array`` is the parent's read/write
    view and ``ref(row)`` produces the picklable address a task carries.
    """

    @property
    def array(self) -> np.ndarray:
        raise NotImplementedError

    def ref(self, row: int | None = None) -> BufferRef:
        raise NotImplementedError

    def write(self, value: np.ndarray, row: int | None = None) -> None:
        """Copy ``value`` into the buffer (or into one row), dtype-checked.

        Raises :class:`BufferDtypeError` when ``value``'s dtype differs
        from the buffer's: transport buffers carry bit-exact parameter
        vectors, so a silent cast here would corrupt them mid-flight.
        """
        value = np.asarray(value)
        target = self.array if row is None else self.array[row]
        if value.dtype != target.dtype:
            raise BufferDtypeError(
                f"cannot write {value.dtype} data into a {target.dtype} shared buffer"
            )
        np.copyto(target, value)

    def close(self) -> None:
        """Release the buffer (idempotent)."""


class LocalBuffer(SharedBuffer):
    """Plain in-process array: shared trivially by serial/thread executors."""

    def __init__(self, shape: tuple[int, ...], dtype: np.dtype | type = np.float64) -> None:
        self._array = np.zeros(shape, dtype=dtype)

    @property
    def array(self) -> np.ndarray:
        return self._array

    def ref(self, row: int | None = None) -> DirectBufferRef:
        return DirectBufferRef(self._array, row)


@dataclass(eq=False)
class SharedMemoryBuffer(SharedBuffer):
    """Shared-memory array: one mapping, zero per-round transport bytes."""

    shape: tuple[int, ...]
    dtype: str = "float64"
    _segment: shared_memory.SharedMemory = field(init=False)
    _view: np.ndarray | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        dt = np.dtype(self.dtype)
        self.dtype = dt.name  # normalise np.float32 / dtype objects to the name
        nbytes = int(np.prod(self.shape)) * dt.itemsize
        self._segment = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        self._view = np.ndarray(self.shape, dtype=dt, buffer=self._segment.buf)
        self._view.fill(0.0)

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def array(self) -> np.ndarray:
        if self._view is None:
            raise RuntimeError("shared buffer is closed")
        return self._view

    def ref(self, row: int | None = None) -> SharedBufferRef:
        return SharedBufferRef(self.name, self.shape, row, dtype=self.dtype)

    def close(self) -> None:
        if self._view is None:
            return
        # The numpy view exports the segment's memory; drop it before the
        # mmap is closed or BufferError is raised.
        self._view = None
        self._segment.close()
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
