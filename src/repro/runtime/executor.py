"""Pluggable executors: serial, thread-pool and process-pool execution.

Two contracts make up the execution plane:

* the stateless one -- :meth:`Executor.map` over picklable payloads with a
  module-level function, returning results in submission order; and
* the resident one -- :meth:`Executor.install` places a one-time
  :mod:`resident state <repro.runtime.state>` in the plane and returns a
  small ref, :meth:`Executor.shared_array` allocates a parameter buffer
  every worker can address, and per-round tasks carry only refs plus the
  delta that actually changed.

Both are deliberately tiny: they are exactly what the federated server, the
federated/distributed simulations and the runtime benchmark need, and
anything richer (futures, streaming completion) would make the
serial/parallel parity guarantee harder to reason about.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import pickle
from typing import Any, Callable, Iterable, TypeVar

from repro.runtime.state import (
    DirectStateRef,
    LocalBuffer,
    SharedBuffer,
    SharedMemoryBuffer,
    SharedStateRef,
    StateRef,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "resolve_executor",
]

T = TypeVar("T")
R = TypeVar("R")

#: Spec strings accepted by :func:`resolve_executor` for the serial path.
_SERIAL_NAMES = ("serial", "none", "sync")


def default_worker_count() -> int:
    """Worker count used when a pooled executor is requested without one."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


class Executor:
    """Maps a module-level function over payloads, preserving input order."""

    #: Human-readable executor kind ("serial", "thread" or "process").
    name: str = "abstract"

    def __init__(self) -> None:
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once :meth:`close` released the executor's resources."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")

    def map(self, fn: Callable[[T], R], payloads: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every payload and return results in input order."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Resident state (see repro.runtime.state).  The in-process default
    # stores objects and buffers directly -- resolving a ref is free and
    # nothing is ever pickled; ProcessExecutor overrides with the
    # shared-memory transport.
    # ------------------------------------------------------------------ #
    def install(self, state: object) -> StateRef:
        """Install ``state`` into the execution plane once; returns its ref."""
        self._check_open()
        return DirectStateRef(state)

    def evict(self, ref: StateRef) -> None:
        """Release an installed resident state (idempotent)."""

    def shared_array(self, shape: tuple[int, ...]) -> SharedBuffer:
        """Allocate a float64 parameter buffer addressable from every worker."""
        self._check_open()
        return LocalBuffer(shape)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release worker resources (idempotent; a no-op for serial)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """In-process execution: a plain ordered loop over the payloads.

    This is the default everywhere.  Because the parallel paths feed the
    *same* payloads to the *same* module-level functions, a seeded run under
    :class:`SerialExecutor` is bit-identical to one under
    :class:`ThreadExecutor` or :class:`ProcessExecutor`.
    """

    name = "serial"

    def map(self, fn: Callable[[T], R], payloads: Iterable[T]) -> list[R]:
        return [fn(payload) for payload in payloads]


class ThreadExecutor(Executor):
    """A persistent thread pool: zero pickling, shared address space.

    The numpy-heavy work units of this repository (batched generator /
    discriminator passes, stacked aggregation) spend their time inside BLAS
    kernels that release the GIL, so threads overlap them on multi-core
    machines without any of the pickling a process pool pays.  Resident
    state is the parent's own objects (install/resolve are identity), and
    shared arrays are plain ndarrays -- the zero-copy limit of the
    execution plane.

    Work units must therefore not mutate state they share with other
    concurrently running units; every runtime consumer touches only its own
    client/site/node plus its private row of a shared buffer.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers or default_worker_count()
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        self._check_open()
        if self._pool is None:
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-runtime"
            )
        return self._pool

    def map(self, fn: Callable[[T], R], payloads: Iterable[T]) -> list[R]:
        # Executor.map yields results in submission order even when tasks
        # complete out of order (tested in tests/runtime/test_executor.py).
        return list(self._ensure_pool().map(fn, payloads))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadExecutor(max_workers={self.max_workers})"


class ProcessExecutor(Executor):
    """A persistent process pool shared across successive ``map`` calls.

    The underlying :class:`concurrent.futures.ProcessPoolExecutor` is
    created lazily on first use and reused for every subsequent round, so
    per-round overhead is pickling only, not process start-up.  Payloads and
    the mapped function must be picklable (module-level functions, dataclass
    payloads of arrays/config/seeds/refs).

    Resident state uses the shared-memory transport of
    :mod:`repro.runtime.state`: :meth:`install` pickles the state *once*
    into a segment that every worker attaches and caches on first use, and
    :meth:`shared_array` maps a float64 buffer all processes address
    directly, so steady-state rounds ship refs and deltas only.  Segments
    are unlinked by :meth:`evict` / :meth:`close`.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None, start_method: str | None = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers or default_worker_count()
        self.start_method = start_method
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._installed: dict[str, Any] = {}
        self._buffers: list[SharedMemoryBuffer] = []

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        self._check_open()
        if self._pool is None:
            context = None
            if self.start_method is not None:
                context = multiprocessing.get_context(self.start_method)
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context
            )
        return self._pool

    def map(self, fn: Callable[[T], R], payloads: Iterable[T]) -> list[R]:
        # ProcessPoolExecutor.map already yields results in submission order.
        return list(self._ensure_pool().map(fn, payloads))

    # ------------------------------------------------------------------ #
    def install(self, state: object) -> SharedStateRef:
        from multiprocessing import shared_memory

        self._check_open()
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        segment = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
        segment.buf[: len(payload)] = payload
        self._installed[segment.name] = segment
        return SharedStateRef(name=segment.name, nbytes=len(payload))

    def evict(self, ref: StateRef) -> None:
        if not isinstance(ref, SharedStateRef):
            return
        segment = self._installed.pop(ref.name, None)
        if segment is not None:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def shared_array(self, shape: tuple[int, ...]) -> SharedMemoryBuffer:
        self._check_open()
        buffer = SharedMemoryBuffer(shape)
        self._buffers.append(buffer)
        return buffer

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for segment in self._installed.values():
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._installed.clear()
        for buffer in self._buffers:
            buffer.close()
        self._buffers.clear()
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessExecutor(max_workers={self.max_workers})"


def _pool_spec(text: str, cls: type[Executor]) -> Executor:
    """Parse the ``N`` of a ``"<kind>:N"`` spec into a pool of ``cls``."""
    raw = text.split(":", 1)[1]
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid worker count {raw!r} in executor spec {text!r}"
        ) from None
    if workers < 1:
        raise ValueError("worker count must be at least 1")
    return SerialExecutor() if workers == 1 else cls(max_workers=workers)


def resolve_executor(spec: "Executor | str | int | None") -> Executor:
    """Normalise an executor spec into an :class:`Executor` instance.

    Accepted specs:

    * ``None``, ``0``, ``1``, ``"serial"`` -- the in-process serial executor;
    * an ``int N > 1`` -- a process pool with ``N`` workers;
    * ``"process"`` / ``"process:N"`` -- a process pool (CPU-count sized /
      ``N`` workers);
    * ``"thread"`` / ``"thread:N"`` -- a thread pool (CPU-count sized /
      ``N`` workers), zero pickling, best when work units spend their time
      in GIL-releasing BLAS kernels;
    * an open :class:`Executor` instance -- returned unchanged (a closed
      one is rejected).

    This is the single point where the CLI / example ``--workers`` knob and
    the simulation ``executor=`` parameters meet the runtime.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, Executor):
        if spec.closed:
            raise ValueError(f"executor spec is a closed {type(spec).__name__}")
        return spec
    if isinstance(spec, bool):
        raise TypeError("executor spec must be an Executor, str, int or None")
    if isinstance(spec, int):
        if spec < 0:
            raise ValueError("worker count must be non-negative")
        return SerialExecutor() if spec <= 1 else ProcessExecutor(max_workers=spec)
    if isinstance(spec, str):
        text = spec.strip().lower()
        if text in _SERIAL_NAMES:
            return SerialExecutor()
        if text == "process":
            return ProcessExecutor()
        if text == "thread":
            return ThreadExecutor()
        if text.startswith("process:"):
            return _pool_spec(text, ProcessExecutor)
        if text.startswith("thread:"):
            return _pool_spec(text, ThreadExecutor)
        if text.isdigit():
            return resolve_executor(int(text))
        raise ValueError(
            f"unknown executor spec {spec!r}; expected 'serial', 'process[:N]', 'thread[:N]' or N"
        )
    raise TypeError("executor spec must be an Executor, str, int or None")
