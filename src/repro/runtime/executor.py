"""Pluggable executors: run payload functions serially or on a process pool.

The contract is deliberately tiny -- :meth:`Executor.map` over picklable
payloads with a module-level function -- because that is exactly what the
federated server, the federated/distributed simulations and the runtime
benchmark need, and anything richer (futures, streaming completion) would
make the serial/parallel parity guarantee harder to reason about.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
from typing import Callable, Iterable, TypeVar

__all__ = ["Executor", "SerialExecutor", "ProcessExecutor", "resolve_executor"]

T = TypeVar("T")
R = TypeVar("R")

#: Spec strings accepted by :func:`resolve_executor` for the serial path.
_SERIAL_NAMES = ("serial", "none", "sync")


def default_worker_count() -> int:
    """Worker count used when a process executor is requested without one."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


class Executor:
    """Maps a module-level function over payloads, preserving input order."""

    #: Human-readable executor kind ("serial" or "process").
    name: str = "abstract"

    def map(self, fn: Callable[[T], R], payloads: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every payload and return results in input order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent; a no-op for serial)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """In-process execution: a plain ordered loop over the payloads.

    This is the default everywhere.  Because the parallel path feeds the
    *same* payloads to the *same* module-level functions, a seeded run under
    :class:`SerialExecutor` is bit-identical to one under
    :class:`ProcessExecutor`.
    """

    name = "serial"

    def map(self, fn: Callable[[T], R], payloads: Iterable[T]) -> list[R]:
        return [fn(payload) for payload in payloads]


class ProcessExecutor(Executor):
    """A persistent process pool shared across successive ``map`` calls.

    The underlying :class:`concurrent.futures.ProcessPoolExecutor` is
    created lazily on first use and reused for every subsequent round, so
    per-round overhead is pickling only, not process start-up.  Payloads and
    the mapped function must be picklable (module-level functions, dataclass
    payloads of arrays/config/seeds).
    """

    name = "process"

    def __init__(self, max_workers: int | None = None, start_method: str | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers or default_worker_count()
        self.start_method = start_method
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            context = None
            if self.start_method is not None:
                context = multiprocessing.get_context(self.start_method)
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context
            )
        return self._pool

    def map(self, fn: Callable[[T], R], payloads: Iterable[T]) -> list[R]:
        # ProcessPoolExecutor.map already yields results in submission order.
        return list(self._ensure_pool().map(fn, payloads))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessExecutor(max_workers={self.max_workers})"


def resolve_executor(spec: "Executor | str | int | None") -> Executor:
    """Normalise an executor spec into an :class:`Executor` instance.

    Accepted specs:

    * ``None``, ``0``, ``1``, ``"serial"`` -- the in-process serial executor;
    * an ``int N > 1`` -- a process pool with ``N`` workers;
    * ``"process"`` -- a process pool sized to the available CPUs;
    * ``"process:N"`` -- a process pool with ``N`` workers;
    * an :class:`Executor` instance -- returned unchanged.

    This is the single point where the CLI / example ``--workers`` knob and
    the simulation ``executor=`` parameters meet the runtime.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, Executor):
        return spec
    if isinstance(spec, bool):
        raise TypeError("executor spec must be an Executor, str, int or None")
    if isinstance(spec, int):
        if spec < 0:
            raise ValueError("worker count must be non-negative")
        return SerialExecutor() if spec <= 1 else ProcessExecutor(max_workers=spec)
    if isinstance(spec, str):
        text = spec.strip().lower()
        if text in _SERIAL_NAMES:
            return SerialExecutor()
        if text == "process":
            return ProcessExecutor()
        if text.startswith("process:"):
            workers = int(text.split(":", 1)[1])
            if workers < 1:
                raise ValueError("worker count must be at least 1")
            return SerialExecutor() if workers == 1 else ProcessExecutor(max_workers=workers)
        if text.isdigit():
            return resolve_executor(int(text))
        raise ValueError(
            f"unknown executor spec {spec!r}; expected 'serial', 'process', 'process:N' or N"
        )
    raise TypeError("executor spec must be an Executor, str, int or None")
