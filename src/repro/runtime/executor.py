"""Pluggable executors: serial, thread-pool and process-pool execution.

Three contracts make up the execution plane:

* the stateless one -- :meth:`Executor.map` over picklable payloads with a
  module-level function, returning results in submission order;
* the resident one -- :meth:`Executor.install` places a one-time
  :mod:`resident state <repro.runtime.state>` in the plane and returns a
  small ref, :meth:`Executor.shared_array` allocates a parameter buffer
  every worker can address, and per-round tasks carry only refs plus the
  delta that actually changed; and
* the resilient one -- :meth:`Executor.map_tasks` runs the same payloads
  under a :class:`~repro.runtime.faults.TaskPolicy` (per-task deadlines,
  bounded retries with exponential backoff, seeded fault injection) and
  returns structured :class:`~repro.runtime.faults.TaskResult` s instead of
  raising.  :class:`ProcessExecutor` additionally survives worker crashes:
  a broken pool is respawned, resident :class:`StateRef` s re-resolve
  lazily in the fresh workers (the parent owns the shared-memory segments,
  which outlive the pool), and only the failed seeded tasks are replayed --
  payloads are pure functions of their parent-spawned seeds, so a
  recovered round is bit-identical to a fault-free one.

All three are deliberately tiny: they are exactly what the federated
server, the federated/distributed simulations and the runtime benchmark
need, and anything richer (futures, streaming completion) would make the
serial/parallel parity guarantee harder to reason about.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, TypeVar

import numpy as np

from repro.obs import TraceContext, activate, default_registry, propagation_context
from repro.runtime.faults import (
    NO_FAULT,
    FaultDecision,
    FaultInjector,
    QuorumError,
    StragglerTimeout,
    TaskPolicy,
    TaskResult,
    _TaskState,
    classify_failure,
    execute_fault,
)
from repro.runtime.state import (
    DirectStateRef,
    LocalBuffer,
    SharedBuffer,
    SharedMemoryBuffer,
    SharedStateRef,
    StateRef,
    worker_store,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "map_with_quorum",
]

T = TypeVar("T")
R = TypeVar("R")

#: Spec strings accepted by :func:`resolve_executor` for the serial path.
_SERIAL_NAMES = ("serial", "none", "sync")


def default_worker_count() -> int:
    """Worker count used when a pooled executor is requested without one."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class _TracedTask:
    """Picklable envelope carrying the dispatching span's trace context.

    Wrapping the mapped function (rather than the payloads) keeps every
    payload bit-identical to the untraced run; the worker re-enters the
    coordinator's context before the task body, so spans opened inside
    the work unit parent to the dispatching span -- across thread pools
    and, via the context's JSONL sink path, across process pools too.
    """

    fn: Callable[[Any], Any]
    context: TraceContext

    def __call__(self, payload: Any) -> Any:
        with activate(self.context):
            return self.fn(payload)


def _traced(fn: Callable[[T], R]) -> Callable[[T], R]:
    """Wrap ``fn`` with the current trace context; identity when inert."""
    context = propagation_context()
    if context is None:
        return fn
    return _TracedTask(fn, context)


def _record_task_metrics(executor_name: str, results: list[TaskResult]) -> None:
    """Fold one map_tasks round into the process-wide metrics registry."""
    registry = default_registry()
    labels = {"executor": executor_name}
    registry.counter(
        "repro_tasks_dispatched_total",
        help="Tasks submitted through Executor.map_tasks.",
        labels=labels,
    ).inc(len(results))
    completed = registry.counter(
        "repro_tasks_completed_total",
        help="Tasks that returned a value (possibly after retries).",
        labels=labels,
    )
    elapsed = registry.histogram(
        "repro_task_seconds",
        help="Per-task elapsed seconds summed across attempts.",
        labels=labels,
    )
    retries = 0
    for result in results:
        elapsed.observe(result.elapsed)
        retries += max(0, result.attempts - 1)
        if result.ok:
            completed.inc()
        else:
            registry.counter(
                "repro_tasks_failed_total",
                help="Tasks that exhausted their retries, by failure cause.",
                labels={**labels, "cause": result.failure.cause},
            ).inc()
    if retries:
        registry.counter(
            "repro_task_retries_total",
            help="Extra attempts beyond the first, across all tasks.",
            labels=labels,
        ).inc(retries)


class Executor:
    """Maps a module-level function over payloads, preserving input order."""

    #: Human-readable executor kind ("serial", "thread" or "process").
    name: str = "abstract"

    def __init__(self) -> None:
        self._closed = False
        #: Executor-wide fault source consulted by :meth:`map_tasks` when
        #: the policy does not carry its own (see :meth:`install_faults`).
        self.fault_injector: FaultInjector | None = None
        # Global dispatch counter: tasks are numbered in submission order
        # across successive map_tasks calls, so a FaultInjector schedule
        # addresses "round r, slot s" deterministically.
        self._task_counter = 0

    @property
    def closed(self) -> bool:
        """True once :meth:`close` released the executor's resources."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")

    def map(self, fn: Callable[[T], R], payloads: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every payload and return results in input order."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Resilient execution (see repro.runtime.faults).
    # ------------------------------------------------------------------ #
    def install_faults(self, injector: FaultInjector | None) -> None:
        """Install (or clear) the executor-wide seeded fault injector.

        Every subsequent :meth:`map_tasks` call consults it per dispatch --
        a pure function of ``(seed, task_id, attempt)`` -- unless the call's
        policy carries its own injector.  ``None`` uninstalls.
        """
        self.fault_injector = injector

    def map_tasks(
        self,
        fn: Callable[[T], R],
        payloads: Iterable[T],
        policy: TaskPolicy | None = None,
    ) -> list[TaskResult]:
        """Run every payload under ``policy`` and return structured results.

        Unlike :meth:`map`, a failing task never raises: its
        :class:`~repro.runtime.faults.TaskResult` carries a
        :class:`~repro.runtime.faults.TaskFailure` (cause, attempts,
        elapsed) and every other task still completes.  Failed tasks are
        replayed up to ``policy.retries`` times with exponential backoff;
        because payloads are pure functions of their parent-spawned seeds,
        a successful replay is bit-identical to a fault-free first attempt.
        Results come back in submission order, exactly like :meth:`map`.
        """
        self._check_open()
        fn = _traced(fn)
        policy = policy if policy is not None else TaskPolicy()
        injector = policy.injector if policy.injector is not None else self.fault_injector
        entries: list[_TaskState] = []
        for payload in payloads:
            entries.append(_TaskState(task_id=self._task_counter, payload=payload))
            self._task_counter += 1
        pending = entries
        replay = 0
        while pending:
            if replay > 0:
                backoff = policy.backoff_seconds(replay)
                if backoff > 0:
                    time.sleep(backoff)
            decisions = [
                injector.decide(entry.task_id, entry.attempts)
                if injector is not None
                else NO_FAULT
                for entry in pending
            ]
            self._attempt(fn, pending, decisions, policy)
            pending = [
                entry
                for entry in pending
                if not entry.done and entry.attempts <= policy.retries
            ]
            replay += 1
        results = [entry.to_result(policy) for entry in entries]
        _record_task_metrics(self.name, results)
        return results

    def _attempt(
        self,
        fn: Callable[[T], R],
        entries: list[_TaskState],
        decisions: list[FaultDecision],
        policy: TaskPolicy,
    ) -> None:
        """Run one attempt of every entry, recording outcomes in place."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Resident state (see repro.runtime.state).  The in-process default
    # stores objects and buffers directly -- resolving a ref is free and
    # nothing is ever pickled; ProcessExecutor overrides with the
    # shared-memory transport.
    # ------------------------------------------------------------------ #
    def install(self, state: object) -> StateRef:
        """Install ``state`` into the execution plane once; returns its ref."""
        self._check_open()
        return DirectStateRef(state)

    def evict(self, ref: StateRef) -> None:
        """Release an installed resident state (idempotent)."""

    def shared_array(
        self, shape: tuple[int, ...], dtype: np.dtype | type = np.float64
    ) -> SharedBuffer:
        """Allocate a parameter buffer in ``dtype`` addressable from every worker.

        ``dtype`` defaults to float64; float32 models pass their own dtype so
        the transport carries (and shared-memory maps) half the bytes.
        """
        self._check_open()
        return LocalBuffer(shape, dtype)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release worker resources (idempotent; a no-op for serial)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def _run_guarded(
    fn: Callable[[T], R], payload: T, decision: FaultDecision, timeout: float | None
) -> R:
    """Worker body of an in-process attempt: apply the fault, then run.

    Module-level so the thread pool can submit it; the injected fault runs
    *before* the task body, so an abandoned straggler (injected delay >=
    deadline) raises without ever touching resident state -- in-process
    executors share it with the parent, and running an abandoned attempt
    concurrently with its replay would race.
    """
    execute_fault(decision, timeout, in_process=True)
    return fn(payload)


class SerialExecutor(Executor):
    """In-process execution: a plain ordered loop over the payloads.

    This is the default everywhere.  Because the parallel paths feed the
    *same* payloads to the *same* module-level functions, a seeded run under
    :class:`SerialExecutor` is bit-identical to one under
    :class:`ThreadExecutor` or :class:`ProcessExecutor`.
    """

    name = "serial"

    def map(self, fn: Callable[[T], R], payloads: Iterable[T]) -> list[R]:
        fn = _traced(fn)
        return [fn(payload) for payload in payloads]

    def _attempt(
        self,
        fn: Callable[[T], R],
        entries: list[_TaskState],
        decisions: list[FaultDecision],
        policy: TaskPolicy,
    ) -> None:
        # Inline execution cannot be interrupted, so the deadline is
        # enforced post-hoc: an overrunning task's result is discarded and
        # the task replayed -- value-preserving, because payloads are pure
        # functions of their seeds (the replay recomputes the same bits).
        for entry, decision in zip(entries, decisions):
            entry.attempts += 1
            start = time.perf_counter()
            try:
                value = _run_guarded(fn, entry.payload, decision, policy.timeout)
                elapsed = time.perf_counter() - start
                if policy.timeout is not None and elapsed > policy.timeout:
                    raise StragglerTimeout(
                        f"task ran {elapsed:.3f}s past its {policy.timeout}s deadline"
                    )
                entry.value = value
                entry.done = True
            except Exception as error:
                entry.last_cause = classify_failure(error)
                entry.last_error = f"{type(error).__name__}: {error}"
            finally:
                entry.elapsed += time.perf_counter() - start


class ThreadExecutor(Executor):
    """A persistent thread pool: zero pickling, shared address space.

    The numpy-heavy work units of this repository (batched generator /
    discriminator passes, stacked aggregation) spend their time inside BLAS
    kernels that release the GIL, so threads overlap them on multi-core
    machines without any of the pickling a process pool pays.  Resident
    state is the parent's own objects (install/resolve are identity), and
    shared arrays are plain ndarrays -- the zero-copy limit of the
    execution plane.

    Work units must therefore not mutate state they share with other
    concurrently running units; every runtime consumer touches only its own
    client/site/node plus its private row of a shared buffer.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers or default_worker_count()
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        self._check_open()
        if self._pool is None:
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-runtime"
            )
        return self._pool

    def map(self, fn: Callable[[T], R], payloads: Iterable[T]) -> list[R]:
        # Executor.map yields results in submission order even when tasks
        # complete out of order (tested in tests/runtime/test_executor.py).
        return list(self._ensure_pool().map(_traced(fn), payloads))

    def _attempt(
        self,
        fn: Callable[[T], R],
        entries: list[_TaskState],
        decisions: list[FaultDecision],
        policy: TaskPolicy,
    ) -> None:
        # A timed-out future cannot be interrupted, but injected stragglers
        # raise StragglerTimeout in the worker before the body runs, so the
        # abandoned attempt never mutates shared state; the replay is the
        # only execution.  Genuinely hung (non-injected) work units should
        # be idempotent: an abandoned attempt may still complete later.
        pool = self._ensure_pool()
        futures = [
            pool.submit(_run_guarded, fn, entry.payload, decision, policy.timeout)
            for entry, decision in zip(entries, decisions)
        ]
        _collect_futures(entries, futures, policy)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadExecutor(max_workers={self.max_workers})"


def _collect_futures(
    entries: list[_TaskState],
    futures: list["concurrent.futures.Future"],
    policy: TaskPolicy,
) -> bool:
    """Harvest one attempt's futures in submission order; True if pool broke.

    Each future gets the policy's full deadline measured from the moment
    the parent starts waiting on it (earlier waits overlap later tasks'
    execution, so the effective per-task budget is at least the deadline).
    """
    broken = False
    for entry, future in zip(entries, futures):
        entry.attempts += 1
        start = time.perf_counter()
        try:
            entry.value = future.result(timeout=policy.timeout)
            entry.done = True
        except concurrent.futures.TimeoutError:
            future.cancel()
            entry.last_cause = "timeout"
            entry.last_error = f"no result within the {policy.timeout}s deadline"
        except concurrent.futures.BrokenExecutor as error:
            broken = True
            entry.last_cause = "crash"
            entry.last_error = f"{type(error).__name__}: worker died mid-task"
        except Exception as error:
            future.cancel()
            entry.last_cause = classify_failure(error)
            entry.last_error = f"{type(error).__name__}: {error}"
        finally:
            entry.elapsed += time.perf_counter() - start
    return broken


@dataclass(frozen=True)
class _WorkerItem:
    """One process-pool dispatch: payload + fault decision + housekeeping.

    ``evictions`` piggybacks the names of every shared-memory segment the
    parent has evicted so far; the worker purges its process-local
    :class:`~repro.runtime.state.StateStore` before running the task, so
    long-lived pools actually release the memory of evicted resident
    states instead of holding their materialised copies until pool close.
    """

    payload: Any
    decision: FaultDecision
    timeout: float | None
    evictions: tuple[str, ...]


def _apply_evictions(names: tuple[str, ...]) -> None:
    """Purge evicted resident states from this worker's StateStore."""
    if names:
        worker_store().purge(names)


def _run_worker_item(fn: Callable[[T], R], item: _WorkerItem) -> R:
    """Module-level process-pool work unit: evict, inject, run."""
    _apply_evictions(item.evictions)
    execute_fault(item.decision, item.timeout, in_process=False)
    return fn(item.payload)


def _run_plain_item(fn: Callable[[T], R], evictions: tuple[str, ...], payload: T) -> R:
    """Module-level wrapper for plain ``map`` with pending evictions."""
    _apply_evictions(evictions)
    return fn(payload)


class ProcessExecutor(Executor):
    """A persistent process pool shared across successive ``map`` calls.

    The underlying :class:`concurrent.futures.ProcessPoolExecutor` is
    created lazily on first use and reused for every subsequent round, so
    per-round overhead is pickling only, not process start-up.  Payloads and
    the mapped function must be picklable (module-level functions, dataclass
    payloads of arrays/config/seeds/refs).

    Resident state uses the shared-memory transport of
    :mod:`repro.runtime.state`: :meth:`install` pickles the state *once*
    into a segment that every worker attaches and caches on first use, and
    :meth:`shared_array` maps a buffer of the caller's dtype that all
    processes address directly, so steady-state rounds ship refs and deltas
    only.  Segments are unlinked by :meth:`evict` / :meth:`close`.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None, start_method: str | None = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers or default_worker_count()
        self.start_method = start_method
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._installed: dict[str, Any] = {}
        self._buffers: list[SharedMemoryBuffer] = []
        #: Names of evicted shared-memory segments, broadcast to workers on
        #: every subsequent dispatch (see _WorkerItem).  Cleared whenever
        #: the pool is (re)created: fresh workers hold no stale copies.
        self._evicted_names: list[str] = []
        #: How many times a broken pool was respawned (observability).
        self.respawns = 0

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        self._check_open()
        if self._pool is None:
            context = None
            if self.start_method is not None:
                context = multiprocessing.get_context(self.start_method)
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context
            )
            self._evicted_names.clear()
        return self._pool

    def _respawn_pool(self) -> None:
        """Replace a broken pool; resident state survives in shared memory.

        The parent owns every installed segment and shared buffer, so a
        worker crash costs only the workers' process-local caches: fresh
        workers re-resolve the same :class:`SharedStateRef` s lazily on
        first use, and the caller replays just the failed seeded tasks.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
            self.respawns += 1
            default_registry().counter(
                "repro_pool_respawns_total",
                help="Broken process pools replaced with fresh workers.",
                labels={"executor": self.name},
            ).inc()

    def map(self, fn: Callable[[T], R], payloads: Iterable[T]) -> list[R]:
        # ProcessPoolExecutor.map already yields results in submission order.
        pool = self._ensure_pool()
        fn = _traced(fn)
        evictions = tuple(self._evicted_names)
        try:
            if evictions:
                payloads = list(payloads)
                return list(
                    pool.map(
                        _run_plain_item,
                        [fn] * len(payloads),
                        [evictions] * len(payloads),
                        payloads,
                    )
                )
            return list(pool.map(fn, payloads))
        except concurrent.futures.BrokenExecutor:
            # Surface the raw error (map has no retry semantics; use
            # map_tasks for resilience) but leave the executor usable.
            self._respawn_pool()
            raise

    def _attempt(
        self,
        fn: Callable[[T], R],
        entries: list[_TaskState],
        decisions: list[FaultDecision],
        policy: TaskPolicy,
    ) -> None:
        pool = self._ensure_pool()
        evictions = tuple(self._evicted_names)
        try:
            futures = [
                pool.submit(
                    _run_worker_item,
                    fn,
                    _WorkerItem(
                        payload=entry.payload,
                        decision=decision,
                        timeout=policy.timeout,
                        evictions=evictions,
                    ),
                )
                for entry, decision in zip(entries, decisions)
            ]
        except concurrent.futures.BrokenExecutor as error:
            # The pool broke before this attempt could submit (e.g. during
            # an earlier plain map); count the attempt and let the retry
            # loop replay against a fresh pool.
            for entry in entries:
                entry.attempts += 1
                entry.last_cause = "crash"
                entry.last_error = f"{type(error).__name__}: pool broken at submit"
            self._respawn_pool()
            return
        if _collect_futures(entries, futures, policy):
            self._respawn_pool()

    # ------------------------------------------------------------------ #
    def install(self, state: object) -> SharedStateRef:
        from multiprocessing import shared_memory

        self._check_open()
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        segment = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
        segment.buf[: len(payload)] = payload
        self._installed[segment.name] = segment
        return SharedStateRef(name=segment.name, nbytes=len(payload))

    def evict(self, ref: StateRef) -> None:
        if not isinstance(ref, SharedStateRef):
            return
        segment = self._installed.pop(ref.name, None)
        if segment is not None:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            # Eviction broadcast: a live pool's workers have materialised
            # copies in their process-local StateStores; every subsequent
            # dispatch carries the evicted names so the workers purge them
            # (a no-op for workers that never resolved the ref).
            if self._pool is not None:
                self._evicted_names.append(ref.name)
            default_registry().counter(
                "repro_state_evictions_total",
                help="Resident states evicted from the execution plane.",
                labels={"executor": self.name},
            ).inc()

    def shared_array(
        self, shape: tuple[int, ...], dtype: np.dtype | type = np.float64
    ) -> SharedMemoryBuffer:
        self._check_open()
        buffer = SharedMemoryBuffer(shape, np.dtype(dtype).name)
        self._buffers.append(buffer)
        return buffer

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for segment in self._installed.values():
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._installed.clear()
        for buffer in self._buffers:
            buffer.close()
        self._buffers.clear()
        self._evicted_names.clear()
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessExecutor(max_workers={self.max_workers})"


def map_with_quorum(
    executor: Executor,
    fn: Callable[[T], R],
    payloads: list[T],
    ids: list[str],
    *,
    min_survivors: int = 0,
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.0,
    unit: str = "task",
) -> tuple[list[tuple[int, R]], list[str]]:
    """Fan a round out resiliently; keep the survivors, enforce a quorum.

    The shared round-dispatch pattern of every degrading consumer (the
    federated server, the KiNETGAN coordinator, the distributed
    simulation): run ``payloads`` through :meth:`Executor.map_tasks` under
    the given deadline/retry policy and return ``(survivors, dropped)``,
    where survivors are ``(slot, value)`` pairs in submission order (the
    slot indexes the round's shared result buffers) and ``dropped`` lists
    the ids -- parallel to ``payloads`` -- whose tasks still failed after
    every retry.  Raises :class:`~repro.runtime.faults.QuorumError` before
    the caller touches any state when fewer than ``min_survivors`` remain.

    When no resilience is requested (no deadline, no retries, no installed
    fault injector) this degrades to a plain :meth:`Executor.map`: zero
    overhead and an exception propagates raw, exactly like the
    pre-resilience consumers.
    """
    if timeout is None and retries == 0 and executor.fault_injector is None:
        if len(payloads) < min_survivors:
            default_registry().counter(
                "repro_quorum_failures_total",
                help="Rounds aborted because survivors fell below the quorum.",
                labels={"unit": unit},
            ).inc()
            raise QuorumError(
                f"round dispatches only {len(payloads)} {unit}(s); "
                f"quorum requires {min_survivors}",
                survivors=len(payloads),
                required=min_survivors,
            )
        return list(enumerate(executor.map(fn, payloads))), []
    policy = TaskPolicy(timeout=timeout, retries=retries, backoff=backoff)
    results = executor.map_tasks(fn, payloads, policy)
    survivors = [(slot, result.value) for slot, result in enumerate(results) if result.ok]
    dropped = [ids[slot] for slot, result in enumerate(results) if not result.ok]
    if dropped:
        default_registry().counter(
            "repro_quorum_dropped_total",
            help="Round participants dropped after exhausting retries.",
            labels={"unit": unit},
        ).inc(len(dropped))
    if len(survivors) < min_survivors:
        default_registry().counter(
            "repro_quorum_failures_total",
            help="Rounds aborted because survivors fell below the quorum.",
            labels={"unit": unit},
        ).inc()
        raise QuorumError(
            f"round finished with {len(survivors)} surviving {unit}(s); "
            f"quorum requires {min_survivors}",
            survivors=len(survivors),
            required=min_survivors,
        )
    return survivors, dropped


def _pool_spec(text: str, cls: type[Executor]) -> Executor:
    """Parse the ``N`` of a ``"<kind>:N"`` spec into a pool of ``cls``."""
    raw = text.split(":", 1)[1]
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid worker count {raw!r} in executor spec {text!r}"
        ) from None
    if workers < 1:
        raise ValueError("worker count must be at least 1")
    return SerialExecutor() if workers == 1 else cls(max_workers=workers)


def resolve_executor(spec: "Executor | str | int | None") -> Executor:
    """Normalise an executor spec into an :class:`Executor` instance.

    Accepted specs:

    * ``None``, ``0``, ``1``, ``"serial"`` -- the in-process serial executor;
    * an ``int N > 1`` -- a process pool with ``N`` workers;
    * ``"process"`` / ``"process:N"`` -- a process pool (CPU-count sized /
      ``N`` workers);
    * ``"thread"`` / ``"thread:N"`` -- a thread pool (CPU-count sized /
      ``N`` workers), zero pickling, best when work units spend their time
      in GIL-releasing BLAS kernels;
    * an open :class:`Executor` instance -- returned unchanged (a closed
      one is rejected).

    This is the single point where the CLI / example ``--workers`` knob and
    the simulation ``executor=`` parameters meet the runtime.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, Executor):
        if spec.closed:
            raise ValueError(f"executor spec is a closed {type(spec).__name__}")
        return spec
    if isinstance(spec, bool):
        raise TypeError("executor spec must be an Executor, str, int or None")
    if isinstance(spec, int):
        if spec < 0:
            raise ValueError("worker count must be non-negative")
        return SerialExecutor() if spec <= 1 else ProcessExecutor(max_workers=spec)
    if isinstance(spec, str):
        text = spec.strip().lower()
        if text in _SERIAL_NAMES:
            return SerialExecutor()
        if text == "process":
            return ProcessExecutor()
        if text == "thread":
            return ThreadExecutor()
        if text.startswith("process:"):
            return _pool_spec(text, ProcessExecutor)
        if text.startswith("thread:"):
            return _pool_spec(text, ThreadExecutor)
        if text.isdigit():
            return resolve_executor(int(text))
        raise ValueError(
            f"unknown executor spec {spec!r}; expected 'serial', 'process[:N]', 'thread[:N]' or N"
        )
    raise TypeError("executor spec must be an Executor, str, int or None")
