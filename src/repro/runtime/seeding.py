"""Deterministic child-seed spawning for parallel work units.

A work unit dispatched to a process pool must not share a stateful RNG with
the parent (the parent's copy would never advance) and must not depend on
*where* or *when* it runs.  The discipline used throughout the runtime is:

* the parent owns a :class:`numpy.random.SeedSequence`;
* immediately before dispatch it spawns one child per work unit (spawning
  is stateful on the parent sequence, so successive rounds get fresh,
  non-overlapping streams);
* the payload carries the child and the worker builds its generator with
  ``np.random.default_rng(child)``.

Because the spawn happens in the parent in submission order, the stream a
work unit sees is a pure function of (parent seed, spawn index) -- identical
under the serial and the process executors.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_seeds"]


def spawn_seeds(
    source: "np.random.SeedSequence | int | None", n: int
) -> list[np.random.SeedSequence]:
    """Spawn ``n`` child seed sequences from ``source``.

    ``source`` may be a :class:`~numpy.random.SeedSequence` (spawned from
    directly, advancing its spawn counter), an integer seed or ``None``
    (entropy-seeded).  Results are in spawn order, one per work unit.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not isinstance(source, np.random.SeedSequence):
        source = np.random.SeedSequence(source)
    return source.spawn(n)
