"""Seeded fault injection and the structured task-failure vocabulary.

The paper's deployment is distributed-by-construction: KiNETGAN clients are
independent sites that crash, stall and drop mid-round.  This module gives
the execution plane a way to *exercise* those failure paths
deterministically and a typed vocabulary to report them:

* :class:`FaultInjector` -- a pure function of ``(seed, task_id, attempt)``
  deciding whether a dispatched task crashes its worker, raises, straggles
  (sleeps) or drops its result.  Installable on any
  :class:`~repro.runtime.Executor` (``executor.install_faults(...)``) or
  passed per call through :class:`TaskPolicy`, so every failure scenario is
  bit-reproducible in tests and benchmarks: the same seed and schedule
  produce the same faults on serial, thread and process executors.
* :class:`TaskPolicy` -- per-task deadline, bounded retries with exponential
  backoff, and the injector to consult.
* :class:`TaskResult` / :class:`TaskFailure` -- the structured outcome of
  :meth:`Executor.map_tasks`: a value, or a failure carrying the cause
  (``"crash"`` / ``"error"`` / ``"timeout"`` / ``"drop"``), the attempt
  count and the elapsed seconds.
* :class:`QuorumError` -- raised by round consumers (the federated server,
  the KiNETGAN coordinator, the distributed simulation) when fewer work
  units survive a round than their ``min_clients`` quorum requires.

Determinism-under-replay invariant: a task payload is a pure function of
its parent-spawned seed, so replaying a failed task (after a pool respawn,
a timeout or an injected fault) produces a bit-identical result -- a
recovered round equals a fault-free round.  The parity suite
(``tests/runtime/test_parity.py``) enforces this end to end.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultDecision",
    "FaultInjector",
    "InjectedFault",
    "WorkerCrash",
    "TaskDropped",
    "StragglerTimeout",
    "QuorumError",
    "TaskPolicy",
    "TaskFailure",
    "TaskResult",
]

#: Fault kinds an injector can decide (``"none"`` means run normally).
FAULT_KINDS = ("none", "crash", "error", "delay", "drop")


class InjectedFault(RuntimeError):
    """A deterministic exception injected into a work unit."""


class WorkerCrash(RuntimeError):
    """A worker died mid-task (simulated in-process for serial/thread)."""


class TaskDropped(RuntimeError):
    """A work unit's result was lost in transit (simulated network drop)."""


class StragglerTimeout(RuntimeError):
    """An injected straggler overran its deadline and abandoned the task.

    Raised *in the worker* before the task body runs, so an abandoned
    straggler never executes (and never mutates resident state) -- the
    parent's retry is the only execution, which keeps in-process executors
    race-free under straggler injection.
    """


class QuorumError(RuntimeError):
    """A round finished with fewer surviving work units than its quorum."""

    def __init__(self, message: str, survivors: int, required: int) -> None:
        super().__init__(message)
        self.survivors = survivors
        self.required = required


@dataclass(frozen=True)
class FaultDecision:
    """What the injector decided for one ``(task_id, attempt)`` dispatch."""

    kind: str = "none"
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; options: {FAULT_KINDS}")


#: The no-fault decision (shared; decisions are immutable).
NO_FAULT = FaultDecision()


@dataclass(frozen=True)
class FaultInjector:
    """Seeded, schedule-able fault source: pure in ``(seed, task_id, attempt)``.

    Two modes, combinable:

    * **Schedule** -- ``schedule`` maps ``(task_id, attempt)`` to a fault
      kind (or a :class:`FaultDecision`); anything not listed runs clean.
      ``task_id`` is the executor's global dispatch counter: tasks are
      numbered in submission order across successive ``map_tasks`` calls,
      so ``(round r of k clients, slot s)`` is ``task_id = r * k + s`` and
      a schedule pins a fault to an exact task of an exact round.
    * **Rates** -- ``crash_rate`` / ``error_rate`` / ``delay_rate`` /
      ``drop_rate`` are per-dispatch probabilities drawn from a stream that
      depends only on ``(seed, task_id, attempt)``, never on which process
      or thread runs the task or on wall-clock time.  The same seed
      therefore produces the same fault pattern on every executor.

    The injector is immutable and picklable; deciding allocates one tiny
    ``Generator`` when rates are in play and nothing otherwise.
    """

    seed: int = 0
    crash_rate: float = 0.0
    error_rate: float = 0.0
    delay_rate: float = 0.0
    drop_rate: float = 0.0
    delay_seconds: float = 0.05
    schedule: Mapping[tuple[int, int], "str | FaultDecision"] | None = None

    def __post_init__(self) -> None:
        rates = (self.crash_rate, self.error_rate, self.delay_rate, self.drop_rate)
        if any(rate < 0.0 or rate > 1.0 for rate in rates):
            raise ValueError("fault rates must be in [0, 1]")
        if sum(rates) > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")
        if self.schedule is not None:
            for key, value in self.schedule.items():
                kind = value.kind if isinstance(value, FaultDecision) else value
                if kind not in FAULT_KINDS:
                    raise ValueError(f"unknown fault kind {kind!r} in schedule at {key}")

    # ------------------------------------------------------------------ #
    def decide(self, task_id: int, attempt: int) -> FaultDecision:
        """The fault for dispatch ``(task_id, attempt)`` (pure, seeded)."""
        if self.schedule is not None:
            entry = self.schedule.get((task_id, attempt))
            if entry is not None:
                if isinstance(entry, FaultDecision):
                    return entry
                return FaultDecision(kind=entry, delay_seconds=self.delay_seconds)
        if self.crash_rate or self.error_rate or self.delay_rate or self.drop_rate:
            # One uniform draw from a stream keyed by (seed, task_id,
            # attempt): bit-reproducible and independent of the executor.
            draw = float(
                np.random.default_rng(
                    np.random.SeedSequence(entropy=(self.seed, task_id, attempt))
                ).uniform()
            )
            threshold = self.crash_rate
            if draw < threshold:
                return FaultDecision(kind="crash")
            threshold += self.error_rate
            if draw < threshold:
                return FaultDecision(kind="error")
            threshold += self.delay_rate
            if draw < threshold:
                return FaultDecision(kind="delay", delay_seconds=self.delay_seconds)
            threshold += self.drop_rate
            if draw < threshold:
                return FaultDecision(kind="drop")
        return NO_FAULT

    # ------------------------------------------------------------------ #
    @classmethod
    def crash_once(cls, task_id: int, attempt: int = 0) -> "FaultInjector":
        """A schedule that crashes exactly one dispatch (first attempt)."""
        return cls(schedule={(task_id, attempt): "crash"})

    @classmethod
    def straggle_once(
        cls, task_id: int, delay_seconds: float, attempt: int = 0
    ) -> "FaultInjector":
        """A schedule that delays exactly one dispatch by ``delay_seconds``."""
        return cls(
            schedule={(task_id, attempt): FaultDecision("delay", delay_seconds)}
        )


def execute_fault(
    decision: FaultDecision, timeout: float | None, *, in_process: bool
) -> None:
    """Apply ``decision`` in the worker, before the task body runs.

    * ``crash`` kills the worker process outright (``os._exit``) under a
      process pool -- the realistic segfault/OOM-kill scenario that breaks
      the pool -- and raises :class:`WorkerCrash` under in-process
      executors, where killing the process would take the parent down too.
    * ``error`` raises :class:`InjectedFault`.
    * ``drop`` raises :class:`TaskDropped` (the result never arrives).
    * ``delay`` sleeps ``delay_seconds``; if the injected delay already
      exceeds the task deadline the worker raises
      :class:`StragglerTimeout` *instead of running the body*, so a task
      the parent has given up on is never executed twice concurrently
      (in-process executors share the resident state with the parent).
    """
    if decision.kind == "none":
        return
    if decision.kind == "crash":
        if in_process:
            raise WorkerCrash("injected worker crash")
        os._exit(17)  # noqa: SLF001 - deliberately not an exception
    if decision.kind == "error":
        raise InjectedFault("injected task exception")
    if decision.kind == "drop":
        raise TaskDropped("injected result drop")
    if decision.kind == "delay":
        time.sleep(decision.delay_seconds)
        if timeout is not None and decision.delay_seconds >= timeout:
            raise StragglerTimeout(
                f"injected straggler delay {decision.delay_seconds}s "
                f"exceeded the {timeout}s task deadline"
            )


# --------------------------------------------------------------------------- #
# Policies and structured results
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TaskPolicy:
    """Deadline / retry / injection policy of one ``map_tasks`` call.

    * ``timeout`` -- per-task deadline in seconds (``None`` = unbounded).
      The clock starts when the parent begins waiting on the task, so the
      deadline covers queueing behind a busy pool; under the serial
      executor (which cannot interrupt inline work) it is enforced
      post-hoc: an overrunning task's result is discarded and the task is
      retried, which is value-preserving because payloads are pure
      functions of their seeds.
    * ``retries`` -- how many times a failed task is replayed (0 = fail
      fast).  Each replay re-runs the same payload with the same
      parent-spawned seed, so a successful retry is bit-identical to a
      fault-free first attempt.
    * ``backoff`` / ``backoff_factor`` -- seconds slept before replay
      attempt ``k`` is ``backoff * backoff_factor ** (k - 1)``.
    * ``injector`` -- the fault source to consult for this call;
      falls back to the executor's installed injector when ``None``.
    """

    timeout: float | None = None
    retries: int = 0
    backoff: float = 0.0
    backoff_factor: float = 2.0
    injector: FaultInjector | None = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.backoff < 0:
            raise ValueError("backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")

    def backoff_seconds(self, attempt: int) -> float:
        """Backoff before replay ``attempt`` (1-based replay index)."""
        if self.backoff <= 0 or attempt < 1:
            return 0.0
        return self.backoff * self.backoff_factor ** (attempt - 1)


@dataclass
class TaskFailure:
    """Why a task ultimately failed after exhausting its retries."""

    task_id: int
    cause: str  # "crash" | "error" | "timeout" | "drop"
    message: str
    attempts: int
    elapsed: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"task {self.task_id} failed ({self.cause}) after "
            f"{self.attempts} attempt(s): {self.message}"
        )


@dataclass
class TaskResult:
    """Structured outcome of one task of a ``map_tasks`` call."""

    task_id: int
    value: object = None
    failure: TaskFailure | None = None
    attempts: int = 0
    elapsed: float = 0.0
    retried: bool = False

    @property
    def ok(self) -> bool:
        return self.failure is None

    def unwrap(self):
        """The value, or raise a ``RuntimeError`` describing the failure."""
        if self.failure is not None:
            raise RuntimeError(str(self.failure))
        return self.value


def classify_failure(error: BaseException) -> str:
    """Map a raised exception onto a structured failure cause."""
    if isinstance(error, WorkerCrash):
        return "crash"
    if isinstance(error, (StragglerTimeout, TimeoutError)):
        return "timeout"
    if isinstance(error, TaskDropped):
        return "drop"
    # concurrent.futures raises BrokenProcessPool (a BrokenExecutor) when a
    # worker dies mid-task; imported lazily to keep this module light.
    from concurrent.futures import BrokenExecutor

    if isinstance(error, BrokenExecutor):
        return "crash"
    return "error"


@dataclass
class _TaskState:
    """Parent-side bookkeeping of one task across attempts (internal)."""

    task_id: int
    payload: object
    attempts: int = 0
    started: float = 0.0
    elapsed: float = 0.0
    value: object = None
    done: bool = False
    last_error: str = ""
    last_cause: str = ""

    def to_result(self, policy: TaskPolicy) -> TaskResult:
        if self.done:
            return TaskResult(
                task_id=self.task_id,
                value=self.value,
                attempts=self.attempts,
                elapsed=self.elapsed,
                retried=self.attempts > 1,
            )
        return TaskResult(
            task_id=self.task_id,
            failure=TaskFailure(
                task_id=self.task_id,
                cause=self.last_cause or "error",
                message=self.last_error,
                attempts=self.attempts,
                elapsed=self.elapsed,
            ),
            attempts=self.attempts,
            elapsed=self.elapsed,
            retried=self.attempts > 1,
        )
