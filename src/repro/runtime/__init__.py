"""The execution plane of the multi-node layers.

The paper's deployment story is *distributed*: many devices train
synthesizers and detectors at once.  Everything below the federated /
distributed simulations is already vectorized (PR 2) and unified behind one
training engine (PR 1); this subsystem fans independent per-client /
per-node work units out over pluggable executors -- and, since the
zero-copy refactor, lets round-based workloads keep their heavy state
*resident in the plane* instead of re-shipping it every round.

Design rules (every call site follows them, new ones must too):

1. **Work units are payloads, not closures.**  A payload is a picklable
   object (dataclass of refs + seeds + small deltas) handed to a
   *module-level* function, so it survives the pickle round-trip of a
   process pool under any start method.  Payloads live next to the layer
   that owns them (:mod:`repro.federated.client` defines its round task,
   the distributed simulation its node task); this package only provides
   the executors, the resident-state transport and the seeding discipline.
2. **Split payloads into resident state and per-round delta.**  Anything a
   work unit needs on *every* round but that never changes between rounds
   (a client's feature partition, a whole KiNETGAN site, a node pipeline,
   a shared test table) is installed once with :meth:`Executor.install`
   and addressed by the returned :class:`~repro.runtime.state.StateRef`;
   the per-round payload carries only refs, a spawned round seed and the
   flattened parameter delta.  Broadcast/result parameter matrices travel
   through :meth:`Executor.shared_array`
   (:class:`multiprocessing.shared_memory` under the process executor, the
   parent's own arrays under serial/thread), so steady-state rounds ship
   only the bytes that changed.
3. **Child seeds are spawned in the parent.**  Every payload carries a
   :class:`numpy.random.SeedSequence` child spawned *before* dispatch, so
   the randomness a work unit consumes depends only on (parent seed, spawn
   index) -- never on which process or thread runs it or in which order
   results arrive.  Serial, thread and process execution are therefore
   bit-identical; the parity tests in ``tests/runtime/`` enforce this.
4. **Order in, order out.**  :meth:`Executor.map` always returns results in
   submission order, whatever the completion order was.

Pick an executor with :func:`resolve_executor` (``None``/``"serial"``/``0``/
``1`` -> in-process, ``N > 1`` / ``"process[:N]"`` -> a persistent process
pool, ``"thread[:N]"`` -> a persistent thread pool with zero pickling) or
construct :class:`SerialExecutor` / :class:`ThreadExecutor` /
:class:`ProcessExecutor` directly; all three are context managers.  The CLI
and the example scripts expose the same knob as ``--workers``.
"""

from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_worker_count,
    map_with_quorum,
    resolve_executor,
)
from repro.runtime.faults import (
    FaultDecision,
    FaultInjector,
    InjectedFault,
    QuorumError,
    StragglerTimeout,
    TaskDropped,
    TaskFailure,
    TaskPolicy,
    TaskResult,
    WorkerCrash,
)
from repro.runtime.seeding import spawn_seeds
from repro.runtime.state import (
    BufferRef,
    SharedBuffer,
    StateRef,
    StateStore,
    worker_store,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "default_worker_count",
    "map_with_quorum",
    "resolve_executor",
    "spawn_seeds",
    "StateRef",
    "BufferRef",
    "SharedBuffer",
    "StateStore",
    "worker_store",
    "FaultDecision",
    "FaultInjector",
    "InjectedFault",
    "QuorumError",
    "StragglerTimeout",
    "TaskDropped",
    "TaskFailure",
    "TaskPolicy",
    "TaskResult",
    "WorkerCrash",
]
