"""Parallel execution runtime for the multi-node layers.

The paper's deployment story is *distributed*: many devices train
synthesizers and detectors at once.  Everything below the federated /
distributed simulations is already vectorized (PR 2) and unified behind one
training engine (PR 1); this subsystem removes the last serial tier by
fanning independent per-client / per-node work units out over a process
pool.

Design rules (every call site follows them, new ones must too):

1. **Work units are payloads, not closures.**  A payload is a picklable
   object (dataclass of arrays + config + seeds) handed to a *module-level*
   function, so it survives the pickle round-trip of a process pool under
   any start method.  Payloads live next to the layer that owns them
   (:mod:`repro.federated.client` defines :class:`ClientPayload`, the
   distributed simulation its node task); this package only provides the
   executors and the seeding discipline.
2. **Child seeds are spawned in the parent.**  Every payload carries a
   :class:`numpy.random.SeedSequence` child spawned *before* dispatch, so
   the randomness a work unit consumes depends only on (parent seed, spawn
   index) -- never on which process runs it or in which order results
   arrive.  Serial and parallel execution are therefore bit-identical; the
   parity tests in ``tests/runtime/`` enforce this.
3. **Order in, order out.**  :meth:`Executor.map` always returns results in
   submission order, whatever the completion order was.

Pick an executor with :func:`resolve_executor` (``None``/``"serial"``/``0``/
``1`` -> in-process, ``N > 1`` / ``"process"`` / ``"process:N"`` -> a
persistent worker pool) or construct :class:`SerialExecutor` /
:class:`ProcessExecutor` directly.  The CLI and the example scripts expose
the same knob as ``--workers``.
"""

from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    default_worker_count,
    resolve_executor,
)
from repro.runtime.seeding import spawn_seeds

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "default_worker_count",
    "resolve_executor",
    "spawn_seeds",
]
