"""Table-to-matrix transformation for the generative models.

:class:`DataTransformer` turns a mixed categorical / continuous
:class:`~repro.tabular.table.Table` into a single float matrix and back:

* categorical columns become one-hot blocks (activation ``softmax``),
* continuous columns become either a CTGAN-style mode-specific pair
  ``(alpha, one-hot mode)`` (activations ``tanh`` + ``softmax``) or a single
  min-max scaled scalar (activation ``tanh``).

The per-column layout is exposed via :class:`ColumnOutputInfo` /
:class:`OutputSpan`, which the generators use to apply the right output
activation to each block and which the condition-vector machinery uses to
locate the one-hot block of a conditional attribute.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tabular.encoders import MinMaxScaler, ModeSpecificNormalizer, OneHotEncoder
from repro.tabular.schema import TableSchema
from repro.tabular.table import Table

__all__ = ["OutputSpan", "ColumnOutputInfo", "DataTransformer"]


@dataclass(frozen=True)
class OutputSpan:
    """A contiguous block of transformed features sharing one activation."""

    dim: int
    activation: str  # "tanh" or "softmax"

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise ValueError("span dim must be positive")
        if self.activation not in ("tanh", "softmax"):
            raise ValueError(f"unknown activation {self.activation!r}")


@dataclass(frozen=True)
class ColumnOutputInfo:
    """Transformed layout of one source column."""

    name: str
    kind: str  # "categorical" or "continuous"
    spans: tuple[OutputSpan, ...]
    start: int

    @property
    def dim(self) -> int:
        return sum(span.dim for span in self.spans)

    @property
    def end(self) -> int:
        return self.start + self.dim

    @property
    def onehot_slice(self) -> slice:
        """Slice of the categorical one-hot block within the full matrix.

        For categorical columns this is the whole block; for mode-normalised
        continuous columns it is the mode-indicator block (used only
        internally).  Raises for min-max encoded continuous columns.
        """
        if self.kind == "categorical":
            return slice(self.start, self.end)
        if len(self.spans) == 2:
            return slice(self.start + 1, self.end)
        raise ValueError(f"column {self.name!r} has no one-hot block")


class DataTransformer:
    """Fit/transform/inverse-transform a table into GAN-ready float matrices."""

    def __init__(
        self,
        max_modes: int = 10,
        continuous_encoding: str = "mode",
        seed: int = 0,
    ) -> None:
        if continuous_encoding not in ("mode", "minmax"):
            raise ValueError("continuous_encoding must be 'mode' or 'minmax'")
        self.max_modes = max_modes
        self.continuous_encoding = continuous_encoding
        self.seed = seed
        self.schema: TableSchema | None = None
        self.output_info: list[ColumnOutputInfo] = []
        self._encoders: dict[str, object] = {}
        self._softmax_spans: list[tuple[int, int]] | None = None
        self._fitted = False

    # ------------------------------------------------------------------ #
    def fit(self, table: Table) -> "DataTransformer":
        """Learn per-column encoders from ``table``."""
        self.schema = table.schema
        self.output_info = []
        self._encoders = {}
        cursor = 0
        for spec in table.schema:
            values = table.column(spec.name)
            if spec.is_categorical:
                categories = list(spec.categories) if spec.categories else None
                encoder = OneHotEncoder(categories=categories, handle_unknown="ignore")
                encoder.fit(values)
                spans = (OutputSpan(encoder.dim, "softmax"),)
            elif self.continuous_encoding == "mode":
                encoder = ModeSpecificNormalizer(max_modes=self.max_modes, seed=self.seed)
                encoder.fit(values)
                spans = (OutputSpan(1, "tanh"), OutputSpan(encoder.n_modes, "softmax"))
            else:
                encoder = MinMaxScaler()
                encoder.fit(values)
                spans = (OutputSpan(1, "tanh"),)
            info = ColumnOutputInfo(name=spec.name, kind=spec.kind, spans=spans, start=cursor)
            cursor += info.dim
            self.output_info.append(info)
            self._encoders[spec.name] = encoder
        self._softmax_spans = None
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("DataTransformer used before fit()")

    @property
    def output_dim(self) -> int:
        """Width of the transformed matrix."""
        self._require_fitted()
        return sum(info.dim for info in self.output_info)

    def column_info(self, name: str) -> ColumnOutputInfo:
        self._require_fitted()
        for info in self.output_info:
            if info.name == name:
                return info
        raise KeyError(f"no column named {name!r}")

    def encoder(self, name: str):
        """The fitted encoder for ``name`` (used by the condition machinery)."""
        self._require_fitted()
        return self._encoders[name]

    def activation_spans(self) -> list[tuple[int, int, str]]:
        """Flat ``(start, end, activation)`` list covering the whole output."""
        self._require_fitted()
        spans: list[tuple[int, int, str]] = []
        for info in self.output_info:
            cursor = info.start
            for span in info.spans:
                spans.append((cursor, cursor + span.dim, span.activation))
                cursor += span.dim
        return spans

    def softmax_spans(self) -> list[tuple[int, int]]:
        """Cached ``(start, end)`` bounds of every softmax (one-hot) block."""
        self._require_fitted()
        if self._softmax_spans is None:
            self._softmax_spans = [
                (start, end)
                for start, end, activation in self.activation_spans()
                if activation == "softmax"
            ]
        return self._softmax_spans

    def harden(self, matrix: np.ndarray, inplace: bool = False) -> np.ndarray:
        """Convert soft one-hot blocks to exact one-hot by per-block argmax.

        This is the single hardening path shared by every synthesizer's
        sampling code.  It makes one pass over the cached softmax spans with
        numpy fancy indexing -- no per-block temporaries -- and copies the
        input at most once.  ``inplace=True`` is a copy-avoidance hint for
        callers that own the matrix: when the input is already a float64
        array it is hardened in place and returned; otherwise the dtype
        conversion still produces (and returns) a new array, so callers
        must always use the return value.  ``tanh`` spans are untouched.
        """
        self._require_fitted()
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.output_dim:
            raise ValueError(
                f"expected matrix of width {self.output_dim}, got shape {matrix.shape}"
            )
        out = matrix if inplace else matrix.copy()
        if out.shape[0] == 0:
            return out
        rows = np.arange(out.shape[0])
        for start, end in self.softmax_spans():
            winners = start + out[:, start:end].argmax(axis=1)
            out[:, start:end] = 0.0
            out[rows, winners] = 1.0
        return out

    # ------------------------------------------------------------------ #
    def transform(self, table: Table, rng: np.random.Generator | None = None) -> np.ndarray:
        """Encode ``table`` into a float matrix of shape (rows, output_dim)."""
        self._require_fitted()
        if table.schema.names != self.schema.names:
            raise ValueError("table schema does not match the fitted schema")
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        blocks: list[np.ndarray] = []
        for info in self.output_info:
            encoder = self._encoders[info.name]
            values = table.column(info.name)
            if isinstance(encoder, ModeSpecificNormalizer):
                blocks.append(encoder.transform(values.astype(np.float64), rng=rng))
            elif isinstance(encoder, MinMaxScaler):
                blocks.append(encoder.transform(values.astype(np.float64))[:, None])
            else:
                blocks.append(encoder.transform(values))
        return np.concatenate(blocks, axis=1) if blocks else np.zeros((table.n_rows, 0))

    def inverse_transform(self, matrix: np.ndarray) -> Table:
        """Decode a (possibly soft) matrix back into a typed table."""
        self._require_fitted()
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.output_dim:
            raise ValueError(
                f"expected matrix of width {self.output_dim}, got shape {matrix.shape}"
            )
        columns: dict[str, np.ndarray] = {}
        for info in self.output_info:
            encoder = self._encoders[info.name]
            block = matrix[:, info.start : info.end]
            if isinstance(encoder, ModeSpecificNormalizer):
                columns[info.name] = encoder.inverse_transform(block)
            elif isinstance(encoder, MinMaxScaler):
                columns[info.name] = encoder.inverse_transform(block[:, 0])
            else:
                columns[info.name] = encoder.inverse_transform(block)
        # Clamp continuous columns to schema bounds when provided.
        for spec in self.schema:
            if spec.is_continuous:
                values = np.asarray(columns[spec.name], dtype=np.float64)
                if spec.minimum is not None:
                    values = np.maximum(values, spec.minimum)
                if spec.maximum is not None:
                    values = np.minimum(values, spec.maximum)
                columns[spec.name] = values
        return Table(self.schema, columns)

    # ------------------------------------------------------------------ #
    def apply_output_activations(self, raw: np.ndarray, gumbel_tau: float = 0.2,
                                 rng: np.random.Generator | None = None,
                                 hard: bool = False) -> np.ndarray:
        """Apply per-block output activations to raw generator scores.

        ``tanh`` blocks get a tanh; ``softmax`` blocks get a (Gumbel) softmax.
        With ``hard=True`` the softmax blocks are converted to exact one-hot
        vectors by argmax, which is what sampling-time decoding uses.
        """
        self._require_fitted()
        raw = np.asarray(raw, dtype=np.float64)
        out = np.empty_like(raw)
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        for start, end, activation in self.activation_spans():
            block = raw[:, start:end]
            if activation == "tanh":
                out[:, start:end] = np.tanh(block)
            else:
                if rng is not None and not hard:
                    uniform = rng.uniform(1e-12, 1 - 1e-12, size=block.shape)
                    block = block - np.log(-np.log(uniform)) * gumbel_tau
                shifted = block - block.max(axis=1, keepdims=True)
                soft = np.exp(shifted / gumbel_tau)
                soft /= soft.sum(axis=1, keepdims=True)
                if hard:
                    hard_block = np.zeros_like(soft)
                    hard_block[np.arange(len(soft)), soft.argmax(axis=1)] = 1.0
                    soft = hard_block
                out[:, start:end] = soft
        return out
