"""Table-to-matrix transformation for the generative models.

:class:`DataTransformer` turns a mixed categorical / continuous
:class:`~repro.tabular.table.Table` into a single float matrix and back:

* categorical columns become one-hot blocks (activation ``softmax``),
* continuous columns become either a CTGAN-style mode-specific pair
  ``(alpha, one-hot mode)`` (activations ``tanh`` + ``softmax``) or a single
  min-max scaled scalar (activation ``tanh``).

The per-column layout is exposed via :class:`ColumnOutputInfo` /
:class:`OutputSpan`, which the generators use to apply the right output
activation to each block and which the condition-vector machinery uses to
locate the one-hot block of a conditional attribute.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tabular.encoders import MinMaxScaler, ModeSpecificNormalizer, OneHotEncoder
from repro.tabular.schema import TableSchema
from repro.tabular.segments import BlockLayout
from repro.tabular.table import Table

__all__ = ["OutputSpan", "ColumnOutputInfo", "DataTransformer"]


@dataclass(frozen=True)
class OutputSpan:
    """A contiguous block of transformed features sharing one activation."""

    dim: int
    activation: str  # "tanh" or "softmax"

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise ValueError("span dim must be positive")
        if self.activation not in ("tanh", "softmax"):
            raise ValueError(f"unknown activation {self.activation!r}")


@dataclass(frozen=True)
class ColumnOutputInfo:
    """Transformed layout of one source column."""

    name: str
    kind: str  # "categorical" or "continuous"
    spans: tuple[OutputSpan, ...]
    start: int

    @property
    def dim(self) -> int:
        return sum(span.dim for span in self.spans)

    @property
    def end(self) -> int:
        return self.start + self.dim

    @property
    def onehot_slice(self) -> slice:
        """Slice of the categorical one-hot block within the full matrix.

        For categorical columns this is the whole block; for mode-normalised
        continuous columns it is the mode-indicator block (used only
        internally).  Raises for min-max encoded continuous columns.
        """
        if self.kind == "categorical":
            return slice(self.start, self.end)
        if len(self.spans) == 2:
            return slice(self.start + 1, self.end)
        raise ValueError(f"column {self.name!r} has no one-hot block")


class _DecodePlan:
    """Precomputed batched-decode structure for ``inverse_transform``.

    All categorical columns decode with ONE fancy index into a padded
    ``(n_categorical, max_categories)`` object table; all mode-normalised
    continuous columns decode with a handful of ``(rows, n_mode_columns)``
    array operations against padded per-column mean / std / bound tables.
    The per-column Python work in ``inverse_transform`` drops to slicing the
    result matrices.
    """

    def __init__(self, transformer: "DataTransformer") -> None:
        from repro.tabular.encoders import ModeSpecificNormalizer, OneHotEncoder

        cat_names: list[str] = []
        cat_blocks: list[int] = []
        cat_tables: list[np.ndarray] = []
        mode_names: list[str] = []
        mode_blocks: list[int] = []
        mode_alpha_cols: list[int] = []
        mode_means: list[np.ndarray] = []
        mode_stds: list[np.ndarray] = []
        mode_low: list[float] = []
        mode_high: list[float] = []
        self.minmax: list[tuple[str, object, int, float | None, float | None]] = []
        for info in transformer.output_info:
            encoder = transformer._encoders[info.name]
            spec = transformer.schema.column(info.name)
            if isinstance(encoder, OneHotEncoder):
                cat_names.append(info.name)
                cat_blocks.append(transformer._softmax_block_of(info.name))
                cat_tables.append(encoder._categories_array)
            elif isinstance(encoder, ModeSpecificNormalizer):
                mode_names.append(info.name)
                mode_blocks.append(transformer._softmax_block_of(info.name))
                mode_alpha_cols.append(info.start)
                mode_means.append(encoder.gmm.means)
                mode_stds.append(encoder.gmm.stds)
                mode_low.append(spec.minimum if spec.minimum is not None else -np.inf)
                mode_high.append(spec.maximum if spec.maximum is not None else np.inf)
            else:
                self.minmax.append(
                    (info.name, encoder, info.start, spec.minimum, spec.maximum)
                )
        self.cat_names = cat_names
        self.cat_blocks = np.asarray(cat_blocks, dtype=np.intp)
        self.mode_names = mode_names
        self.mode_blocks = np.asarray(mode_blocks, dtype=np.intp)
        self.mode_alpha_cols = np.asarray(mode_alpha_cols, dtype=np.intp)
        if cat_names:
            max_k = max(len(table) for table in cat_tables)
            self.cat_table = np.empty((len(cat_names), max_k), dtype=object)
            for i, table in enumerate(cat_tables):
                self.cat_table[i, : len(table)] = table
            self.cat_rows = np.arange(len(cat_names))[None, :]
        if mode_names:
            max_k = max(len(means) for means in mode_means)
            self.mode_mu = np.zeros((len(mode_names), max_k))
            self.mode_sigma = np.ones((len(mode_names), max_k))
            for i, (means, stds) in enumerate(zip(mode_means, mode_stds)):
                self.mode_mu[i, : len(means)] = means
                self.mode_sigma[i, : len(stds)] = stds
            self.mode_rows = np.arange(len(mode_names))[None, :]
            self.mode_lo = np.asarray(mode_low)
            self.mode_hi = np.asarray(mode_high)

    def decode(self, matrix: np.ndarray, winners: np.ndarray) -> dict[str, np.ndarray]:
        columns: dict[str, np.ndarray] = {}
        if self.cat_names:
            decoded = self.cat_table[self.cat_rows, winners[:, self.cat_blocks]]
            for i, name in enumerate(self.cat_names):
                columns[name] = decoded[:, i]
        if self.mode_names:
            modes = winners[:, self.mode_blocks]
            alpha = np.clip(matrix[:, self.mode_alpha_cols], -1.0, 1.0)
            mu = self.mode_mu[self.mode_rows, modes]
            sigma = self.mode_sigma[self.mode_rows, modes]
            values = np.clip(alpha * 4.0 * sigma + mu, self.mode_lo, self.mode_hi)
            for i, name in enumerate(self.mode_names):
                columns[name] = values[:, i]
        for name, encoder, start, minimum, maximum in self.minmax:
            values = encoder.inverse_transform(matrix[:, start])
            if minimum is not None:
                values = np.maximum(values, minimum)
            if maximum is not None:
                values = np.minimum(values, maximum)
            columns[name] = values
        return columns


class DataTransformer:
    """Fit/transform/inverse-transform a table into GAN-ready float matrices."""

    def __init__(
        self,
        max_modes: int = 10,
        continuous_encoding: str = "mode",
        seed: int = 0,
    ) -> None:
        if continuous_encoding not in ("mode", "minmax"):
            raise ValueError("continuous_encoding must be 'mode' or 'minmax'")
        self.max_modes = max_modes
        self.continuous_encoding = continuous_encoding
        self.seed = seed
        self.schema: TableSchema | None = None
        self.output_info: list[ColumnOutputInfo] = []
        self._encoders: dict[str, object] = {}
        self._softmax_spans: list[tuple[int, int]] | None = None
        self._softmax_layout_cache: BlockLayout | None = None
        self._softmax_block_index: dict[str, int] | None = None
        self._tanh_columns: np.ndarray | None = None
        self._decode_plan: "_DecodePlan | None" = None
        self._output_dim = 0
        self._fitted = False

    # ------------------------------------------------------------------ #
    def fit(self, table: Table) -> "DataTransformer":
        """Learn per-column encoders from ``table``."""
        self.schema = table.schema
        self.output_info = []
        self._encoders = {}
        cursor = 0
        for spec in table.schema:
            values = table.column(spec.name)
            if spec.is_categorical:
                categories = list(spec.categories) if spec.categories else None
                encoder = OneHotEncoder(categories=categories, handle_unknown="ignore")
                encoder.fit(values)
                spans = (OutputSpan(encoder.dim, "softmax"),)
            elif self.continuous_encoding == "mode":
                encoder = ModeSpecificNormalizer(max_modes=self.max_modes, seed=self.seed)
                encoder.fit(values)
                spans = (OutputSpan(1, "tanh"), OutputSpan(encoder.n_modes, "softmax"))
            else:
                encoder = MinMaxScaler()
                encoder.fit(values)
                spans = (OutputSpan(1, "tanh"),)
            info = ColumnOutputInfo(name=spec.name, kind=spec.kind, spans=spans, start=cursor)
            cursor += info.dim
            self.output_info.append(info)
            self._encoders[spec.name] = encoder
        self._softmax_spans = None
        self._softmax_layout_cache = None
        self._softmax_block_index = None
        self._tanh_columns = None
        self._decode_plan = None
        self._output_dim = cursor
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("DataTransformer used before fit()")

    # ------------------------------------------------------------------ #
    def artifact_state(self) -> dict:
        """Fitted state for the :mod:`repro.serve` artifact format.

        Everything needed to rebuild a bit-identical transformer without the
        training table: constructor knobs, the schema, and each column
        encoder's exact fitted state (category orders, mixture parameters,
        scaling bounds).  The span layout is *not* stored -- it is a pure
        function of (schema, encoders) and is recomputed on restore.
        """
        self._require_fitted()
        return {
            "max_modes": self.max_modes,
            "continuous_encoding": self.continuous_encoding,
            "seed": self.seed,
            "schema": self.schema.to_dict(),
            "encoders": {
                info.name: self._encoders[info.name].artifact_state()
                for info in self.output_info
            },
        }

    @classmethod
    def from_artifact_state(cls, state: dict) -> "DataTransformer":
        """Rebuild a fitted transformer from :meth:`artifact_state` output."""
        from repro.tabular.encoders import encoder_from_state

        transformer = cls(
            max_modes=int(state["max_modes"]),
            continuous_encoding=state["continuous_encoding"],
            seed=int(state["seed"]),
        )
        transformer.schema = TableSchema.from_dict(state["schema"])
        cursor = 0
        for spec in transformer.schema:
            encoder = encoder_from_state(state["encoders"][spec.name])
            if isinstance(encoder, OneHotEncoder):
                spans = (OutputSpan(encoder.dim, "softmax"),)
            elif isinstance(encoder, ModeSpecificNormalizer):
                spans = (OutputSpan(1, "tanh"), OutputSpan(encoder.n_modes, "softmax"))
            else:
                spans = (OutputSpan(1, "tanh"),)
            info = ColumnOutputInfo(name=spec.name, kind=spec.kind, spans=spans, start=cursor)
            cursor += info.dim
            transformer.output_info.append(info)
            transformer._encoders[spec.name] = encoder
        transformer._output_dim = cursor
        transformer._fitted = True
        return transformer

    @property
    def output_dim(self) -> int:
        """Width of the transformed matrix (cached at fit time)."""
        self._require_fitted()
        return self._output_dim

    def column_info(self, name: str) -> ColumnOutputInfo:
        self._require_fitted()
        for info in self.output_info:
            if info.name == name:
                return info
        raise KeyError(f"no column named {name!r}")

    def encoder(self, name: str):
        """The fitted encoder for ``name`` (used by the condition machinery)."""
        self._require_fitted()
        return self._encoders[name]

    def activation_spans(self) -> list[tuple[int, int, str]]:
        """Flat ``(start, end, activation)`` list covering the whole output."""
        self._require_fitted()
        spans: list[tuple[int, int, str]] = []
        for info in self.output_info:
            cursor = info.start
            for span in info.spans:
                spans.append((cursor, cursor + span.dim, span.activation))
                cursor += span.dim
        return spans

    def softmax_spans(self) -> list[tuple[int, int]]:
        """Cached ``(start, end)`` bounds of every softmax (one-hot) block."""
        self._require_fitted()
        if self._softmax_spans is None:
            self._softmax_spans = [
                (start, end)
                for start, end, activation in self.activation_spans()
                if activation == "softmax"
            ]
        return self._softmax_spans

    def softmax_layout(self) -> BlockLayout:
        """Cached :class:`BlockLayout` over every softmax (one-hot) block.

        The layout turns per-block argmax / softmax over the whole matrix
        into a handful of segmented C passes; it is the backbone of the
        batched ``inverse_transform`` / ``apply_output_activations`` paths
        and of the generator's output activation.
        """
        self._require_fitted()
        if self._softmax_layout_cache is None:
            self._softmax_layout_cache = BlockLayout(self.softmax_spans())
        return self._softmax_layout_cache

    def _softmax_block_of(self, name: str) -> int:
        """Index of ``name``'s one-hot (or mode) block within the layout."""
        if self._softmax_block_index is None:
            index: dict[str, int] = {}
            block = 0
            for info in self.output_info:
                for span in info.spans:
                    if span.activation == "softmax":
                        index[info.name] = block
                        block += 1
            self._softmax_block_index = index
        return self._softmax_block_index[name]

    def tanh_columns(self) -> np.ndarray:
        """Cached indices of every tanh-activated (scalar) output column."""
        self._require_fitted()
        if self._tanh_columns is None:
            cols: list[int] = []
            for start, end, activation in self.activation_spans():
                if activation == "tanh":
                    cols.extend(range(start, end))
            self._tanh_columns = np.asarray(cols, dtype=np.intp)
        return self._tanh_columns

    def harden(self, matrix: np.ndarray, inplace: bool = False) -> np.ndarray:
        """Convert soft one-hot blocks to exact one-hot by per-block argmax.

        This is the single hardening path shared by every synthesizer's
        sampling code.  It makes one pass over the cached softmax spans with
        numpy fancy indexing -- no per-block temporaries -- and copies the
        input at most once.  ``inplace=True`` is a copy-avoidance hint for
        callers that own the matrix: when the input is already a float64
        array it is hardened in place and returned; otherwise the dtype
        conversion still produces (and returns) a new array, so callers
        must always use the return value.  ``tanh`` spans are untouched.
        """
        self._require_fitted()
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.output_dim:
            raise ValueError(
                f"expected matrix of width {self.output_dim}, got shape {matrix.shape}"
            )
        out = matrix if inplace else matrix.copy()
        if out.shape[0] == 0:
            return out
        rows = np.arange(out.shape[0])
        for start, end in self.softmax_spans():
            winners = start + out[:, start:end].argmax(axis=1)
            out[:, start:end] = 0.0
            out[rows, winners] = 1.0
        return out

    # ------------------------------------------------------------------ #
    def transform(self, table: Table, rng: np.random.Generator | None = None) -> np.ndarray:
        """Encode ``table`` into a float matrix of shape (rows, output_dim).

        Single-pass: the output matrix is allocated once and every column
        block is written straight into its slice.  Categorical columns go
        through the encoder's integer codes and one scatter write instead of
        building a separate one-hot temporary per column.
        """
        self._require_fitted()
        if table.schema.names != self.schema.names:
            raise ValueError("table schema does not match the fitted schema")
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        n_rows = table.n_rows
        out = np.zeros((n_rows, self.output_dim), dtype=np.float64)
        rows = np.arange(n_rows)
        for info in self.output_info:
            encoder = self._encoders[info.name]
            values = table.column(info.name)
            if isinstance(encoder, ModeSpecificNormalizer):
                out[:, info.start : info.end] = encoder.transform(
                    values.astype(np.float64), rng=rng
                )
            elif isinstance(encoder, MinMaxScaler):
                out[:, info.start] = encoder.transform(values.astype(np.float64))
            else:
                codes = encoder.codes(values)
                known = codes >= 0
                out[rows[known], info.start + codes[known]] = 1.0
        return out

    def inverse_transform(self, matrix: np.ndarray) -> Table:
        """Decode a (possibly soft) matrix back into a typed table.

        The winner of every one-hot / mode block is found in one batched
        segmented-argmax pass over the gathered softmax columns; category
        values are then materialised with one fancy index per column.
        """
        self._require_fitted()
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.output_dim:
            raise ValueError(
                f"expected matrix of width {self.output_dim}, got shape {matrix.shape}"
            )
        layout = self.softmax_layout()
        winners = layout.winners(matrix)
        if self._decode_plan is None:
            self._decode_plan = _DecodePlan(self)
        # Schema bound clamping for continuous columns happens inside the
        # plan (the bounds are baked into the padded decode tables).
        return Table(self.schema, self._decode_plan.decode(matrix, winners))

    # ------------------------------------------------------------------ #
    def apply_output_activations(self, raw: np.ndarray, gumbel_tau: float = 0.2,
                                 rng: np.random.Generator | None = None,
                                 hard: bool = False) -> np.ndarray:
        """Apply per-block output activations to raw generator scores.

        ``tanh`` blocks get a tanh; ``softmax`` blocks get a (Gumbel) softmax.
        With ``hard=True`` the softmax blocks are converted to exact one-hot
        vectors by argmax, which is what sampling-time decoding uses.

        All softmax blocks are processed together via the cached
        :class:`BlockLayout` (one gather, one Gumbel-noise draw, segmented
        softmax, one scatter), so the cost no longer scales with the number
        of columns.
        """
        self._require_fitted()
        raw = np.asarray(raw, dtype=np.float64)
        out = np.empty_like(raw)
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        tanh_cols = self.tanh_columns()
        out[:, tanh_cols] = np.tanh(raw[:, tanh_cols])
        layout = self.softmax_layout()
        if layout.n_blocks:
            gathered = layout.gather(raw)
            if not hard:
                uniform = rng.uniform(1e-12, 1 - 1e-12, size=gathered.shape)
                gathered = gathered - np.log(-np.log(uniform)) * gumbel_tau
            soft = layout.softmax(gathered, tau=gumbel_tau)
            if hard:
                soft = layout.one_hot_from_codes(layout.argmax(soft))
            layout.scatter(out, soft)
        return out
