"""Table schemas: typed column descriptions shared across the package.

A :class:`TableSchema` is the contract between datasets, the data
transformer, the knowledge-graph builder and the synthesizers.  It records,
for every column, whether it is categorical or continuous, and (for
categorical columns) the closed set of admissible values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ColumnSpec", "TableSchema", "CATEGORICAL", "CONTINUOUS"]

CATEGORICAL = "categorical"
CONTINUOUS = "continuous"
_KINDS = (CATEGORICAL, CONTINUOUS)


@dataclass(frozen=True)
class ColumnSpec:
    """Description of a single column.

    Parameters
    ----------
    name:
        Column name, unique within a schema.
    kind:
        Either ``"categorical"`` or ``"continuous"``.
    categories:
        Ordered tuple of admissible values for categorical columns.  Ignored
        for continuous columns.
    minimum, maximum:
        Optional closed bounds for continuous columns; used for validation
        and by the knowledge-graph range rules.
    sensitive:
        Whether the privacy attacks treat this column as a sensitive target
        (attribute inference) rather than as a quasi-identifier.
    """

    name: str
    kind: str
    categories: tuple = ()
    minimum: float | None = None
    maximum: float | None = None
    sensitive: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.kind == CATEGORICAL and not self.categories:
            raise ValueError(f"categorical column {self.name!r} needs categories")
        if (
            self.kind == CONTINUOUS
            and self.minimum is not None
            and self.maximum is not None
            and self.minimum > self.maximum
        ):
            raise ValueError(f"column {self.name!r}: minimum > maximum")
        if self.kind == CATEGORICAL and len(set(self.categories)) != len(self.categories):
            raise ValueError(f"column {self.name!r}: duplicate categories")

    @property
    def is_categorical(self) -> bool:
        return self.kind == CATEGORICAL

    @property
    def is_continuous(self) -> bool:
        return self.kind == CONTINUOUS

    @property
    def num_categories(self) -> int:
        return len(self.categories)


@dataclass
class TableSchema:
    """An ordered collection of :class:`ColumnSpec` objects."""

    columns: list[ColumnSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError("duplicate column names in schema")

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def column(self, name: str) -> ColumnSpec:
        """Return the spec for ``name`` or raise ``KeyError``."""
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise KeyError(f"no column named {name!r}")

    def index_of(self, name: str) -> int:
        for i, spec in enumerate(self.columns):
            if spec.name == name:
                return i
        raise KeyError(f"no column named {name!r}")

    @property
    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def categorical_names(self) -> list[str]:
        return [c.name for c in self.columns if c.is_categorical]

    @property
    def continuous_names(self) -> list[str]:
        return [c.name for c in self.columns if c.is_continuous]

    @property
    def sensitive_names(self) -> list[str]:
        return [c.name for c in self.columns if c.sensitive]

    def subset(self, names: list[str]) -> "TableSchema":
        """Schema restricted to ``names``, preserving their given order."""
        return TableSchema([self.column(name) for name in names])

    def without(self, names: list[str]) -> "TableSchema":
        """Schema with the listed columns removed."""
        drop = set(names)
        return TableSchema([c for c in self.columns if c.name not in drop])

    def validate_value(self, name: str, value) -> bool:
        """Check a scalar against the column's domain (categories or bounds)."""
        spec = self.column(name)
        if spec.is_categorical:
            return value in spec.categories
        try:
            numeric = float(value)
        except (TypeError, ValueError):
            return False
        if spec.minimum is not None and numeric < spec.minimum:
            return False
        if spec.maximum is not None and numeric > spec.maximum:
            return False
        return True

    def to_dict(self) -> dict:
        """JSON-serialisable representation of the schema."""
        return {
            "columns": [
                {
                    "name": c.name,
                    "kind": c.kind,
                    "categories": list(c.categories),
                    "minimum": c.minimum,
                    "maximum": c.maximum,
                    "sensitive": c.sensitive,
                }
                for c in self.columns
            ]
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TableSchema":
        """Inverse of :meth:`to_dict`."""
        return cls(
            [
                ColumnSpec(
                    name=c["name"],
                    kind=c["kind"],
                    categories=tuple(c.get("categories", ())),
                    minimum=c.get("minimum"),
                    maximum=c.get("maximum"),
                    sensitive=c.get("sensitive", False),
                )
                for c in payload["columns"]
            ]
        )
