"""Column encoders.

The synthesizers never see raw table values; every column is encoded into a
float representation first.  This module provides:

* :class:`OneHotEncoder` / :class:`OrdinalEncoder` for categorical columns,
* :class:`MinMaxScaler` / :class:`StandardScaler` for continuous columns,
* :class:`GaussianMixtureModel`, a small EM-fitted mixture used by
* :class:`ModeSpecificNormalizer`, the CTGAN-style representation of a
  continuous value as (normalised offset within a mode, one-hot mode id).

All encoders follow a ``fit`` / ``transform`` / ``inverse_transform``
protocol and raise if used before fitting.

Fitted encoders also implement the artifact-state protocol used by
:mod:`repro.serve`: ``artifact_state()`` returns a plain dict capturing the
fitted state exactly (category lists in first-seen order, mixture
parameters, scaling bounds) and :func:`encoder_from_state` rebuilds an
encoder that transforms and decodes bit-identically to the original.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "OneHotEncoder",
    "OrdinalEncoder",
    "MinMaxScaler",
    "StandardScaler",
    "GaussianMixtureModel",
    "ModeSpecificNormalizer",
    "encoder_from_state",
]


class _FittedMixin:
    _fitted = False

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} used before fit()")


class _CategoryCodec(_FittedMixin):
    """Shared category <-> integer-code machinery for categorical encoders.

    Categories are held three ways: as a plain list (the public API), as a
    ``{value: code}`` dict for O(1) lookup, and as an object ndarray so that
    decoding a whole batch of codes is a single fancy-index operation.
    """

    def __init__(self, categories: list | None = None) -> None:
        self.categories: list = list(categories) if categories is not None else []
        self._index: dict = {}
        self._categories_array: np.ndarray | None = None
        if categories is not None:
            self._set_categories(self.categories)
            self._fitted = True

    def _set_categories(self, categories: list) -> None:
        self.categories = list(categories)
        self._index = {value: i for i, value in enumerate(self.categories)}
        self._categories_array = np.empty(len(self.categories), dtype=object)
        self._categories_array[:] = self.categories

    def _fit_from_values(self, values: np.ndarray) -> None:
        if not self._fitted:
            seen: dict = {}
            for value in values:
                if value not in seen:
                    seen[value] = len(seen)
            self._set_categories(list(seen))
            self._fitted = True

    def codes(self, values) -> np.ndarray:
        """Integer codes for a batch of raw values (-1 marks unknowns)."""
        self._require_fitted()
        get = self._index.get
        return np.fromiter((get(v, -1) for v in values), dtype=np.int64, count=len(values))

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Category values for a batch of integer codes (fancy-indexed)."""
        self._require_fitted()
        return self._categories_array[codes]


def encoder_from_state(state: dict):
    """Rebuild a fitted encoder from an ``artifact_state()`` dict."""
    kind = state.get("type")
    types = {
        "onehot": OneHotEncoder,
        "ordinal": OrdinalEncoder,
        "minmax": MinMaxScaler,
        "standard": StandardScaler,
        "gmm": GaussianMixtureModel,
        "mode_specific": ModeSpecificNormalizer,
    }
    if kind not in types:
        raise ValueError(f"unknown encoder state type {kind!r}")
    return types[kind].from_artifact_state(state)


class OneHotEncoder(_CategoryCodec):
    """One-hot encoding for a single categorical column.

    Categories can be provided up front (so the encoding matches a schema /
    knowledge-graph domain exactly) or learned from data in first-seen order.
    Unknown values at transform time raise ``ValueError`` unless
    ``handle_unknown='ignore'``, in which case they map to the all-zero row.

    ``transform`` / ``inverse_transform`` are batched array operations: values
    are mapped to integer codes once, then the one-hot matrix is built with a
    single scatter write (and decoded with a single fancy index).
    """

    def __init__(self, categories: list | None = None, handle_unknown: str = "error") -> None:
        if handle_unknown not in ("error", "ignore"):
            raise ValueError("handle_unknown must be 'error' or 'ignore'")
        self.handle_unknown = handle_unknown
        super().__init__(categories)

    def fit(self, values: np.ndarray) -> "OneHotEncoder":
        self._fit_from_values(values)
        return self

    @property
    def dim(self) -> int:
        self._require_fitted()
        return len(self.categories)

    def codes(self, values) -> np.ndarray:
        """Integer codes for raw values; unknowns are -1 (or raise in
        ``handle_unknown='error'`` mode)."""
        codes = super().codes(values)
        if self.handle_unknown == "error" and (codes < 0).any():
            bad = values[int(np.argmax(codes < 0))]
            raise ValueError(f"unknown category {bad!r}")
        return codes

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._require_fitted()
        codes = self.codes(values)
        out = np.zeros((len(values), len(self.categories)), dtype=np.float64)
        known = codes >= 0
        out[np.nonzero(known)[0], codes[known]] = 1.0
        return out

    def inverse_transform(self, encoded: np.ndarray) -> np.ndarray:
        """Map (possibly soft) one-hot rows back to category values by argmax."""
        self._require_fitted()
        return self.decode(np.argmax(encoded, axis=1))

    def artifact_state(self) -> dict:
        self._require_fitted()
        return {
            "type": "onehot",
            "categories": list(self.categories),
            "handle_unknown": self.handle_unknown,
        }

    @classmethod
    def from_artifact_state(cls, state: dict) -> "OneHotEncoder":
        return cls(
            categories=list(state["categories"]),
            handle_unknown=state.get("handle_unknown", "error"),
        )


class OrdinalEncoder(_CategoryCodec):
    """Map categories to integer codes ``0..K-1`` (used by tree classifiers)."""

    def fit(self, values: np.ndarray) -> "OrdinalEncoder":
        self._fit_from_values(values)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._require_fitted()
        codes = self.codes(values)
        if (codes < 0).any():
            bad = values[int(np.argmax(codes < 0))]
            raise ValueError(f"unknown category {bad!r}")
        return codes.astype(np.float64)

    def inverse_transform(self, codes: np.ndarray) -> np.ndarray:
        self._require_fitted()
        clipped = np.clip(np.rint(codes).astype(int), 0, len(self.categories) - 1)
        return self.decode(clipped)

    def artifact_state(self) -> dict:
        self._require_fitted()
        return {"type": "ordinal", "categories": list(self.categories)}

    @classmethod
    def from_artifact_state(cls, state: dict) -> "OrdinalEncoder":
        return cls(categories=list(state["categories"]))


class MinMaxScaler(_FittedMixin):
    """Scale a continuous column into ``[-1, 1]`` (TableGAN-style)."""

    def __init__(self) -> None:
        self.minimum = 0.0
        self.maximum = 1.0

    def fit(self, values: np.ndarray) -> "MinMaxScaler":
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            raise ValueError("cannot fit MinMaxScaler on empty data")
        self.minimum = float(values.min())
        self.maximum = float(values.max())
        self._fitted = True
        return self

    @property
    def span(self) -> float:
        return max(self.maximum - self.minimum, 1e-12)

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._require_fitted()
        values = np.asarray(values, dtype=np.float64)
        return 2.0 * (values - self.minimum) / self.span - 1.0

    def inverse_transform(self, scaled: np.ndarray) -> np.ndarray:
        self._require_fitted()
        scaled = np.clip(np.asarray(scaled, dtype=np.float64), -1.0, 1.0)
        return (scaled + 1.0) / 2.0 * self.span + self.minimum

    def artifact_state(self) -> dict:
        self._require_fitted()
        return {"type": "minmax", "minimum": self.minimum, "maximum": self.maximum}

    @classmethod
    def from_artifact_state(cls, state: dict) -> "MinMaxScaler":
        scaler = cls()
        scaler.minimum = float(state["minimum"])
        scaler.maximum = float(state["maximum"])
        scaler._fitted = True
        return scaler


class StandardScaler(_FittedMixin):
    """Zero-mean unit-variance scaling."""

    def __init__(self) -> None:
        self.mean = 0.0
        self.std = 1.0

    def fit(self, values: np.ndarray) -> "StandardScaler":
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            raise ValueError("cannot fit StandardScaler on empty data")
        self.mean = float(values.mean())
        self.std = float(values.std()) or 1.0
        self._fitted = True
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return (np.asarray(values, dtype=np.float64) - self.mean) / self.std

    def inverse_transform(self, scaled: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return np.asarray(scaled, dtype=np.float64) * self.std + self.mean

    def artifact_state(self) -> dict:
        self._require_fitted()
        return {"type": "standard", "mean": self.mean, "std": self.std}

    @classmethod
    def from_artifact_state(cls, state: dict) -> "StandardScaler":
        scaler = cls()
        scaler.mean = float(state["mean"])
        scaler.std = float(state["std"])
        scaler._fitted = True
        return scaler


class GaussianMixtureModel(_FittedMixin):
    """One-dimensional Gaussian mixture fitted with EM.

    A deliberately small implementation: k-means++-style seeding, a fixed
    number of EM iterations, and pruning of components whose weight falls
    below ``weight_threshold`` (mirroring the variational GMM behaviour that
    CTGAN relies on to pick the number of modes automatically).
    """

    def __init__(
        self,
        max_components: int = 10,
        max_iter: int = 50,
        weight_threshold: float = 5e-3,
        seed: int = 0,
    ) -> None:
        if max_components < 1:
            raise ValueError("max_components must be at least 1")
        self.max_components = max_components
        self.max_iter = max_iter
        self.weight_threshold = weight_threshold
        self.seed = seed
        self.weights = np.asarray([1.0])
        self.means = np.asarray([0.0])
        self.stds = np.asarray([1.0])

    @property
    def n_components(self) -> int:
        self._require_fitted()
        return len(self.weights)

    def fit(self, values: np.ndarray) -> "GaussianMixtureModel":
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            raise ValueError("cannot fit GMM on empty data")
        rng = np.random.default_rng(self.seed)
        unique = np.unique(values)
        k = int(min(self.max_components, len(unique)))
        # Seed means from quantiles for stability; add jitter to break ties.
        quantiles = np.linspace(0.0, 1.0, k + 2)[1:-1] if k > 1 else np.asarray([0.5])
        means = np.quantile(values, quantiles)
        means = means + rng.normal(0, 1e-6, size=k)
        global_std = values.std() or 1.0
        stds = np.full(k, global_std / max(k, 1) + 1e-6)
        weights = np.full(k, 1.0 / k)

        for _ in range(self.max_iter):
            # E-step: responsibilities.
            resp = self._responsibilities(values, weights, means, stds)
            # M-step.
            nk = resp.sum(axis=0) + 1e-12
            weights = nk / len(values)
            means = (resp * values[:, None]).sum(axis=0) / nk
            variance = (resp * (values[:, None] - means) ** 2).sum(axis=0) / nk
            stds = np.sqrt(np.maximum(variance, 1e-12))

        keep = weights > self.weight_threshold
        if not keep.any():
            keep[np.argmax(weights)] = True
        self.weights = weights[keep] / weights[keep].sum()
        self.means = means[keep]
        # Floor the per-mode spread relative to the overall spread so that a
        # collapsed mode cannot assign absurdly low likelihood to nearby data.
        std_floor = max(1e-6, 1e-3 * float(global_std))
        self.stds = np.maximum(stds[keep], std_floor)
        self._fitted = True
        return self

    @staticmethod
    def _responsibilities(
        values: np.ndarray, weights: np.ndarray, means: np.ndarray, stds: np.ndarray
    ) -> np.ndarray:
        log_prob = (
            -0.5 * ((values[:, None] - means) / stds) ** 2
            - np.log(stds)
            - 0.5 * np.log(2 * np.pi)
            + np.log(weights + 1e-12)
        )
        log_prob -= log_prob.max(axis=1, keepdims=True)
        prob = np.exp(log_prob)
        return prob / prob.sum(axis=1, keepdims=True)

    def predict_proba(self, values: np.ndarray) -> np.ndarray:
        """Posterior mode-membership probabilities for each value."""
        self._require_fitted()
        values = np.asarray(values, dtype=np.float64)
        return self._responsibilities(values, self.weights, self.means, self.stds)

    def log_likelihood(self, values: np.ndarray) -> float:
        """Mean log-likelihood of ``values`` under the fitted mixture."""
        self._require_fitted()
        values = np.asarray(values, dtype=np.float64)
        log_prob = (
            -0.5 * ((values[:, None] - self.means) / self.stds) ** 2
            - np.log(self.stds)
            - 0.5 * np.log(2 * np.pi)
            + np.log(self.weights + 1e-12)
        )
        max_log = log_prob.max(axis=1, keepdims=True)
        lse = max_log.squeeze(1) + np.log(np.exp(log_prob - max_log).sum(axis=1))
        return float(lse.mean())

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` samples from the fitted mixture."""
        self._require_fitted()
        components = rng.choice(len(self.weights), size=n, p=self.weights)
        return rng.normal(self.means[components], self.stds[components])

    def artifact_state(self) -> dict:
        self._require_fitted()
        return {
            "type": "gmm",
            "max_components": self.max_components,
            "max_iter": self.max_iter,
            "weight_threshold": self.weight_threshold,
            "seed": self.seed,
            "weights": np.asarray(self.weights, dtype=np.float64),
            "means": np.asarray(self.means, dtype=np.float64),
            "stds": np.asarray(self.stds, dtype=np.float64),
        }

    @classmethod
    def from_artifact_state(cls, state: dict) -> "GaussianMixtureModel":
        gmm = cls(
            max_components=int(state["max_components"]),
            max_iter=int(state["max_iter"]),
            weight_threshold=float(state["weight_threshold"]),
            seed=int(state["seed"]),
        )
        gmm.weights = np.asarray(state["weights"], dtype=np.float64)
        gmm.means = np.asarray(state["means"], dtype=np.float64)
        gmm.stds = np.asarray(state["stds"], dtype=np.float64)
        gmm._fitted = True
        return gmm


class ModeSpecificNormalizer(_FittedMixin):
    """CTGAN mode-specific normalisation for one continuous column.

    A value ``v`` becomes ``(alpha, beta)`` where ``beta`` is the one-hot id
    of the sampled mode (by posterior probability) and
    ``alpha = clip((v - mu_k) / (4 * sigma_k), -1, 1)`` is the offset within
    that mode.  ``inverse_transform`` reverses the mapping using the argmax
    mode of the (possibly soft) ``beta`` block.
    """

    def __init__(self, max_modes: int = 10, seed: int = 0) -> None:
        self.gmm = GaussianMixtureModel(max_components=max_modes, seed=seed)
        self.seed = seed

    def fit(self, values: np.ndarray) -> "ModeSpecificNormalizer":
        self.gmm.fit(np.asarray(values, dtype=np.float64))
        self._fitted = True
        return self

    @property
    def n_modes(self) -> int:
        self._require_fitted()
        return self.gmm.n_components

    @property
    def dim(self) -> int:
        """Width of the encoded representation: 1 scalar + one-hot modes."""
        return 1 + self.n_modes

    def transform(self, values: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        """Encode a batch of values as ``(alpha, one-hot mode)`` rows.

        Mode assignment is a single batched inverse-CDF draw over the
        posterior mode probabilities (one ``rng.uniform`` call for the whole
        batch) rather than a per-row categorical draw; the sampled
        distribution is identical, only the RNG draw order differs.
        """
        self._require_fitted()
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        values = np.asarray(values, dtype=np.float64)
        proba = self.gmm.predict_proba(values)
        cumulative = np.cumsum(proba, axis=1)
        draws = rng.uniform(size=len(values))
        modes = np.minimum(
            (cumulative < draws[:, None]).sum(axis=1), self.gmm.n_components - 1
        )
        out = np.zeros((len(values), 1 + self.gmm.n_components), dtype=np.float64)
        out[:, 0] = self._alpha_for_modes(values, modes)
        out[np.arange(len(values)), 1 + modes] = 1.0
        return out

    def _alpha_for_modes(self, values: np.ndarray, modes: np.ndarray) -> np.ndarray:
        mu = self.gmm.means[modes]
        sigma = self.gmm.stds[modes]
        return np.clip((values - mu) / (4.0 * sigma), -1.0, 1.0)

    def inverse_from_modes(self, alpha: np.ndarray, modes: np.ndarray) -> np.ndarray:
        """Decode from the alpha scalar and already-resolved mode indices.

        This is the fused fast path used by
        :meth:`~repro.tabular.transformer.DataTransformer.inverse_transform`,
        which computes every block's argmax in one batched pass.
        """
        self._require_fitted()
        alpha = np.clip(np.asarray(alpha, dtype=np.float64), -1.0, 1.0)
        mu = self.gmm.means[modes]
        sigma = self.gmm.stds[modes]
        return alpha * 4.0 * sigma + mu

    def inverse_transform(self, encoded: np.ndarray) -> np.ndarray:
        self._require_fitted()
        encoded = np.asarray(encoded, dtype=np.float64)
        if encoded.shape[1] != self.dim:
            raise ValueError(f"expected width {self.dim}, got {encoded.shape[1]}")
        return self.inverse_from_modes(encoded[:, 0], np.argmax(encoded[:, 1:], axis=1))

    def artifact_state(self) -> dict:
        self._require_fitted()
        return {"type": "mode_specific", "seed": self.seed, "gmm": self.gmm.artifact_state()}

    @classmethod
    def from_artifact_state(cls, state: dict) -> "ModeSpecificNormalizer":
        gmm = GaussianMixtureModel.from_artifact_state(state["gmm"])
        normalizer = cls(max_modes=gmm.max_components, seed=int(state["seed"]))
        normalizer.gmm = gmm
        normalizer._fitted = True
        return normalizer
