"""Dataset splitting helpers."""

from __future__ import annotations

import numpy as np

from repro.tabular.table import Table

__all__ = ["train_test_split", "kfold_indices"]


def train_test_split(
    table: Table,
    test_fraction: float = 0.25,
    rng: np.random.Generator | None = None,
    stratify_column: str | None = None,
) -> tuple[Table, Table]:
    """Split a table into train and test partitions.

    With ``stratify_column`` given, every category keeps (approximately) the
    same proportion in both partitions, which matters for the heavily
    imbalanced attack labels in the NIDS datasets.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng()
    n = table.n_rows
    if n < 2:
        raise ValueError("need at least two rows to split")

    if stratify_column is None:
        permutation = rng.permutation(n)
        n_test = max(1, int(round(n * test_fraction)))
        test_idx = permutation[:n_test]
        train_idx = permutation[n_test:]
    else:
        labels = table.column(stratify_column)
        train_parts: list[np.ndarray] = []
        test_parts: list[np.ndarray] = []
        for value in dict.fromkeys(labels):
            indices = np.nonzero(labels == value)[0]
            indices = rng.permutation(indices)
            n_test = int(round(len(indices) * test_fraction))
            if len(indices) > 1:
                n_test = min(max(n_test, 1), len(indices) - 1)
            else:
                n_test = 0
            test_parts.append(indices[:n_test])
            train_parts.append(indices[n_test:])
        train_idx = np.concatenate(train_parts) if train_parts else np.asarray([], dtype=int)
        test_idx = np.concatenate(test_parts) if test_parts else np.asarray([], dtype=int)
        train_idx = rng.permutation(train_idx)
        test_idx = rng.permutation(test_idx)

    return table.select_rows(train_idx), table.select_rows(test_idx)


def kfold_indices(
    n: int, k: int, rng: np.random.Generator | None = None
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return ``k`` (train_indices, test_indices) pairs over ``range(n)``."""
    if k < 2:
        raise ValueError("k must be at least 2")
    if n < k:
        raise ValueError("cannot make more folds than rows")
    rng = rng if rng is not None else np.random.default_rng()
    permutation = rng.permutation(n)
    folds = np.array_split(permutation, k)
    splits: list[tuple[np.ndarray, np.ndarray]] = []
    for i in range(k):
        test_idx = folds[i]
        train_idx = np.concatenate([folds[j] for j in range(k) if j != i])
        splits.append((train_idx, test_idx))
    return splits
