"""A minimal column-store table.

:class:`Table` provides the handful of dataframe operations the rest of the
package relies on (column access, row selection, filtering, sampling,
value counts, CSV round-trips) without pulling in pandas.  Columns are plain
numpy arrays: ``float64`` for continuous columns and ``object`` for
categorical columns, so category values can be strings, ints or tuples.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.tabular.schema import TableSchema

__all__ = ["Table", "factorize_values"]


def factorize_values(values) -> tuple[np.ndarray, list]:
    """``(codes, uniques)`` for a value sequence, uniques in first-seen order.

    Unlike ``np.unique`` this never compares values against each other, so
    mixed-type object sequences (ints and strings) are safe.  Shared by
    :meth:`Table.factorize`, the KG reasoner's batched validity mask and the
    knowledge discriminator's event grouping.
    """
    seen: dict = {}
    setdefault = seen.setdefault
    codes = np.fromiter(
        (setdefault(v, len(seen)) for v in values), dtype=np.int64, count=len(values)
    )
    return codes, list(seen)


class Table:
    """Column-oriented table bound to a :class:`TableSchema`."""

    def __init__(self, schema: TableSchema, columns: dict[str, np.ndarray]) -> None:
        if set(columns) != set(schema.names):
            missing = set(schema.names) - set(columns)
            extra = set(columns) - set(schema.names)
            raise ValueError(
                f"columns do not match schema (missing={sorted(missing)}, extra={sorted(extra)})"
            )
        lengths = {len(columns[name]) for name in schema.names}
        if len(lengths) > 1:
            raise ValueError(f"columns have inconsistent lengths: {sorted(lengths)}")
        self.schema = schema
        self._columns: dict[str, np.ndarray] = {}
        for spec in schema:
            values = np.asarray(columns[spec.name])
            # Columns already in their storage dtype are adopted as-is
            # (columns are treated as immutable throughout; ``column()``
            # documents that it returns the backing array, not a copy).
            if spec.is_continuous:
                if values.dtype != np.float64:
                    values = values.astype(np.float64)
            elif values.dtype != object:
                values = values.astype(object)
            self._columns[spec.name] = values

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_records(cls, schema: TableSchema, records: Iterable[dict]) -> "Table":
        """Build a table from an iterable of ``{column: value}`` dicts."""
        records = list(records)
        columns: dict[str, np.ndarray] = {}
        n = len(records)
        for name in schema.names:
            values = np.empty(n, dtype=object)
            try:
                for i, record in enumerate(records):
                    values[i] = record[name]
            except KeyError:
                raise KeyError(f"record missing column {name!r}") from None
            columns[name] = values
        return cls(schema, columns)

    @classmethod
    def from_rows(cls, schema: TableSchema, rows: Sequence[Sequence]) -> "Table":
        """Build a table from row tuples ordered like ``schema.names``."""
        columns = {name: [] for name in schema.names}
        for row in rows:
            if len(row) != len(schema.names):
                raise ValueError(
                    f"row has {len(row)} values but schema has {len(schema.names)} columns"
                )
            for name, value in zip(schema.names, row):
                columns[name].append(value)
        return cls(schema, {name: np.asarray(vals, dtype=object) for name, vals in columns.items()})

    @classmethod
    def empty(cls, schema: TableSchema) -> "Table":
        return cls(schema, {name: np.asarray([], dtype=object) for name in schema.names})

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        if not self.schema.names:
            return 0
        return len(self._columns[self.schema.names[0]])

    @property
    def n_columns(self) -> int:
        return len(self.schema.names)

    def __len__(self) -> int:
        return self.n_rows

    def column(self, name: str) -> np.ndarray:
        """The backing array for ``name`` (not a copy)."""
        if name not in self._columns:
            raise KeyError(f"no column named {name!r}")
        return self._columns[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def row(self, index: int) -> dict:
        """Row ``index`` as a ``{column: value}`` dict."""
        if not 0 <= index < self.n_rows:
            raise IndexError(f"row index {index} out of range for {self.n_rows} rows")
        return {name: self._columns[name][index] for name in self.schema.names}

    def iter_rows(self) -> Iterator[dict]:
        for i in range(self.n_rows):
            yield self.row(i)

    def to_records(self) -> list[dict]:
        return list(self.iter_rows())

    # ------------------------------------------------------------------ #
    # Row / column selection
    # ------------------------------------------------------------------ #
    def select_rows(self, indices: np.ndarray | Sequence[int]) -> "Table":
        """A new table containing the listed rows (duplicates allowed)."""
        indices = np.asarray(indices, dtype=int)
        return Table(
            self.schema,
            {name: self._columns[name][indices] for name in self.schema.names},
        )

    def head(self, n: int = 5) -> "Table":
        return self.select_rows(np.arange(min(n, self.n_rows)))

    def select_columns(self, names: list[str]) -> "Table":
        sub_schema = self.schema.subset(names)
        return Table(sub_schema, {name: self._columns[name] for name in names})

    def drop_columns(self, names: list[str]) -> "Table":
        keep = [n for n in self.schema.names if n not in set(names)]
        return self.select_columns(keep)

    def filter(self, predicate) -> "Table":
        """Rows for which ``predicate(row_dict)`` is truthy."""
        indices = [i for i, row in enumerate(self.iter_rows()) if predicate(row)]
        return self.select_rows(np.asarray(indices, dtype=int))

    def filter_equal(self, name: str, value) -> "Table":
        """Rows where column ``name`` equals ``value`` (vectorised)."""
        mask = self.column(name) == value
        return self.select_rows(np.nonzero(mask)[0])

    def sample(self, n: int, rng: np.random.Generator, replace: bool = False) -> "Table":
        """Uniformly sample ``n`` rows."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if not replace and n > self.n_rows:
            raise ValueError(f"cannot sample {n} rows without replacement from {self.n_rows}")
        indices = rng.choice(self.n_rows, size=n, replace=replace)
        return self.select_rows(indices)

    def shuffle(self, rng: np.random.Generator) -> "Table":
        return self.select_rows(rng.permutation(self.n_rows))

    def concat(self, other: "Table") -> "Table":
        """Row-wise concatenation with an identical schema."""
        if other.schema.names != self.schema.names:
            raise ValueError("cannot concat tables with different schemas")
        return Table(
            self.schema,
            {
                name: np.concatenate([self._columns[name], other._columns[name]])
                for name in self.schema.names
            },
        )

    def with_column(self, spec, values: np.ndarray) -> "Table":
        """A new table with an extra column appended."""
        from repro.tabular.schema import TableSchema

        if len(values) != self.n_rows:
            raise ValueError("new column length does not match table")
        new_schema = TableSchema(list(self.schema.columns) + [spec])
        columns = dict(self._columns)
        columns[spec.name] = np.asarray(values, dtype=object)
        return Table(new_schema, columns)

    # ------------------------------------------------------------------ #
    # Integer-code views (the vectorized data plane's native currency)
    # ------------------------------------------------------------------ #
    def column_codes(self, name: str, index: dict) -> np.ndarray:
        """Integer codes for a column via a ``{value: code}`` mapping.

        Values missing from ``index`` map to -1.  This is the one place the
        data plane pays a per-value Python dict lookup; everything downstream
        (bucketing, condition vectors, validity masks) operates on the
        resulting int64 array.
        """
        column = self.column(name)
        get = index.get
        return np.fromiter((get(v, -1) for v in column), dtype=np.int64, count=len(column))

    def factorize(self, name: str) -> tuple[np.ndarray, list]:
        """``(codes, uniques)`` for a column, uniques in first-seen order."""
        return factorize_values(self.column(name))

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def value_counts(self, name: str) -> dict:
        """Counts of each distinct value in a column, insertion-ordered."""
        codes, uniques = self.factorize(name)
        counts = np.bincount(codes, minlength=len(uniques))
        return {value: int(counts[i]) for i, value in enumerate(uniques)}

    def describe(self) -> dict[str, dict]:
        """Per-column summary statistics."""
        summary: dict[str, dict] = {}
        for spec in self.schema:
            values = self.column(spec.name)
            if spec.is_continuous:
                numeric = values.astype(np.float64)
                summary[spec.name] = {
                    "kind": "continuous",
                    "mean": float(numeric.mean()) if len(numeric) else float("nan"),
                    "std": float(numeric.std()) if len(numeric) else float("nan"),
                    "min": float(numeric.min()) if len(numeric) else float("nan"),
                    "max": float(numeric.max()) if len(numeric) else float("nan"),
                }
            else:
                counts = self.value_counts(spec.name)
                summary[spec.name] = {
                    "kind": "categorical",
                    "num_unique": len(counts),
                    "top": max(counts, key=counts.get) if counts else None,
                }
        return summary

    def class_distribution(self, label_column: str) -> dict:
        """Relative frequency of each label value."""
        counts = self.value_counts(label_column)
        total = sum(counts.values())
        if total == 0:
            return {}
        return {value: count / total for value, count in counts.items()}

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_csv(self, path: str | Path) -> None:
        """Write the table to a CSV file with a header row."""
        with open(Path(path), "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.schema.names)
            for row in self.iter_rows():
                writer.writerow([row[name] for name in self.schema.names])

    @classmethod
    def from_csv(cls, schema: TableSchema, path: str | Path) -> "Table":
        """Read a table written by :meth:`to_csv` using ``schema`` for typing."""
        with open(Path(path), newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            if header != schema.names:
                raise ValueError("CSV header does not match schema column order")
            rows = list(reader)
        columns: dict[str, list] = {name: [] for name in schema.names}
        for row in rows:
            for name, raw in zip(schema.names, row):
                spec = schema.column(name)
                if spec.is_continuous:
                    columns[name].append(float(raw))
                else:
                    # Categories may be ints or strings; try to recover ints.
                    value = raw
                    if spec.categories and isinstance(spec.categories[0], int):
                        value = int(raw)
                    columns[name].append(value)
        return cls(schema, {name: np.asarray(vals, dtype=object) for name, vals in columns.items()})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.n_rows} rows x {self.n_columns} columns)"
