"""Tabular data handling.

The environment provides no pandas, so this subpackage supplies the pieces
of a tabular ML stack that the synthesizers and evaluators need:

* :class:`~repro.tabular.schema.TableSchema` / :class:`~repro.tabular.schema.ColumnSpec`
  describe a mixed categorical / continuous table.
* :class:`~repro.tabular.table.Table` is a light column-store with the
  handful of dataframe operations the rest of the package uses.
* :mod:`repro.tabular.encoders` hosts one-hot / ordinal / min-max / standard
  encoders plus the CTGAN-style mode-specific normaliser backed by an EM
  Gaussian mixture.
* :class:`~repro.tabular.transformer.DataTransformer` maps a table to a
  single float matrix (and back) suitable for GAN / VAE training.
* :class:`~repro.tabular.sampler.ConditionSampler` implements
  training-by-sampling: picking condition columns/values with
  log-frequency re-weighting and fetching matching real rows.
* :mod:`repro.tabular.split` offers train/test splitting and k-fold indices.
"""

from repro.tabular.schema import ColumnSpec, TableSchema
from repro.tabular.table import Table
from repro.tabular.encoders import (
    GaussianMixtureModel,
    MinMaxScaler,
    ModeSpecificNormalizer,
    OneHotEncoder,
    OrdinalEncoder,
    StandardScaler,
)
from repro.tabular.transformer import ColumnOutputInfo, DataTransformer, OutputSpan
from repro.tabular.sampler import ConditionSampler
from repro.tabular.split import kfold_indices, train_test_split

__all__ = [
    "ColumnSpec",
    "TableSchema",
    "Table",
    "OneHotEncoder",
    "OrdinalEncoder",
    "MinMaxScaler",
    "StandardScaler",
    "GaussianMixtureModel",
    "ModeSpecificNormalizer",
    "DataTransformer",
    "ColumnOutputInfo",
    "OutputSpan",
    "ConditionSampler",
    "train_test_split",
    "kfold_indices",
]
