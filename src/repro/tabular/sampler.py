"""Condition vectors and training-by-sampling.

The KiNETGAN conditional generator (paper section III-A) conditions on the
one-hot concatenation of the discrete *conditional attributes*.  During
training, conditions are drawn so that minority values appear far more often
than their empirical frequency would allow (training-by-sampling), either by
log-frequency re-weighting (as in CTGAN) or by the paper's uniform draw over
the attribute's range.  The :class:`ConditionSampler` owns that logic and can
also find real rows that match a drawn condition so the discriminator sees
consistent (data, condition) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tabular.table import Table
from repro.tabular.transformer import DataTransformer

__all__ = ["ConditionBatch", "ConditionSampler"]


@dataclass
class ConditionBatch:
    """A batch of sampled conditions.

    Attributes
    ----------
    vector:
        ``(batch, condition_dim)`` one-hot concatenation over the conditional
        attributes (equation 2 of the paper).
    values:
        List of ``{attribute: value}`` dictionaries, one per row.
    pivot_columns:
        The attribute whose value was explicitly (re)sampled per row; used by
        the CTGAN-style generator penalty.
    row_indices:
        Indices of real rows matching the condition (used by the
        discriminator's real batch).
    """

    vector: np.ndarray
    values: list[dict]
    pivot_columns: list[str]
    row_indices: np.ndarray


class ConditionSampler:
    """Draws condition vectors and matching real rows for GAN training."""

    def __init__(
        self,
        table: Table,
        transformer: DataTransformer,
        conditional_columns: list[str] | None = None,
        uniform_probability: float = 0.3,
        log_frequency: bool = True,
    ) -> None:
        """Parameters
        ----------
        table:
            The real training table.
        transformer:
            A :class:`DataTransformer` already fitted on ``table``; its
            one-hot encoders define the condition-vector layout.
        conditional_columns:
            The discrete attributes that form the condition vector.  Defaults
            to every categorical column in the schema.
        uniform_probability:
            Probability of replacing the pivot attribute's value with a
            uniform draw over its range (the paper's imbalance handling,
            section III-A-3).
        log_frequency:
            When not drawing uniformly, sample the pivot value from the
            log-frequency-smoothed empirical distribution (CTGAN) rather than
            the raw empirical distribution.
        """
        if not 0.0 <= uniform_probability <= 1.0:
            raise ValueError("uniform_probability must be in [0, 1]")
        self.table = table
        self.transformer = transformer
        self.uniform_probability = uniform_probability
        self.log_frequency = log_frequency
        all_categorical = table.schema.categorical_names
        self.conditional_columns = (
            list(conditional_columns) if conditional_columns is not None else all_categorical
        )
        if not self.conditional_columns:
            raise ValueError("at least one conditional (categorical) column is required")
        for name in self.conditional_columns:
            if name not in all_categorical:
                raise ValueError(f"conditional column {name!r} is not categorical")

        # Per-column category bookkeeping.
        self._categories: dict[str, list] = {}
        self._category_probs: dict[str, np.ndarray] = {}
        self._rows_by_value: dict[str, dict] = {}
        for name in self.conditional_columns:
            encoder = transformer.encoder(name)
            categories = list(encoder.categories)
            self._categories[name] = categories
            counts = np.zeros(len(categories), dtype=np.float64)
            rows_by_value: dict = {value: [] for value in categories}
            column = table.column(name)
            for row_index, value in enumerate(column):
                if value in rows_by_value:
                    rows_by_value[value].append(row_index)
            for i, value in enumerate(categories):
                counts[i] = len(rows_by_value[value])
            if self.log_frequency:
                weights = np.log1p(counts)
            else:
                weights = counts.copy()
            if weights.sum() <= 0:
                weights = np.ones_like(weights)
            self._category_probs[name] = weights / weights.sum()
            self._rows_by_value[name] = {
                value: np.asarray(rows, dtype=int) for value, rows in rows_by_value.items()
            }

        self._offsets: dict[str, int] = {}
        cursor = 0
        for name in self.conditional_columns:
            self._offsets[name] = cursor
            cursor += len(self._categories[name])
        self._condition_dim = cursor

    # ------------------------------------------------------------------ #
    @property
    def condition_dim(self) -> int:
        """Width of the condition vector C (equation 2)."""
        return self._condition_dim

    def categories(self, column: str) -> list:
        """Admissible values of a conditional attribute."""
        return list(self._categories[column])

    def condition_offset(self, column: str) -> int:
        """Start index of ``column``'s one-hot block inside C."""
        return self._offsets[column]

    def condition_slice(self, column: str) -> slice:
        start = self._offsets[column]
        return slice(start, start + len(self._categories[column]))

    # ------------------------------------------------------------------ #
    def vector_from_values(self, values: dict) -> np.ndarray:
        """Build a single condition vector from ``{attribute: value}``.

        Attributes missing from ``values`` get an all-zero block (meaning
        "unconstrained"), which is how generation-time conditioning on a
        subset of attributes is expressed.
        """
        vector = np.zeros(self._condition_dim, dtype=np.float64)
        for name, value in values.items():
            if name not in self._categories:
                raise KeyError(f"{name!r} is not a conditional column")
            categories = self._categories[name]
            if value not in categories:
                raise ValueError(f"value {value!r} not in categories of {name!r}")
            vector[self._offsets[name] + categories.index(value)] = 1.0
        return vector

    def values_from_vector(self, vector: np.ndarray) -> dict:
        """Decode a condition vector back into ``{attribute: value}``."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape[-1] != self._condition_dim:
            raise ValueError("condition vector has the wrong width")
        values: dict = {}
        for name in self.conditional_columns:
            block = vector[self.condition_slice(name)]
            if block.max() > 0:
                values[name] = self._categories[name][int(block.argmax())]
        return values

    # ------------------------------------------------------------------ #
    def sample(self, batch_size: int, rng: np.random.Generator) -> ConditionBatch:
        """Draw a training batch of conditions plus matching real rows."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        vectors = np.zeros((batch_size, self._condition_dim), dtype=np.float64)
        values_list: list[dict] = []
        pivots: list[str] = []
        row_indices = np.empty(batch_size, dtype=int)

        pivot_choices = rng.integers(0, len(self.conditional_columns), size=batch_size)
        for i in range(batch_size):
            pivot = self.conditional_columns[pivot_choices[i]]
            categories = self._categories[pivot]
            if rng.uniform() < self.uniform_probability:
                pivot_value = categories[rng.integers(0, len(categories))]
            else:
                pivot_value = categories[
                    rng.choice(len(categories), p=self._category_probs[pivot])
                ]
            matching = self._rows_by_value[pivot][pivot_value]
            if len(matching) > 0:
                row_index = int(matching[rng.integers(0, len(matching))])
            else:
                row_index = int(rng.integers(0, self.table.n_rows))
            row = self.table.row(row_index)
            condition_values = {
                name: row[name] for name in self.conditional_columns
            }
            condition_values[pivot] = pivot_value
            vectors[i] = self.vector_from_values(condition_values)
            values_list.append(condition_values)
            pivots.append(pivot)
            row_indices[i] = row_index

        return ConditionBatch(
            vector=vectors,
            values=values_list,
            pivot_columns=pivots,
            row_indices=row_indices,
        )

    def empirical_conditions(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Condition vectors drawn from the *empirical* joint distribution.

        Used at generation time: rows are sampled uniformly from the real
        table and their conditional-attribute values become conditions, so
        the synthetic data reproduces the original attribute distribution
        (section III-A: fidelity is preserved "during testing").
        """
        if n <= 0:
            raise ValueError("n must be positive")
        indices = rng.integers(0, self.table.n_rows, size=n)
        vectors = np.zeros((n, self._condition_dim), dtype=np.float64)
        for i, row_index in enumerate(indices):
            row = self.table.row(int(row_index))
            vectors[i] = self.vector_from_values(
                {name: row[name] for name in self.conditional_columns}
            )
        return vectors

    def real_batch(self, batch: ConditionBatch) -> Table:
        """Real rows aligned with the sampled conditions."""
        return self.table.select_rows(batch.row_indices)
