"""Condition vectors and training-by-sampling.

The KiNETGAN conditional generator (paper section III-A) conditions on the
one-hot concatenation of the discrete *conditional attributes*.  During
training, conditions are drawn so that minority values appear far more often
than their empirical frequency would allow (training-by-sampling), either by
log-frequency re-weighting (as in CTGAN) or by the paper's uniform draw over
the attribute's range.  The :class:`ConditionSampler` owns that logic and can
also find real rows that match a drawn condition so the discriminator sees
consistent (data, condition) pairs.

The sampler is fully vectorized: at construction every conditional column is
integer-coded once, matching real rows are grouped into CSR-style buckets
(one flat row-index array plus per-category offsets), and ``sample()`` /
``empirical_conditions()`` become a handful of batched RNG draws plus one
scatter write into the ``(batch, condition_dim)`` matrix -- no per-row
``Table.row`` dict building, no ``list.index`` lookups.  The pre-vectorized
per-row path is kept behind ``legacy_sampling=True`` for bit-for-bit
reproduction of seeds recorded before the batched sampler landed (the two
paths draw from identical distributions but consume the RNG stream in a
different order).
"""

from __future__ import annotations

import numpy as np

from repro.tabular.table import Table
from repro.tabular.transformer import DataTransformer

__all__ = ["ConditionBatch", "ConditionSampler"]


class ConditionBatch:
    """A batch of sampled conditions.

    Attributes
    ----------
    vector:
        ``(batch, condition_dim)`` one-hot concatenation over the conditional
        attributes (equation 2 of the paper).
    row_indices:
        Indices of real rows matching the condition (used by the
        discriminator's real batch).
    codes:
        ``(batch, n_conditional_columns)`` integer category codes, the
        native representation of the vectorized data plane (-1 marks a value
        outside the encoder's category list, shown as an all-zero block).
    pivot_indices:
        Per-row index (into the sampler's conditional columns) of the
        attribute whose value was explicitly (re)sampled.

    ``values`` (list of ``{attribute: value}`` dicts) and ``pivot_columns``
    (attribute names) are materialised lazily from the code arrays the first
    time they are read, so consumers that only need the arrays never pay for
    building per-row dictionaries.
    """

    def __init__(
        self,
        vector: np.ndarray,
        row_indices: np.ndarray,
        *,
        codes: np.ndarray | None = None,
        pivot_indices: np.ndarray | None = None,
        sampler: "ConditionSampler | None" = None,
        values: list[dict] | None = None,
        pivot_columns: list[str] | None = None,
    ) -> None:
        self.vector = vector
        self.row_indices = row_indices
        self.codes = codes
        self.pivot_indices = pivot_indices
        self._sampler = sampler
        self._values = values
        self._pivot_columns = pivot_columns

    def __len__(self) -> int:
        return len(self.row_indices)

    def column_values(self, column: str) -> np.ndarray:
        """Decoded values of one conditional attribute for the whole batch."""
        if self.codes is not None and self._sampler is not None:
            return self._sampler.decode_column(column, self.codes)
        return np.asarray([values.get(column) for values in self.values], dtype=object)

    @property
    def values(self) -> list[dict]:
        if self._values is None:
            assert self.codes is not None and self._sampler is not None
            self._values = self._sampler.values_from_codes(self.codes)
        return self._values

    @property
    def pivot_columns(self) -> list[str]:
        if self._pivot_columns is None:
            assert self.pivot_indices is not None and self._sampler is not None
            names = self._sampler.conditional_columns
            self._pivot_columns = [names[i] for i in self.pivot_indices]
        return self._pivot_columns


class ConditionSampler:
    """Draws condition vectors and matching real rows for GAN training."""

    def __init__(
        self,
        table: Table,
        transformer: DataTransformer,
        conditional_columns: list[str] | None = None,
        uniform_probability: float = 0.3,
        log_frequency: bool = True,
        legacy_sampling: bool = False,
    ) -> None:
        """Parameters
        ----------
        table:
            The real training table.
        transformer:
            A :class:`DataTransformer` already fitted on ``table``; its
            one-hot encoders define the condition-vector layout.
        conditional_columns:
            The discrete attributes that form the condition vector.  Defaults
            to every categorical column in the schema.
        uniform_probability:
            Probability of replacing the pivot attribute's value with a
            uniform draw over its range (the paper's imbalance handling,
            section III-A-3).
        log_frequency:
            When not drawing uniformly, sample the pivot value from the
            log-frequency-smoothed empirical distribution (CTGAN) rather than
            the raw empirical distribution.
        legacy_sampling:
            Reproduce the pre-vectorization per-row ``sample()`` loop
            bit-for-bit (same RNG draw order).  The batched sampler draws
            from the identical distribution but consumes the seeded stream
            in a different order, so seeds recorded before the vectorized
            data plane landed need this flag to replay exactly.
        """
        if not 0.0 <= uniform_probability <= 1.0:
            raise ValueError("uniform_probability must be in [0, 1]")
        self.table = table
        self.n_rows = table.n_rows
        self.transformer = transformer
        self.uniform_probability = uniform_probability
        self.log_frequency = log_frequency
        self.legacy_sampling = legacy_sampling
        all_categorical = table.schema.categorical_names
        self.conditional_columns = (
            list(conditional_columns) if conditional_columns is not None else all_categorical
        )
        if not self.conditional_columns:
            raise ValueError("at least one conditional (categorical) column is required")
        for name in self.conditional_columns:
            if name not in all_categorical:
                raise ValueError(f"conditional column {name!r} is not categorical")

        # Per-column category bookkeeping: category lists, O(1) value->code
        # dicts, object arrays for batched decoding, per-row integer codes,
        # and CSR-style row buckets (rows sorted by code + per-code bounds).
        self._categories: dict[str, list] = {}
        self._category_index: dict[str, dict] = {}
        self._category_arrays: dict[str, np.ndarray] = {}
        self._category_probs: dict[str, np.ndarray] = {}
        self._bucket_rows: dict[str, np.ndarray] = {}
        self._bucket_bounds: dict[str, np.ndarray] = {}
        codes_by_column: list[np.ndarray] = []
        for name in self.conditional_columns:
            encoder = transformer.encoder(name)
            categories = list(encoder.categories)
            k = len(categories)
            index = {value: i for i, value in enumerate(categories)}
            self._categories[name] = categories
            self._category_index[name] = index
            array = np.empty(k, dtype=object)
            array[:] = categories
            self._category_arrays[name] = array

            get = index.get
            column = table.column(name)
            codes = np.fromiter(
                (get(value, -1) for value in column), dtype=np.int64, count=len(column)
            )
            codes_by_column.append(codes)

            known = codes >= 0
            counts = np.bincount(codes[known], minlength=k).astype(np.float64)
            if self.log_frequency:
                weights = np.log1p(counts)
            else:
                weights = counts.copy()
            if weights.sum() <= 0:
                weights = np.ones_like(weights)
            self._category_probs[name] = weights / weights.sum()

            order = np.argsort(codes[known], kind="stable")
            self._bucket_rows[name] = np.nonzero(known)[0][order]
            bounds = np.zeros(k + 1, dtype=np.int64)
            np.cumsum(counts.astype(np.int64), out=bounds[1:])
            self._bucket_bounds[name] = bounds

        #: (n_rows, n_conditional_columns) integer codes of the real table.
        self._codes = (
            np.stack(codes_by_column, axis=1)
            if codes_by_column
            else np.zeros((table.n_rows, 0), dtype=np.int64)
        )
        self._build_offsets()

    def _build_offsets(self) -> None:
        self._offsets: dict[str, int] = {}
        cursor = 0
        for name in self.conditional_columns:
            self._offsets[name] = cursor
            cursor += len(self._categories[name])
        self._condition_dim = cursor
        #: Column-aligned offsets of each one-hot block inside C.
        self._offset_array = np.asarray(
            [self._offsets[name] for name in self.conditional_columns], dtype=np.int64
        )

    # ------------------------------------------------------------------ #
    # Artifact-state protocol (repro.serve)
    # ------------------------------------------------------------------ #
    def artifact_state(self) -> dict:
        """Fitted state for the :mod:`repro.serve` artifact format.

        The integer-code tables are the sampler's whole working state: the
        per-column category lists (first-seen order), the training-by-sampling
        probabilities, the CSR row buckets and the ``(n_rows, n_columns)``
        code matrix.  The raw training table is deliberately *not* included:
        a restored sampler can draw conditions and condition vectors exactly
        (``sample`` / ``empirical_conditions`` / ``vector_from_values``) but
        cannot serve real rows (``real_batch`` raises).
        """
        return {
            "conditional_columns": list(self.conditional_columns),
            "uniform_probability": self.uniform_probability,
            "log_frequency": self.log_frequency,
            "legacy_sampling": self.legacy_sampling,
            "n_rows": self.n_rows,
            "categories": {name: list(values) for name, values in self._categories.items()},
            "category_probs": {name: probs.copy() for name, probs in self._category_probs.items()},
            "bucket_rows": {name: rows.copy() for name, rows in self._bucket_rows.items()},
            "bucket_bounds": {
                name: bounds.copy() for name, bounds in self._bucket_bounds.items()
            },
            "codes": self._codes.copy(),
        }

    @classmethod
    def from_artifact_state(cls, state: dict, transformer: DataTransformer) -> "ConditionSampler":
        """Rebuild a sampler from :meth:`artifact_state` output (no table)."""
        sampler = cls.__new__(cls)
        sampler.table = None
        sampler.n_rows = int(state["n_rows"])
        sampler.transformer = transformer
        sampler.uniform_probability = float(state["uniform_probability"])
        sampler.log_frequency = bool(state["log_frequency"])
        sampler.legacy_sampling = bool(state["legacy_sampling"])
        sampler.conditional_columns = list(state["conditional_columns"])
        sampler._categories = {}
        sampler._category_index = {}
        sampler._category_arrays = {}
        for name, categories in state["categories"].items():
            categories = list(categories)
            sampler._categories[name] = categories
            sampler._category_index[name] = {value: i for i, value in enumerate(categories)}
            array = np.empty(len(categories), dtype=object)
            array[:] = categories
            sampler._category_arrays[name] = array
        sampler._category_probs = {
            name: np.asarray(probs, dtype=np.float64)
            for name, probs in state["category_probs"].items()
        }
        sampler._bucket_rows = {
            name: np.asarray(rows, dtype=np.int64) for name, rows in state["bucket_rows"].items()
        }
        sampler._bucket_bounds = {
            name: np.asarray(bounds, dtype=np.int64)
            for name, bounds in state["bucket_bounds"].items()
        }
        sampler._codes = np.asarray(state["codes"], dtype=np.int64)
        sampler._build_offsets()
        return sampler

    # ------------------------------------------------------------------ #
    @property
    def condition_dim(self) -> int:
        """Width of the condition vector C (equation 2)."""
        return self._condition_dim

    def categories(self, column: str) -> list:
        """Admissible values of a conditional attribute."""
        return list(self._categories[column])

    def category_index(self, column: str) -> dict:
        """Cached ``{value: code}`` lookup for a conditional attribute."""
        return self._category_index[column]

    def condition_offset(self, column: str) -> int:
        """Start index of ``column``'s one-hot block inside C."""
        return self._offsets[column]

    def condition_slice(self, column: str) -> slice:
        start = self._offsets[column]
        return slice(start, start + len(self._categories[column]))

    # ------------------------------------------------------------------ #
    # Code-array helpers (the vectorized data plane's native currency)
    # ------------------------------------------------------------------ #
    def decode_column(self, column: str, codes: np.ndarray) -> np.ndarray:
        """Category values of one column from a ``(batch, n_columns)`` code array.

        Codes of -1 (unknown / unconstrained) decode to ``None``.
        """
        if column not in self._categories:
            raise KeyError(f"{column!r} is not a conditional column")
        position = self.conditional_columns.index(column)
        column_codes = codes[:, position]
        decoded = self._category_arrays[column][column_codes]
        unknown = column_codes < 0
        if unknown.any():
            decoded[unknown] = None
        return decoded

    def values_from_codes(self, codes: np.ndarray) -> list[dict]:
        """Materialise ``{attribute: value}`` dicts from a code array.

        Codes of -1 (values outside the encoder's category list) are left
        out of the corresponding dict, mirroring an all-zero block.
        """
        decoded = [
            self._category_arrays[name][codes[:, i]]
            for i, name in enumerate(self.conditional_columns)
        ]
        names = self.conditional_columns
        rows: list[dict] = []
        for r in range(codes.shape[0]):
            rows.append(
                {
                    name: decoded[i][r]
                    for i, name in enumerate(names)
                    if codes[r, i] >= 0
                }
            )
        return rows

    def vectors_from_codes(self, codes: np.ndarray) -> np.ndarray:
        """One-hot condition matrix from a ``(batch, n_columns)`` code array."""
        batch = codes.shape[0]
        vectors = np.zeros((batch, self._condition_dim), dtype=np.float64)
        flat = self._offset_array[None, :] + codes
        known = codes >= 0
        row_index = np.broadcast_to(np.arange(batch)[:, None], codes.shape)
        vectors[row_index[known], flat[known]] = 1.0
        return vectors

    # ------------------------------------------------------------------ #
    def vector_from_values(self, values: dict) -> np.ndarray:
        """Build a single condition vector from ``{attribute: value}``.

        Attributes missing from ``values`` get an all-zero block (meaning
        "unconstrained"), which is how generation-time conditioning on a
        subset of attributes is expressed.
        """
        vector = np.zeros(self._condition_dim, dtype=np.float64)
        for name, value in values.items():
            if name not in self._categories:
                raise KeyError(f"{name!r} is not a conditional column")
            code = self._category_index[name].get(value)
            if code is None:
                raise ValueError(f"value {value!r} not in categories of {name!r}")
            vector[self._offsets[name] + code] = 1.0
        return vector

    def values_from_vector(self, vector: np.ndarray) -> dict:
        """Decode a condition vector back into ``{attribute: value}``."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape[-1] != self._condition_dim:
            raise ValueError("condition vector has the wrong width")
        values: dict = {}
        for name in self.conditional_columns:
            block = vector[self.condition_slice(name)]
            if block.max() > 0:
                values[name] = self._categories[name][int(block.argmax())]
        return values

    # ------------------------------------------------------------------ #
    def sample(self, batch_size: int, rng: np.random.Generator) -> ConditionBatch:
        """Draw a training batch of conditions plus matching real rows.

        Fully batched: one RNG call per decision stream (pivot choice,
        uniform-vs-weighted coin, per-column value draws, per-column bucket
        positions), then the condition matrix is built with a single scatter
        write from the integer codes.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.legacy_sampling:
            return self._sample_legacy(batch_size, rng)

        n_columns = len(self.conditional_columns)
        pivot_indices = rng.integers(0, n_columns, size=batch_size)
        uniform_mask = rng.uniform(size=batch_size) < self.uniform_probability

        pivot_codes = np.empty(batch_size, dtype=np.int64)
        row_indices = np.empty(batch_size, dtype=np.int64)
        for position, name in enumerate(self.conditional_columns):
            selected = np.nonzero(pivot_indices == position)[0]
            if not len(selected):
                continue
            k = len(self._categories[name])
            codes = np.empty(len(selected), dtype=np.int64)
            uniform_here = uniform_mask[selected]
            n_uniform = int(uniform_here.sum())
            if n_uniform:
                codes[uniform_here] = rng.integers(0, k, size=n_uniform)
            if len(selected) - n_uniform:
                codes[~uniform_here] = rng.choice(
                    k, size=len(selected) - n_uniform, p=self._category_probs[name]
                )
            bounds = self._bucket_bounds[name]
            sizes = bounds[codes + 1] - bounds[codes]
            positions = rng.integers(0, np.maximum(sizes, 1))
            # Fancy indexing always allocates, so overwriting the empty-bucket
            # fallbacks below cannot touch the bucket table itself.
            rows = self._bucket_rows[name][bounds[codes] + np.minimum(positions, sizes - 1)]
            empty = sizes == 0
            if empty.any():
                rows[empty] = rng.integers(0, self.n_rows, size=int(empty.sum()))
            pivot_codes[selected] = codes
            row_indices[selected] = rows

        codes = self._codes[row_indices].copy()
        codes[np.arange(batch_size), pivot_indices] = pivot_codes
        return ConditionBatch(
            vector=self.vectors_from_codes(codes),
            row_indices=row_indices,
            codes=codes,
            pivot_indices=pivot_indices,
            sampler=self,
        )

    def _sample_legacy(self, batch_size: int, rng: np.random.Generator) -> ConditionBatch:
        """The pre-vectorization per-row loop, preserved bit-for-bit.

        Kept (and covered by a golden regression test) so seeded runs
        recorded before the batched sampler landed can be replayed exactly.
        """
        vectors = np.zeros((batch_size, self._condition_dim), dtype=np.float64)
        values_list: list[dict] = []
        pivots: list[str] = []
        row_indices = np.empty(batch_size, dtype=int)

        pivot_choices = rng.integers(0, len(self.conditional_columns), size=batch_size)
        for i in range(batch_size):
            pivot = self.conditional_columns[pivot_choices[i]]
            categories = self._categories[pivot]
            if rng.uniform() < self.uniform_probability:
                pivot_value = categories[rng.integers(0, len(categories))]
            else:
                pivot_value = categories[
                    rng.choice(len(categories), p=self._category_probs[pivot])
                ]
            bounds = self._bucket_bounds[pivot]
            code = self._category_index[pivot][pivot_value]
            matching = self._bucket_rows[pivot][bounds[code] : bounds[code + 1]]
            if len(matching) > 0:
                row_index = int(matching[rng.integers(0, len(matching))])
            else:
                row_index = int(rng.integers(0, self.n_rows))
            row = self._require_table().row(row_index)
            condition_values = {
                name: row[name] for name in self.conditional_columns
            }
            condition_values[pivot] = pivot_value
            vectors[i] = self.vector_from_values(condition_values)
            values_list.append(condition_values)
            pivots.append(pivot)
            row_indices[i] = row_index

        return ConditionBatch(
            vector=vectors,
            row_indices=row_indices,
            values=values_list,
            pivot_columns=pivots,
        )

    def empirical_conditions(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Condition vectors drawn from the *empirical* joint distribution.

        Used at generation time: rows are sampled uniformly from the real
        table and their conditional-attribute values become conditions, so
        the synthetic data reproduces the original attribute distribution
        (section III-A: fidelity is preserved "during testing").  The draw
        consumes the RNG stream exactly as the pre-vectorization loop did
        (one ``integers`` call), so it stays bit-compatible.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        indices = rng.integers(0, self.n_rows, size=n)
        return self.vectors_from_codes(self._codes[indices])

    def _require_table(self) -> Table:
        if self.table is None:
            raise RuntimeError(
                "this ConditionSampler was restored from a model artifact and "
                "carries no real rows; only condition sampling is available"
            )
        return self.table

    def real_batch(self, batch: ConditionBatch) -> Table:
        """Real rows aligned with the sampled conditions."""
        return self._require_table().select_rows(batch.row_indices)
