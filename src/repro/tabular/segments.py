"""Batched operations over variable-width column blocks.

The transformed matrix produced by :class:`~repro.tabular.transformer.
DataTransformer` is a concatenation of per-column blocks: one-hot blocks for
categorical columns, (alpha, one-hot mode) pairs for mode-normalised
continuous columns.  Every hot path of the data plane -- hardening, inverse
transformation, output activation -- needs the same primitive: "apply an
argmax / softmax independently to each block".  Doing that with a Python
loop over blocks costs one strided numpy call per block per batch.

:class:`BlockLayout` precomputes the segment structure once and groups
blocks of equal width together, so each operation becomes one fancy-index
gather per width group followed by a single contiguous ``(rows, blocks,
width)`` reduction -- a handful of C passes total, independent of how many
columns the table has.  (``np.ufunc.reduceat`` was measured ~4x slower than
the reshaped contiguous reductions used here.)
"""

from __future__ import annotations

import numpy as np

__all__ = ["BlockLayout"]


class BlockLayout:
    """Precomputed segment structure over a set of contiguous column blocks.

    ``bounds`` is a list of ``(start, end)`` column ranges of the full
    matrix (they need not be adjacent to each other).  The layout gathers
    those columns into one contiguous region, with per-width groups exposing
    segmented argmax / softmax as contiguous 3-D reductions.
    """

    def __init__(self, bounds: list[tuple[int, int]]) -> None:
        self.bounds = [(int(s), int(e)) for s, e in bounds]
        if any(e <= s for s, e in self.bounds):
            raise ValueError("every block must have positive width")
        self.n_blocks = len(self.bounds)
        self.widths = np.asarray([e - s for s, e in self.bounds], dtype=np.intp)
        #: Columns of the full matrix covered by the blocks, block by block.
        self.columns = (
            np.concatenate([np.arange(s, e) for s, e in self.bounds])
            if self.bounds
            else np.zeros(0, dtype=np.intp)
        )
        self.total = int(self.widths.sum()) if self.n_blocks else 0
        #: Start of each block inside the gathered (contiguous) region.
        self.starts = np.zeros(self.n_blocks, dtype=np.intp)
        if self.n_blocks:
            np.cumsum(self.widths[:-1], out=self.starts[1:])
        # Blocks grouped by width: (width, block ids, gathered-region cols).
        by_width: dict[int, list[int]] = {}
        for block, width in enumerate(self.widths):
            by_width.setdefault(int(width), []).append(block)
        self._groups: list[tuple[int, np.ndarray, np.ndarray]] = []
        self._matrix_groups: list[tuple[int, np.ndarray, np.ndarray]] = []
        for width, blocks in by_width.items():
            ids = np.asarray(blocks, dtype=np.intp)
            gcols = np.concatenate(
                [np.arange(self.starts[b], self.starts[b] + width) for b in blocks]
            )
            self._groups.append((width, ids, gcols))
            self._matrix_groups.append((width, ids, self.columns[gcols]))

    # ------------------------------------------------------------------ #
    def gather(self, matrix: np.ndarray) -> np.ndarray:
        """The blocks' columns as one contiguous ``(rows, total)`` array."""
        return matrix[:, self.columns]

    def scatter(self, matrix: np.ndarray, gathered: np.ndarray) -> None:
        """Write a gathered region back into the full matrix, in place."""
        matrix[:, self.columns] = gathered

    # ------------------------------------------------------------------ #
    def argmax(self, gathered: np.ndarray) -> np.ndarray:
        """Per-block argmax as ``(rows, n_blocks)`` block-local indices.

        Ties resolve to the lowest index, matching ``np.argmax`` on each
        block individually.
        """
        rows = gathered.shape[0]
        out = np.empty((rows, self.n_blocks), dtype=np.intp)
        for width, ids, gcols in self._groups:
            sub = gathered[:, gcols].reshape(rows, len(ids), width)
            out[:, ids] = sub.argmax(axis=2)
        return out

    def argmax_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Per-block argmax straight from the full matrix (no intermediate
        gather of the whole softmax region -- one fancy index per width
        group)."""
        rows = matrix.shape[0]
        out = np.empty((rows, self.n_blocks), dtype=np.intp)
        for width, ids, fcols in self._matrix_groups:
            sub = matrix[:, fcols].reshape(rows, len(ids), width)
            out[:, ids] = sub.argmax(axis=2)
        return out

    def _probe(self, full_width: int) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(probe, starts)`` for :meth:`winners`.

        ``probe`` is a ``(full_width, 2 * n_blocks)`` matrix whose left half
        holds each block's local column indices and right half a 0/1 block
        indicator, so one BLAS matmul yields both the index-weighted mass
        and the total mass of every block.
        """
        cached = getattr(self, "_probe_cache", None)
        if cached is None or cached[0] != full_width:
            probe = np.zeros((full_width, 2 * self.n_blocks), dtype=np.float64)
            block_starts = np.empty(self.n_blocks, dtype=np.intp)
            for block, (start, end) in enumerate(self.bounds):
                probe[start:end, block] = np.arange(end - start)
                probe[start:end, self.n_blocks + block] = 1.0
                block_starts[block] = start
            self._probe_cache = (full_width, probe, block_starts)
            cached = self._probe_cache
        return cached[1], cached[2]

    def winners(self, matrix: np.ndarray) -> np.ndarray:
        """Per-block argmax of the full matrix, fast-pathing one-hot input.

        When every block is *exactly* one-hot (the dominant case: encoded
        real data and hardened generator output), the winner index equals
        the block's index-weighted mass, which one BLAS matmul over the
        squared matrix computes for all blocks at once.  The certificate is
        exact: squares are non-negative, so a squared block mass of 1 with a
        literal ``1.0`` at the candidate column implies every other entry is
        zero -- the block is one-hot and the candidate is the true argmax.
        Any row failing the check sends the whole call down the general
        segmented-argmax path instead.
        """
        if self.n_blocks == 0:
            return np.zeros((matrix.shape[0], 0), dtype=np.intp)
        probe, block_starts = self._probe(matrix.shape[1])
        projected = (matrix * matrix) @ probe
        weighted = projected[:, : self.n_blocks]
        mass = projected[:, self.n_blocks :]
        candidates = np.rint(weighted).astype(np.intp)
        if (
            (mass == 1.0).all()
            and (candidates >= 0).all()
            and (candidates < self.widths[None, :]).all()
        ):
            rows = np.arange(matrix.shape[0])[:, None]
            if (matrix[rows, block_starts[None, :] + candidates] == 1.0).all():
                return candidates
        return self.argmax_matrix(matrix)

    def one_hot_from_codes(self, codes: np.ndarray) -> np.ndarray:
        """Exact one-hot gathered region from block-local winner indices."""
        rows = codes.shape[0]
        out = np.zeros((rows, self.total), dtype=np.float64)
        flat = self.starts[None, :] + codes
        out[np.arange(rows)[:, None], flat] = 1.0
        return out

    @staticmethod
    def _scratch_buffer(
        scratch: dict | None,
        key,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """A reusable ``dtype`` buffer from ``scratch``, or a fresh array.

        ``scratch`` is a caller-owned dict (one per consumer, so sharing
        follows the consumer's own thread story); ``None`` keeps the
        allocate-per-call behaviour.
        """
        if scratch is None:
            return np.empty(shape, dtype=dtype)
        buf = scratch.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            scratch[key] = buf
        return buf

    def softmax(
        self, gathered: np.ndarray, tau: float = 1.0, scratch: dict | None = None
    ) -> np.ndarray:
        """Per-block temperature softmax over the gathered region.

        With ``scratch``, every intermediate (including the returned region)
        comes from reusable buffers; the elementwise op sequence is the same,
        so results are bit-identical, and the return value is only valid
        until the next call with the same ``scratch``.
        """
        dtype = gathered.dtype
        out = self._scratch_buffer(scratch, "softmax_out", gathered.shape, dtype)
        rows = gathered.shape[0]
        for width, ids, gcols in self._groups:
            flat = self._scratch_buffer(
                scratch, ("softmax_sub", width), (rows, len(ids) * width), dtype
            )
            np.take(gathered, gcols, axis=1, out=flat)
            sub = flat.reshape(rows, len(ids), width)
            peak = self._scratch_buffer(scratch, ("softmax_peak", width), (rows, len(ids), 1), dtype)
            sub.max(axis=2, keepdims=True, out=peak)
            np.subtract(sub, peak, out=sub)
            np.divide(sub, tau, out=sub)
            np.exp(sub, out=sub)
            sub.sum(axis=2, keepdims=True, out=peak)
            sub /= peak
            out[:, gcols] = flat
        return out

    def softmax_backward(
        self,
        softmax_out: np.ndarray,
        grad_output: np.ndarray,
        tau: float = 1.0,
        scratch: dict | None = None,
    ) -> np.ndarray:
        """Gradient of a per-block softmax given its output and upstream grad.

        ``scratch`` has the same contract as in :meth:`softmax`.
        """
        dtype = grad_output.dtype
        out = self._scratch_buffer(scratch, "bwd_out", grad_output.shape, dtype)
        rows = grad_output.shape[0]
        for width, ids, gcols in self._groups:
            s_flat = self._scratch_buffer(scratch, ("bwd_s", width), (rows, len(ids) * width), dtype)
            np.take(softmax_out, gcols, axis=1, out=s_flat)
            g_flat = self._scratch_buffer(scratch, ("bwd_g", width), (rows, len(ids) * width), dtype)
            np.take(grad_output, gcols, axis=1, out=g_flat)
            s = s_flat.reshape(rows, len(ids), width)
            g = g_flat.reshape(rows, len(ids), width)
            prod = self._scratch_buffer(
                scratch, ("bwd_prod", width), (rows, len(ids) * width), dtype
            )
            np.multiply(g, s, out=prod.reshape(rows, len(ids), width))
            dots = self._scratch_buffer(scratch, ("bwd_dots", width), (rows, len(ids), 1), dtype)
            prod.reshape(rows, len(ids), width).sum(axis=2, keepdims=True, out=dots)
            np.subtract(g, dots, out=g)
            np.multiply(s, g, out=g)
            np.divide(g, tau, out=g)
            out[:, gcols] = g_flat
        return out
