"""Fidelity metrics: how close is synthetic data to the original?

Implements the two distance measures of Table I (Earth Mover's Distance and
the mixed L1/L2 distance for categorical/continuous columns), the likelihood
fitness used to validate the models, pairwise-association similarity, and the
wider battery most synthetic-data papers additionally report:

* :mod:`repro.fidelity.divergence` -- Jensen-Shannon distance and the
  Kolmogorov-Smirnov / total-variation statistic per column,
* :mod:`repro.fidelity.propensity` -- the pMSE real-vs-synthetic
  distinguishability test,
* :mod:`repro.fidelity.coverage` -- category / range coverage (mode-collapse
  detection) and the exact-duplicate rate (memorisation smell).
"""

from repro.fidelity.correlation import association_similarity
from repro.fidelity.coverage import (
    CoverageReport,
    category_coverage,
    coverage_report,
    duplicate_rate,
    range_coverage,
)
from repro.fidelity.distance import (
    column_emd,
    emd_distance,
    mixed_distance,
    per_column_distances,
)
from repro.fidelity.divergence import (
    column_jsd,
    column_ks,
    jensen_shannon_distance,
    ks_statistic,
    per_column_divergences,
)
from repro.fidelity.likelihood import likelihood_fitness
from repro.fidelity.propensity import PropensityResult, propensity_score
from repro.fidelity.report import FidelityReport, evaluate_fidelity

__all__ = [
    "column_emd",
    "emd_distance",
    "mixed_distance",
    "per_column_distances",
    "likelihood_fitness",
    "association_similarity",
    "column_jsd",
    "column_ks",
    "jensen_shannon_distance",
    "ks_statistic",
    "per_column_divergences",
    "PropensityResult",
    "propensity_score",
    "CoverageReport",
    "category_coverage",
    "range_coverage",
    "duplicate_rate",
    "coverage_report",
    "FidelityReport",
    "evaluate_fidelity",
]
