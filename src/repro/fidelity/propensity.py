"""Propensity-score fidelity (the pMSE metric).

A classifier is trained to distinguish real from synthetic rows; if the
synthetic data is indistinguishable, its predicted probabilities hover around
the class prior and the *propensity mean squared error*

    pMSE = mean((p_i - c)^2),   c = share of synthetic rows

is close to zero (Snoke et al., 2018).  The module also reports the
distinguishing accuracy (0.5 = indistinguishable for balanced pools), which
is often easier to read.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nids.logistic_regression import LogisticRegressionClassifier
from repro.tabular.encoders import OneHotEncoder, StandardScaler
from repro.tabular.table import Table

__all__ = ["PropensityResult", "propensity_score"]


@dataclass
class PropensityResult:
    """Outcome of the propensity (real-vs-synthetic) test."""

    pmse: float
    #: pMSE of a perfectly uninformative classifier predicting the prior;
    #: useful as the scale against which ``pmse`` should be read.
    null_pmse: float
    distinguishing_accuracy: float

    @property
    def pmse_ratio(self) -> float:
        """pMSE relative to the null model (0 = indistinguishable)."""
        if self.null_pmse == 0.0:
            return 0.0
        return self.pmse / self.null_pmse

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"pMSE={self.pmse:.4f} (null {self.null_pmse:.4f}), "
            f"distinguisher accuracy={self.distinguishing_accuracy:.3f}"
        )


def _featurise(pool: Table, reference: Table) -> np.ndarray:
    """Dense numeric matrix over all columns (categories from the schema)."""
    blocks: list[np.ndarray] = []
    for spec in reference.schema:
        values = pool.column(spec.name)
        if spec.is_categorical:
            encoder = OneHotEncoder(
                categories=list(spec.categories) if spec.categories else None,
                handle_unknown="ignore",
            )
            encoder.fit(reference.column(spec.name))
            blocks.append(encoder.transform(values))
        else:
            scaler = StandardScaler().fit(reference.column(spec.name).astype(np.float64))
            blocks.append(scaler.transform(values.astype(np.float64))[:, None])
    return np.concatenate(blocks, axis=1) if blocks else np.zeros((pool.n_rows, 0))


def propensity_score(
    real: Table,
    synthetic: Table,
    max_rows: int = 4000,
    epochs: int = 80,
    seed: int = 0,
) -> PropensityResult:
    """Train a real-vs-synthetic distinguisher and report the pMSE.

    Both tables are subsampled to at most ``max_rows`` rows each so the test
    stays cheap on large captures; the logistic-regression distinguisher is
    evaluated on its own training pool, which is the standard (slightly
    attacker-favourable) pMSE protocol.
    """
    if real.schema.names != synthetic.schema.names:
        raise ValueError("real and synthetic tables must share a schema")
    if real.n_rows == 0 or synthetic.n_rows == 0:
        raise ValueError("both tables must be non-empty")
    rng = np.random.default_rng(seed)
    real_sample = real.sample(min(max_rows, real.n_rows), rng=rng)
    synth_sample = synthetic.sample(min(max_rows, synthetic.n_rows), rng=rng)
    pool = real_sample.concat(synth_sample)
    labels = np.concatenate(
        [np.zeros(real_sample.n_rows, dtype=int), np.ones(synth_sample.n_rows, dtype=int)]
    )

    features = _featurise(pool, reference=real_sample)
    classifier = LogisticRegressionClassifier(epochs=epochs, seed=seed)
    classifier.fit(features, labels)
    probabilities = classifier.predict_proba(features)[:, 1]

    synthetic_share = float(labels.mean())
    pmse = float(np.mean((probabilities - synthetic_share) ** 2))
    null_pmse = float(synthetic_share * (1.0 - synthetic_share))
    predictions = (probabilities >= 0.5).astype(int)
    accuracy = float((predictions == labels).mean())
    return PropensityResult(
        pmse=pmse, null_pmse=null_pmse, distinguishing_accuracy=accuracy
    )
