"""Aggregated fidelity report."""

from __future__ import annotations

from dataclasses import dataclass

from repro.fidelity.correlation import association_similarity
from repro.fidelity.distance import emd_distance, mixed_distance
from repro.fidelity.likelihood import likelihood_fitness
from repro.tabular.table import Table

__all__ = ["FidelityReport", "evaluate_fidelity"]


@dataclass
class FidelityReport:
    """All fidelity metrics for one (real, synthetic) pair."""

    model: str
    emd: float
    mixed: float
    association: float
    l_syn: float
    l_test: float

    def as_row(self) -> dict[str, float | str]:
        """Flat dict used by the benchmark table printers."""
        return {
            "model": self.model,
            "emd": round(self.emd, 4),
            "mixed": round(self.mixed, 4),
            "association": round(self.association, 4),
            "l_syn": round(self.l_syn, 3),
            "l_test": round(self.l_test, 3),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.model}: EMD={self.emd:.4f} mixed={self.mixed:.4f} "
            f"assoc={self.association:.3f} Lsyn={self.l_syn:.2f} Ltest={self.l_test:.2f}"
        )


def evaluate_fidelity(
    real_train: Table,
    synthetic: Table,
    real_test: Table | None = None,
    model: str = "model",
    max_modes: int = 10,
) -> FidelityReport:
    """Compute the full fidelity battery for a synthetic table.

    ``real_test`` defaults to ``real_train`` when no held-out split is
    available (the likelihood ``l_test`` is then an optimistic estimate).
    """
    real_test = real_test if real_test is not None else real_train
    likelihood = likelihood_fitness(real_train, real_test, synthetic, max_modes=max_modes)
    return FidelityReport(
        model=model,
        emd=emd_distance(real_train, synthetic),
        mixed=mixed_distance(real_train, synthetic),
        association=association_similarity(real_train, synthetic),
        l_syn=likelihood["l_syn"],
        l_test=likelihood["l_test"],
    )
