"""Likelihood fitness.

The paper validates KiNETGAN through "likelihood fitness" (section I /
conclusion): the synthetic data should be likely under a density model of
the real data, and a density model fitted to the synthetic data should
assign high likelihood to held-out real data (the L_syn / L_test pair
introduced by the CTGAN paper).  Continuous columns are modelled with the
same EM Gaussian mixtures the transformer uses; categorical columns with
smoothed empirical category distributions.
"""

from __future__ import annotations

import numpy as np

from repro.tabular.encoders import GaussianMixtureModel
from repro.tabular.table import Table

__all__ = ["likelihood_fitness"]

_EPS = 1e-9


def _table_log_likelihood(model_table: Table, scored_table: Table, max_modes: int) -> float:
    """Mean per-row log-likelihood of ``scored_table`` under a density model
    fitted column-wise on ``model_table`` (columns treated independently)."""
    total = 0.0
    for spec in model_table.schema:
        model_values = model_table.column(spec.name)
        scored_values = scored_table.column(spec.name)
        if spec.is_continuous:
            gmm = GaussianMixtureModel(max_components=max_modes).fit(
                model_values.astype(np.float64)
            )
            total += gmm.log_likelihood(scored_values.astype(np.float64))
        else:
            categories = spec.categories if spec.categories else tuple(
                dict.fromkeys(model_values)
            )
            counts = {value: 1.0 for value in categories}  # add-one smoothing
            for value in model_values:
                if value in counts:
                    counts[value] += 1.0
            norm = sum(counts.values())
            log_probs = {value: np.log(count / norm) for value, count in counts.items()}
            floor = np.log(_EPS)
            total += float(
                np.mean([log_probs.get(value, floor) for value in scored_values])
            )
    return total


def likelihood_fitness(
    real_train: Table,
    real_test: Table,
    synthetic: Table,
    max_modes: int = 10,
) -> dict[str, float]:
    """The (L_syn, L_test) likelihood-fitness pair.

    * ``l_syn``: likelihood of the synthetic data under a density model of
      the real training data -- high when the synthesizer stays on the real
      manifold.
    * ``l_test``: likelihood of held-out real data under a density model of
      the synthetic data -- high when the synthetic data covers the real
      distribution (penalises mode collapse).
    """
    return {
        "l_syn": _table_log_likelihood(real_train, synthetic, max_modes),
        "l_test": _table_log_likelihood(synthetic, real_test, max_modes),
    }
