"""Divergence-style fidelity metrics (Jensen-Shannon, Kolmogorov-Smirnov).

These complement the EMD / mixed-distance metrics of Table I with the two
measures most synthetic-data papers additionally report:

* **Jensen-Shannon distance** per column (bounded in [0, 1], symmetric,
  defined even when supports differ), averaged over columns;
* **Kolmogorov-Smirnov statistic** for continuous columns (the maximum CDF
  gap) and total-variation distance for categorical columns, averaged over
  columns -- this is the "KSTest / TVComplement" pair popularised by SDMetrics.

Lower is better for all of them; identical distributions score 0.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.tabular.table import Table

__all__ = [
    "column_jsd",
    "jensen_shannon_distance",
    "column_ks",
    "ks_statistic",
    "per_column_divergences",
]

_EPS = 1e-12
_BINS = 20


def _categorical_distributions(
    real_values: np.ndarray, synth_values: np.ndarray, categories: tuple | None
) -> tuple[np.ndarray, np.ndarray]:
    if categories is None or len(categories) == 0:
        categories = tuple(dict.fromkeys(list(real_values) + list(synth_values)))
    index = {value: i for i, value in enumerate(categories)}
    real_counts = np.zeros(len(categories))
    synth_counts = np.zeros(len(categories))
    for value in real_values:
        if value in index:
            real_counts[index[value]] += 1
    for value in synth_values:
        if value in index:
            synth_counts[index[value]] += 1
    return (
        real_counts / max(real_counts.sum(), _EPS),
        synth_counts / max(synth_counts.sum(), _EPS),
    )


def _continuous_histograms(
    real_values: np.ndarray, synth_values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    real_numeric = real_values.astype(np.float64)
    synth_numeric = synth_values.astype(np.float64)
    low = min(real_numeric.min(), synth_numeric.min())
    high = max(real_numeric.max(), synth_numeric.max())
    if high <= low:
        high = low + 1.0
    edges = np.linspace(low, high, _BINS + 1)
    real_hist, _ = np.histogram(real_numeric, bins=edges)
    synth_hist, _ = np.histogram(synth_numeric, bins=edges)
    return (
        real_hist / max(real_hist.sum(), _EPS),
        synth_hist / max(synth_hist.sum(), _EPS),
    )


def _jsd(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen-Shannon *distance* (square root of the divergence, base 2)."""
    p = np.clip(p, _EPS, 1.0)
    q = np.clip(q, _EPS, 1.0)
    p = p / p.sum()
    q = q / q.sum()
    m = 0.5 * (p + q)
    divergence = 0.5 * np.sum(p * np.log2(p / m)) + 0.5 * np.sum(q * np.log2(q / m))
    return float(np.sqrt(max(divergence, 0.0)))


def column_jsd(real: Table, synthetic: Table, column: str) -> float:
    """Jensen-Shannon distance between real and synthetic marginals of a column."""
    spec = real.schema.column(column)
    real_values = real.column(column)
    synth_values = synthetic.column(column)
    if len(real_values) == 0 or len(synth_values) == 0:
        raise ValueError("cannot compute JSD on empty tables")
    if spec.is_categorical:
        p, q = _categorical_distributions(real_values, synth_values, spec.categories)
    else:
        p, q = _continuous_histograms(real_values, synth_values)
    return _jsd(p, q)


def column_ks(real: Table, synthetic: Table, column: str) -> float:
    """KS statistic (continuous) or total-variation distance (categorical)."""
    spec = real.schema.column(column)
    real_values = real.column(column)
    synth_values = synthetic.column(column)
    if len(real_values) == 0 or len(synth_values) == 0:
        raise ValueError("cannot compute the KS statistic on empty tables")
    if spec.is_continuous:
        statistic, _ = stats.ks_2samp(
            real_values.astype(np.float64), synth_values.astype(np.float64)
        )
        return float(statistic)
    p, q = _categorical_distributions(real_values, synth_values, spec.categories)
    return float(0.5 * np.abs(p - q).sum())


def per_column_divergences(real: Table, synthetic: Table) -> dict[str, dict[str, float]]:
    """Per-column ``{"jsd": ..., "ks": ...}`` for every shared column."""
    if real.schema.names != synthetic.schema.names:
        raise ValueError("real and synthetic tables must share a schema")
    return {
        name: {
            "jsd": column_jsd(real, synthetic, name),
            "ks": column_ks(real, synthetic, name),
        }
        for name in real.schema.names
    }


def jensen_shannon_distance(real: Table, synthetic: Table) -> float:
    """Mean Jensen-Shannon distance over all columns (lower is better)."""
    divergences = per_column_divergences(real, synthetic)
    return float(np.mean([entry["jsd"] for entry in divergences.values()]))


def ks_statistic(real: Table, synthetic: Table) -> float:
    """Mean KS / total-variation statistic over all columns (lower is better)."""
    divergences = per_column_divergences(real, synthetic)
    return float(np.mean([entry["ks"] for entry in divergences.values()]))
