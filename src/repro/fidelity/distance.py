"""Statistical distances between real and synthetic tables (Table I).

Two aggregate distances are reported, following section V-A of the paper:

* **EMD / Wasserstein distance** -- for continuous columns the 1-D
  Wasserstein distance on min-max normalised values; for categorical columns
  the Wasserstein distance degenerates to the total-variation distance
  between category distributions.  The aggregate is the mean over columns.
* **Mixed L1/L2 distance** -- the paper combines "L1 norm or Manhattan
  distance ... for categorical variables and the L2 norm or Euclidean
  distance ... for continuous variables".  We implement this as the L1
  distance between category frequency vectors for categorical columns and
  the L2 distance between normalised 20-bin histograms for continuous
  columns, again averaged over columns.

Both metrics are zero for identical distributions and grow with divergence;
lower is better.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.tabular.table import Table

__all__ = ["column_emd", "emd_distance", "mixed_distance", "per_column_distances"]

_EPS = 1e-12


def _category_distributions(
    real: np.ndarray, synthetic: np.ndarray, categories: tuple
) -> tuple[np.ndarray, np.ndarray]:
    real_counts = np.zeros(len(categories), dtype=np.float64)
    synth_counts = np.zeros(len(categories), dtype=np.float64)
    index = {value: i for i, value in enumerate(categories)}
    for value in real:
        if value in index:
            real_counts[index[value]] += 1
    for value in synthetic:
        if value in index:
            synth_counts[index[value]] += 1
    real_dist = real_counts / max(real_counts.sum(), _EPS)
    synth_dist = synth_counts / max(synth_counts.sum(), _EPS)
    return real_dist, synth_dist


def column_emd(real: Table, synthetic: Table, column: str) -> float:
    """Earth Mover's Distance for a single column (normalised, scale-free)."""
    spec = real.schema.column(column)
    real_values = real.column(column)
    synth_values = synthetic.column(column)
    if len(real_values) == 0 or len(synth_values) == 0:
        raise ValueError("cannot compute EMD on empty tables")
    if spec.is_continuous:
        real_numeric = real_values.astype(np.float64)
        synth_numeric = synth_values.astype(np.float64)
        low = float(real_numeric.min())
        high = float(real_numeric.max())
        span = max(high - low, _EPS)
        return float(
            stats.wasserstein_distance(
                (real_numeric - low) / span, (synth_numeric - low) / span
            )
        )
    categories = spec.categories if spec.categories else tuple(
        dict.fromkeys(list(real_values) + list(synth_values))
    )
    real_dist, synth_dist = _category_distributions(real_values, synth_values, categories)
    # For unordered categories the 1-Wasserstein distance with 0/1 ground
    # metric equals the total-variation distance.
    return float(0.5 * np.abs(real_dist - synth_dist).sum())


def emd_distance(real: Table, synthetic: Table) -> float:
    """Mean per-column EMD between two tables sharing a schema."""
    if real.schema.names != synthetic.schema.names:
        raise ValueError("tables must share a schema")
    distances = [column_emd(real, synthetic, name) for name in real.schema.names]
    return float(np.mean(distances))


def _column_mixed(real: Table, synthetic: Table, column: str) -> float:
    spec = real.schema.column(column)
    real_values = real.column(column)
    synth_values = synthetic.column(column)
    if spec.is_categorical:
        categories = spec.categories if spec.categories else tuple(
            dict.fromkeys(list(real_values) + list(synth_values))
        )
        real_dist, synth_dist = _category_distributions(real_values, synth_values, categories)
        return float(np.abs(real_dist - synth_dist).sum())
    real_numeric = real_values.astype(np.float64)
    synth_numeric = synth_values.astype(np.float64)
    low = float(real_numeric.min())
    high = float(real_numeric.max())
    bins = np.linspace(low, high, 21)
    real_hist, _ = np.histogram(real_numeric, bins=bins)
    synth_hist, _ = np.histogram(np.clip(synth_numeric, low, high), bins=bins)
    real_hist = real_hist / max(real_hist.sum(), _EPS)
    synth_hist = synth_hist / max(synth_hist.sum(), _EPS)
    return float(np.sqrt(((real_hist - synth_hist) ** 2).sum()))


def mixed_distance(real: Table, synthetic: Table) -> float:
    """Combined L1 (categorical) / L2 (continuous) distance, averaged over columns."""
    if real.schema.names != synthetic.schema.names:
        raise ValueError("tables must share a schema")
    distances = [_column_mixed(real, synthetic, name) for name in real.schema.names]
    return float(np.mean(distances))


def per_column_distances(real: Table, synthetic: Table) -> dict[str, dict[str, float]]:
    """Per-column EMD and mixed distances (diagnostic view of Table I)."""
    out: dict[str, dict[str, float]] = {}
    for name in real.schema.names:
        out[name] = {
            "emd": column_emd(real, synthetic, name),
            "mixed": _column_mixed(real, synthetic, name),
        }
    return out
