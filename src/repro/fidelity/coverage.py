"""Coverage and novelty diagnostics for synthetic tables.

Distance metrics can look excellent while the generator quietly drops rare
categories (mode collapse) or memorises training rows (a privacy smell).
These diagnostics make both visible:

* **category coverage** -- fraction of real category values (per categorical
  column) that appear at least once in the synthetic data;
* **range coverage** -- fraction of the real min-max range (per continuous
  column) spanned by the synthetic values;
* **duplicate rate** -- fraction of synthetic rows that exactly match some
  real row on every categorical column and lie within a small tolerance on
  every continuous column (high values suggest memorisation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tabular.table import Table

__all__ = ["CoverageReport", "category_coverage", "range_coverage", "duplicate_rate",
           "coverage_report"]


@dataclass
class CoverageReport:
    """Aggregate coverage / novelty diagnostics."""

    category_coverage: float
    range_coverage: float
    duplicate_rate: float
    per_column_category: dict[str, float] = field(default_factory=dict)
    per_column_range: dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"category coverage={self.category_coverage:.3f}, "
            f"range coverage={self.range_coverage:.3f}, "
            f"duplicate rate={self.duplicate_rate:.3f}"
        )


def category_coverage(real: Table, synthetic: Table) -> dict[str, float]:
    """Per categorical column: share of observed real values that appear synthetically."""
    coverage: dict[str, float] = {}
    for name in real.schema.categorical_names:
        real_values = set(real.column(name))
        if not real_values:
            coverage[name] = 1.0
            continue
        synth_values = set(synthetic.column(name))
        coverage[name] = len(real_values & synth_values) / len(real_values)
    return coverage


def range_coverage(real: Table, synthetic: Table) -> dict[str, float]:
    """Per continuous column: fraction of the real value range the synthetic spans."""
    coverage: dict[str, float] = {}
    for name in real.schema.continuous_names:
        real_values = real.column(name).astype(np.float64)
        synth_values = synthetic.column(name).astype(np.float64)
        real_span = float(real_values.max() - real_values.min())
        if real_span <= 0:
            coverage[name] = 1.0
            continue
        low = max(real_values.min(), synth_values.min())
        high = min(real_values.max(), synth_values.max())
        coverage[name] = float(np.clip((high - low) / real_span, 0.0, 1.0))
    return coverage


def duplicate_rate(
    real: Table, synthetic: Table, continuous_tolerance: float = 1e-3
) -> float:
    """Share of synthetic rows that (near-)exactly replicate some real row.

    Categorical columns must match exactly; continuous columns must agree
    within ``continuous_tolerance`` relative to the column's real range.
    Exact-match hashing over the categorical part keeps this tractable.
    """
    if synthetic.n_rows == 0:
        return 0.0
    categorical = real.schema.categorical_names
    continuous = real.schema.continuous_names

    def cat_key(table: Table, index: int) -> tuple:
        row = table.row(index)
        return tuple(row[name] for name in categorical)

    real_by_key: dict[tuple, list[int]] = {}
    for i in range(real.n_rows):
        real_by_key.setdefault(cat_key(real, i), []).append(i)

    tolerances = {}
    for name in continuous:
        values = real.column(name).astype(np.float64)
        span = float(values.max() - values.min()) or 1.0
        tolerances[name] = continuous_tolerance * span

    duplicates = 0
    for i in range(synthetic.n_rows):
        candidates = real_by_key.get(cat_key(synthetic, i))
        if not candidates:
            continue
        synth_row = synthetic.row(i)
        for j in candidates:
            real_row = real.row(j)
            if all(
                abs(float(synth_row[name]) - float(real_row[name])) <= tolerances[name]
                for name in continuous
            ):
                duplicates += 1
                break
    return duplicates / synthetic.n_rows


def coverage_report(
    real: Table, synthetic: Table, continuous_tolerance: float = 1e-3
) -> CoverageReport:
    """Aggregate :class:`CoverageReport` for a (real, synthetic) pair."""
    if real.schema.names != synthetic.schema.names:
        raise ValueError("real and synthetic tables must share a schema")
    per_category = category_coverage(real, synthetic)
    per_range = range_coverage(real, synthetic)
    return CoverageReport(
        category_coverage=float(np.mean(list(per_category.values()))) if per_category else 1.0,
        range_coverage=float(np.mean(list(per_range.values()))) if per_range else 1.0,
        duplicate_rate=duplicate_rate(real, synthetic, continuous_tolerance),
        per_column_category=per_category,
        per_column_range=per_range,
    )
