"""Pairwise-association similarity between real and synthetic tables.

Cross-attribute correlation is precisely what the knowledge-guided
discriminator is meant to preserve (the paper motivates KiNETGAN with
"attribute cross-correlation issues"), so beyond marginal distances we also
compare association matrices:

* continuous-continuous pairs: Pearson correlation,
* categorical-categorical pairs: Cramer's V,
* categorical-continuous pairs: the correlation ratio (eta).

The similarity score is ``1 - mean(|assoc_real - assoc_synth|)``; 1.0 means
identical association structure.
"""

from __future__ import annotations

import numpy as np

from repro.tabular.table import Table

__all__ = ["association_similarity", "association_matrix"]

_EPS = 1e-12


def _pearson(x: np.ndarray, y: np.ndarray) -> float:
    sx = x.std()
    sy = y.std()
    if sx < _EPS or sy < _EPS:
        return 0.0
    return float(np.clip(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy), -1.0, 1.0))


def _cramers_v(x: np.ndarray, y: np.ndarray) -> float:
    x_values = list(dict.fromkeys(x))
    y_values = list(dict.fromkeys(y))
    if len(x_values) < 2 or len(y_values) < 2:
        return 0.0
    table = np.zeros((len(x_values), len(y_values)))
    x_index = {v: i for i, v in enumerate(x_values)}
    y_index = {v: i for i, v in enumerate(y_values)}
    for a, b in zip(x, y):
        table[x_index[a], y_index[b]] += 1
    n = table.sum()
    expected = np.outer(table.sum(axis=1), table.sum(axis=0)) / max(n, _EPS)
    with np.errstate(divide="ignore", invalid="ignore"):
        chi2 = np.nansum(np.where(expected > 0, (table - expected) ** 2 / expected, 0.0))
    k = min(len(x_values), len(y_values))
    return float(np.sqrt(chi2 / max(n * (k - 1), _EPS)))


def _correlation_ratio(categories: np.ndarray, values: np.ndarray) -> float:
    values = values.astype(np.float64)
    overall_mean = values.mean()
    ss_between = 0.0
    for value in dict.fromkeys(categories):
        group = values[categories == value]
        if len(group) == 0:
            continue
        ss_between += len(group) * (group.mean() - overall_mean) ** 2
    ss_total = ((values - overall_mean) ** 2).sum()
    if ss_total < _EPS:
        return 0.0
    return float(np.sqrt(ss_between / ss_total))


def association_matrix(table: Table) -> np.ndarray:
    """Symmetric matrix of pairwise associations between all columns."""
    names = table.schema.names
    matrix = np.eye(len(names))
    for i, a in enumerate(names):
        for j in range(i + 1, len(names)):
            b = names[j]
            spec_a = table.schema.column(a)
            spec_b = table.schema.column(b)
            col_a = table.column(a)
            col_b = table.column(b)
            if spec_a.is_continuous and spec_b.is_continuous:
                value = abs(_pearson(col_a.astype(np.float64), col_b.astype(np.float64)))
            elif spec_a.is_categorical and spec_b.is_categorical:
                value = _cramers_v(col_a, col_b)
            elif spec_a.is_categorical:
                value = _correlation_ratio(col_a, col_b)
            else:
                value = _correlation_ratio(col_b, col_a)
            matrix[i, j] = matrix[j, i] = value
    return matrix


def association_similarity(real: Table, synthetic: Table) -> float:
    """1 minus the mean absolute difference of the association matrices."""
    if real.schema.names != synthetic.schema.names:
        raise ValueError("tables must share a schema")
    real_matrix = association_matrix(real)
    synth_matrix = association_matrix(synthetic)
    n = len(real.schema.names)
    if n < 2:
        return 1.0
    mask = ~np.eye(n, dtype=bool)
    return float(1.0 - np.abs(real_matrix - synth_matrix)[mask].mean())
