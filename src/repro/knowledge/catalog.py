"""Domain catalogs: the ground truth a NetworkKG is built from.

A :class:`DomainCatalog` describes a monitored environment -- its devices,
the benign communication events they generate, and the attacks that can be
observed -- together with the attribute constraints each event type imposes
(allowed protocols, destination endpoints, port ranges).  Dataset modules
publish a catalog alongside the data they generate; the knowledge-graph
builder turns the catalog into triples and the reasoner answers validity
queries against those triples.

The catalog also fixes the *field map*: which table columns play the roles
of event type, protocol, source/destination IP and ports.  This keeps the
knowledge machinery independent of any particular dataset's column names.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_FIELD_MAP",
    "DeviceSpec",
    "EventSpec",
    "AttackSpec",
    "DomainCatalog",
]

#: Default mapping from semantic roles to table column names.
DEFAULT_FIELD_MAP: dict[str, str] = {
    "event_type": "event_type",
    "protocol": "protocol",
    "source_ip": "src_ip",
    "destination_ip": "dst_ip",
    "source_port": "src_port",
    "destination_port": "dst_port",
    "label": "label",
}


@dataclass(frozen=True)
class DeviceSpec:
    """A monitored device: name, address and device kind."""

    name: str
    ip: str
    kind: str = "iot"
    description: str = ""


@dataclass(frozen=True)
class EventSpec:
    """A network event type and the attribute combinations it allows.

    ``destination_ports`` lists explicitly allowed ports while
    ``destination_port_range`` allows a contiguous span (both may be given;
    a destination port is valid if it matches either).  An empty collection
    means "unconstrained" for that attribute.
    """

    name: str
    kind: str = "benign"  # "benign" or "attack"
    protocols: tuple[str, ...] = ()
    source_devices: tuple[str, ...] = ()
    destination_ips: tuple[str, ...] = ()
    destination_domains: tuple[str, ...] = ()
    destination_ports: tuple[int, ...] = ()
    destination_port_range: tuple[int, int] | None = None
    source_port_range: tuple[int, int] | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("benign", "attack"):
            raise ValueError(f"event kind must be 'benign' or 'attack', got {self.kind!r}")
        for range_name in ("destination_port_range", "source_port_range"):
            value = getattr(self, range_name)
            if value is not None:
                low, high = value
                if low > high:
                    raise ValueError(f"{range_name} low > high for event {self.name!r}")


@dataclass(frozen=True)
class AttackSpec:
    """An attack description linking a CVE to the event type it manifests as.

    The paper's running example is CVE-1999-0003, whose valid destination
    ports lie in 32771..34000; that constraint is expressed here through the
    ``event`` the attack manifests as.
    """

    name: str
    cve: str
    event: EventSpec
    description: str = ""

    def __post_init__(self) -> None:
        if self.event.kind != "attack":
            raise ValueError(f"attack {self.name!r} must manifest as an 'attack' event")


@dataclass
class DomainCatalog:
    """Everything the KG builder needs to know about a monitored environment."""

    name: str
    devices: list[DeviceSpec] = field(default_factory=list)
    events: list[EventSpec] = field(default_factory=list)
    attacks: list[AttackSpec] = field(default_factory=list)
    #: Mapping of external domain URL -> resolved IP address.
    domains: dict[str, str] = field(default_factory=dict)
    #: Mapping from semantic role to table column name.
    field_map: dict[str, str] = field(default_factory=lambda: dict(DEFAULT_FIELD_MAP))

    def __post_init__(self) -> None:
        names = [d.name for d in self.devices]
        if len(set(names)) != len(names):
            raise ValueError("duplicate device names in catalog")
        event_names = [e.name for e in self.all_events()]
        if len(set(event_names)) != len(event_names):
            raise ValueError("duplicate event names in catalog")

    # ------------------------------------------------------------------ #
    def all_events(self) -> list[EventSpec]:
        """Benign events plus the events each attack manifests as."""
        return list(self.events) + [attack.event for attack in self.attacks]

    def event(self, name: str) -> EventSpec:
        for spec in self.all_events():
            if spec.name == name:
                return spec
        raise KeyError(f"no event named {name!r}")

    def device(self, name: str) -> DeviceSpec:
        for spec in self.devices:
            if spec.name == name:
                return spec
        raise KeyError(f"no device named {name!r}")

    def device_by_ip(self, ip: str) -> DeviceSpec | None:
        for spec in self.devices:
            if spec.ip == ip:
                return spec
        return None

    @property
    def device_ips(self) -> list[str]:
        return [d.ip for d in self.devices]

    @property
    def event_names(self) -> list[str]:
        return [e.name for e in self.all_events()]

    @property
    def protocols(self) -> list[str]:
        seen: dict[str, None] = {}
        for spec in self.all_events():
            for proto in spec.protocols:
                seen.setdefault(proto, None)
        return list(seen)

    def destination_ips_for(self, event_name: str) -> list[str]:
        """Explicit destination IPs for an event, resolving domains."""
        spec = self.event(event_name)
        ips = list(spec.destination_ips)
        for domain in spec.destination_domains:
            if domain in self.domains:
                ips.append(self.domains[domain])
        return ips
