"""Batch validity scoring against the knowledge graph.

:class:`BatchValidator` turns the per-record reasoner queries into vectorised
scores over whole tables.  It is used in two places:

* the knowledge-guided discriminator ``D_KG`` scores every generated batch
  and feeds the scores into the generator loss (paper eq. 3-4);
* the evaluation harness reports the *constraint-violation rate* of each
  synthesizer's output (our ablation A1 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.knowledge.reasoner import KGReasoner
from repro.tabular.table import Table

__all__ = ["ValidityReport", "BatchValidator"]


@dataclass
class ValidityReport:
    """Summary of a batch validity check."""

    total: int
    valid: int
    violations_by_rule: dict[str, int] = field(default_factory=dict)

    @property
    def validity_rate(self) -> float:
        return self.valid / self.total if self.total else 1.0

    @property
    def violation_rate(self) -> float:
        return 1.0 - self.validity_rate

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [
            f"ValidityReport: {self.valid}/{self.total} valid "
            f"({100 * self.validity_rate:.1f}%)"
        ]
        for rule, count in sorted(self.violations_by_rule.items()):
            lines.append(f"  {rule}: {count} violations")
        return "\n".join(lines)


class BatchValidator:
    """Score records or tables for knowledge-graph validity."""

    def __init__(self, reasoner: KGReasoner) -> None:
        self.reasoner = reasoner

    def record_scores(self, records: list[dict]) -> np.ndarray:
        """Per-record validity as a float array of 0.0 / 1.0 values.

        Records may constrain any subset of attributes; ``is_valid`` skips
        constraints on attributes a record does not carry.  The per-record
        loop beats repacking into the batched ``validity_mask`` at the pool
        sizes the D_KG training step uses (a few dozen corrupted rows).
        """
        scores = np.empty(len(records), dtype=np.float64)
        for i, record in enumerate(records):
            scores[i] = 1.0 if self.reasoner.is_valid(record) else 0.0
        return scores

    def table_scores(self, table: Table) -> np.ndarray:
        """Per-row validity scores for a table (batched KG query)."""
        return self.reasoner.validity_mask(table).astype(np.float64)

    def report(self, table: Table) -> ValidityReport:
        """Full validity report with per-rule violation counts."""
        violations_by_rule: dict[str, int] = {}
        valid = 0
        records = table.to_records()
        for record in records:
            violations = self.reasoner.violations(record)
            if not violations:
                valid += 1
            for violation in violations:
                violations_by_rule[violation.rule_name] = (
                    violations_by_rule.get(violation.rule_name, 0) + 1
                )
        return ValidityReport(
            total=len(records), valid=valid, violations_by_rule=violations_by_rule
        )
