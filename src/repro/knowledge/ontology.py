"""A lightweight ontology model extending the Unified Cybersecurity Ontology.

The paper (section IV-A) extends UCO with network-activity concepts such as
``networkEvent`` and ``domainURL`` and properties like protocol, source /
destination IP addresses and port numbers.  This module represents that
ontology explicitly: classes with a subsumption hierarchy and typed
properties with domains and ranges.  The NetworkKG builder types every
entity it creates against this ontology, and the reasoner uses it to check
that queries make sense (e.g. you cannot ask for the protocol of a port).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OntologyClass", "OntologyProperty", "Ontology", "default_network_ontology"]


@dataclass(frozen=True)
class OntologyClass:
    """An ontology class (concept)."""

    name: str
    parent: str | None = None
    description: str = ""


@dataclass(frozen=True)
class OntologyProperty:
    """A typed property linking a domain class to a range class or literal."""

    name: str
    domain: str
    range: str
    description: str = ""
    functional: bool = False


@dataclass
class Ontology:
    """A set of classes (with single inheritance) and typed properties."""

    classes: dict[str, OntologyClass] = field(default_factory=dict)
    properties: dict[str, OntologyProperty] = field(default_factory=dict)

    def add_class(
        self, name: str, parent: str | None = None, description: str = ""
    ) -> OntologyClass:
        if name in self.classes:
            raise ValueError(f"class {name!r} already defined")
        if parent is not None and parent not in self.classes:
            raise ValueError(f"parent class {parent!r} is not defined")
        cls = OntologyClass(name=name, parent=parent, description=description)
        self.classes[name] = cls
        return cls

    def add_property(
        self,
        name: str,
        domain: str,
        range: str,
        description: str = "",
        functional: bool = False,
    ) -> OntologyProperty:
        if name in self.properties:
            raise ValueError(f"property {name!r} already defined")
        if domain not in self.classes:
            raise ValueError(f"domain class {domain!r} is not defined")
        if range not in self.classes and range != "Literal":
            raise ValueError(f"range class {range!r} is not defined")
        prop = OntologyProperty(
            name=name, domain=domain, range=range, description=description, functional=functional
        )
        self.properties[name] = prop
        return prop

    def has_class(self, name: str) -> bool:
        return name in self.classes

    def has_property(self, name: str) -> bool:
        return name in self.properties

    def ancestors(self, name: str) -> list[str]:
        """All (transitive) superclasses of ``name``, nearest first."""
        if name not in self.classes:
            raise KeyError(f"unknown class {name!r}")
        chain: list[str] = []
        parent = self.classes[name].parent
        while parent is not None:
            chain.append(parent)
            parent = self.classes[parent].parent
        return chain

    def is_subclass_of(self, name: str, ancestor: str) -> bool:
        """Reflexive subsumption check."""
        return name == ancestor or ancestor in self.ancestors(name)

    def subclasses(self, name: str) -> list[str]:
        """All (transitive) subclasses of ``name``."""
        if name not in self.classes:
            raise KeyError(f"unknown class {name!r}")
        return [
            other
            for other in self.classes
            if other != name and self.is_subclass_of(other, name)
        ]

    def properties_of(self, class_name: str) -> list[OntologyProperty]:
        """Properties whose domain subsumes ``class_name``."""
        return [
            prop
            for prop in self.properties.values()
            if self.is_subclass_of(class_name, prop.domain)
        ]

    def validate_assertion(self, subject_class: str, property_name: str) -> bool:
        """Whether an instance of ``subject_class`` may carry ``property_name``."""
        if property_name not in self.properties:
            return False
        if subject_class not in self.classes:
            return False
        return self.is_subclass_of(subject_class, self.properties[property_name].domain)


def default_network_ontology() -> Ontology:
    """The UCO-extended network-activity ontology used by the paper (Fig. 2).

    The upper classes mirror UCO (``Means``, ``Consequence``, ``Attack``,
    ``Indicator``); the network-activity extension adds ``NetworkEvent``,
    ``DomainURL``, ``IPAddress``, ``Port``, ``Protocol`` and ``Device`` plus
    the properties that tie a network event to its endpoints.
    """
    onto = Ontology()
    # UCO core (the subset relevant here).
    onto.add_class("Entity", description="Top-level UCO entity")
    onto.add_class("Means", parent="Entity", description="Means by which an attack is carried out")
    onto.add_class("Attack", parent="Entity", description="A cybersecurity attack")
    onto.add_class("Consequence", parent="Entity", description="Consequence of an attack")
    onto.add_class("Indicator", parent="Entity", description="Observable indicator")
    onto.add_class("Vulnerability", parent="Entity", description="A CVE-identified weakness")

    # Network-activity extension (paper section IV-A, figure 2).
    onto.add_class("NetworkEvent", parent="Indicator", description="A captured network event")
    onto.add_class("AttackEvent", parent="NetworkEvent", description="A network event that is part of an attack")
    onto.add_class("BenignEvent", parent="NetworkEvent", description="Normal device communication")
    onto.add_class("Device", parent="Entity", description="A monitored IoT / mobile device")
    onto.add_class("IPAddress", parent="Entity", description="IPv4 address")
    onto.add_class("Port", parent="Entity", description="Transport-layer port number")
    onto.add_class("Protocol", parent="Entity", description="Transport / application protocol")
    onto.add_class("DomainURL", parent="Entity", description="Remote service endpoint")
    onto.add_class("EventType", parent="Entity", description="Semantic label of a network event")
    onto.add_class("PortRange", parent="Entity", description="A contiguous span of ports")

    # Properties of a network event.
    onto.add_property("hasProtocol", "NetworkEvent", "Protocol", functional=True)
    onto.add_property("hasSourceIP", "NetworkEvent", "IPAddress", functional=True)
    onto.add_property("hasDestinationIP", "NetworkEvent", "IPAddress", functional=True)
    onto.add_property("hasSourcePort", "NetworkEvent", "Port", functional=True)
    onto.add_property("hasDestinationPort", "NetworkEvent", "Port", functional=True)
    onto.add_property("hasEventType", "NetworkEvent", "EventType", functional=True)
    onto.add_property("hasDomainURL", "NetworkEvent", "DomainURL")
    onto.add_property("originatesFrom", "NetworkEvent", "Device")
    onto.add_property("targets", "NetworkEvent", "Device")

    # Event-type level constraints (what the reasoner queries).
    onto.add_property("hasEventKind", "EventType", "Literal", functional=True)
    onto.add_property("allowsProtocol", "EventType", "Protocol")
    onto.add_property("allowsSourceDevice", "EventType", "Device")
    onto.add_property("allowsDestinationIP", "EventType", "IPAddress")
    onto.add_property("allowsDestinationDomain", "EventType", "DomainURL")
    onto.add_property("allowsDestinationPort", "EventType", "Port")
    onto.add_property("allowsDestinationPortRange", "EventType", "PortRange")
    onto.add_property("allowsSourcePortRange", "EventType", "PortRange")

    # Device and attack descriptions.
    onto.add_property("hasIPAddress", "Device", "IPAddress", functional=True)
    onto.add_property("hasDeviceKind", "Device", "Literal")
    onto.add_property("resolvesTo", "DomainURL", "IPAddress")
    onto.add_property("exploits", "Attack", "Vulnerability")
    onto.add_property("manifestsAs", "Attack", "EventType")
    onto.add_property("usesProtocol", "Attack", "Protocol")
    onto.add_property("targetsPortRange", "Attack", "PortRange")

    # Port-range and port literals.
    onto.add_property("rangeLow", "PortRange", "Literal", functional=True)
    onto.add_property("rangeHigh", "PortRange", "Literal", functional=True)
    onto.add_property("portNumber", "Port", "Literal", functional=True)
    return onto
