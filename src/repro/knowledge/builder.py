"""NetworkKG construction.

:class:`NetworkKGBuilder` converts a :class:`~repro.knowledge.catalog.DomainCatalog`
into a typed knowledge graph laid out against the UCO-extended network
ontology (paper section IV-A):

* devices become ``device:*`` entities carrying their IP address,
* external endpoints become ``domain:*`` entities resolving to IPs,
* every event type becomes an ``event:*`` entity with ``allows*`` assertions
  describing the attribute combinations it admits,
* attacks become ``attack:*`` entities linked to the CVE they exploit and to
  the event type they manifest as (including the target port range --
  e.g. the paper's CVE-1999-0003 example with ports 32771..34000).

The reasoner then answers validity queries purely from these triples, so the
knowledge graph -- not the catalog -- is the artefact the GAN training
consumes.
"""

from __future__ import annotations

from repro.knowledge.catalog import DomainCatalog
from repro.knowledge.graph import KnowledgeGraph
from repro.knowledge.ontology import Ontology, default_network_ontology

__all__ = ["NetworkKGBuilder", "build_network_kg"]

# URI namespaces used for the entities the builder mints.
DEVICE_NS = "device:"
EVENT_NS = "event:"
PROTOCOL_NS = "proto:"
IP_NS = "ip:"
DOMAIN_NS = "domain:"
PORT_NS = "port:"
PORTRANGE_NS = "portrange:"
ATTACK_NS = "attack:"
VULN_NS = "vuln:"


class NetworkKGBuilder:
    """Builds a NetworkKG from a domain catalog."""

    def __init__(self, ontology: Ontology | None = None) -> None:
        self.ontology = ontology if ontology is not None else default_network_ontology()

    def build(self, catalog: DomainCatalog) -> KnowledgeGraph:
        """Construct the knowledge graph for ``catalog``."""
        graph = KnowledgeGraph(name=f"NetworkKG[{catalog.name}]")
        self._add_devices(graph, catalog)
        self._add_domains(graph, catalog)
        self._add_events(graph, catalog)
        self._add_attacks(graph, catalog)
        return graph

    # ------------------------------------------------------------------ #
    def _assert(self, graph: KnowledgeGraph, subject: str, subject_class: str,
                predicate: str, obj: object) -> None:
        """Add a triple after checking the ontology admits it."""
        if not self.ontology.validate_assertion(subject_class, predicate):
            raise ValueError(
                f"ontology does not allow property {predicate!r} on class {subject_class!r}"
            )
        graph.add_triple(subject, predicate, obj)

    def _add_devices(self, graph: KnowledgeGraph, catalog: DomainCatalog) -> None:
        for device in catalog.devices:
            uri = DEVICE_NS + device.name
            graph.add_type(uri, "Device")
            ip_uri = IP_NS + device.ip
            graph.add_type(ip_uri, "IPAddress")
            self._assert(graph, uri, "Device", "hasIPAddress", ip_uri)
            self._assert(graph, uri, "Device", "hasDeviceKind", device.kind)

    def _add_domains(self, graph: KnowledgeGraph, catalog: DomainCatalog) -> None:
        for domain, ip in catalog.domains.items():
            uri = DOMAIN_NS + domain
            graph.add_type(uri, "DomainURL")
            ip_uri = IP_NS + ip
            graph.add_type(ip_uri, "IPAddress")
            self._assert(graph, uri, "DomainURL", "resolvesTo", ip_uri)

    def _add_events(self, graph: KnowledgeGraph, catalog: DomainCatalog) -> None:
        for spec in catalog.all_events():
            uri = EVENT_NS + spec.name
            graph.add_type(uri, "EventType")
            self._assert(graph, uri, "EventType", "hasEventKind", spec.kind)
            for protocol in spec.protocols:
                proto_uri = PROTOCOL_NS + protocol
                graph.add_type(proto_uri, "Protocol")
                self._assert(graph, uri, "EventType", "allowsProtocol", proto_uri)
            for device_name in spec.source_devices:
                self._assert(graph, uri, "EventType", "allowsSourceDevice", DEVICE_NS + device_name)
            for ip in spec.destination_ips:
                ip_uri = IP_NS + ip
                graph.add_type(ip_uri, "IPAddress")
                self._assert(graph, uri, "EventType", "allowsDestinationIP", ip_uri)
            for domain in spec.destination_domains:
                self._assert(graph, uri, "EventType", "allowsDestinationDomain", DOMAIN_NS + domain)
            for port in spec.destination_ports:
                port_uri = PORT_NS + str(port)
                graph.add_type(port_uri, "Port")
                self._assert(graph, port_uri, "Port", "portNumber", int(port))
                self._assert(graph, uri, "EventType", "allowsDestinationPort", port_uri)
            if spec.destination_port_range is not None:
                self._add_port_range(
                    graph, uri, spec.name, "dst", "allowsDestinationPortRange",
                    spec.destination_port_range,
                )
            if spec.source_port_range is not None:
                self._add_port_range(
                    graph, uri, spec.name, "src", "allowsSourcePortRange",
                    spec.source_port_range,
                )

    def _add_port_range(
        self,
        graph: KnowledgeGraph,
        event_uri: str,
        event_name: str,
        direction: str,
        predicate: str,
        port_range: tuple[int, int],
    ) -> None:
        low, high = port_range
        range_uri = f"{PORTRANGE_NS}{event_name}-{direction}"
        graph.add_type(range_uri, "PortRange")
        self._assert(graph, range_uri, "PortRange", "rangeLow", int(low))
        self._assert(graph, range_uri, "PortRange", "rangeHigh", int(high))
        self._assert(graph, event_uri, "EventType", predicate, range_uri)

    def _add_attacks(self, graph: KnowledgeGraph, catalog: DomainCatalog) -> None:
        for attack in catalog.attacks:
            uri = ATTACK_NS + attack.name
            graph.add_type(uri, "Attack")
            vuln_uri = VULN_NS + attack.cve
            graph.add_type(vuln_uri, "Vulnerability")
            self._assert(graph, uri, "Attack", "exploits", vuln_uri)
            self._assert(graph, uri, "Attack", "manifestsAs", EVENT_NS + attack.event.name)
            for protocol in attack.event.protocols:
                self._assert(graph, uri, "Attack", "usesProtocol", PROTOCOL_NS + protocol)
            if attack.event.destination_port_range is not None:
                range_uri = f"{PORTRANGE_NS}{attack.event.name}-dst"
                self._assert(graph, uri, "Attack", "targetsPortRange", range_uri)


def build_network_kg(
    catalog: DomainCatalog, ontology: Ontology | None = None
) -> KnowledgeGraph:
    """Convenience wrapper: build the NetworkKG for ``catalog``."""
    return NetworkKGBuilder(ontology=ontology).build(catalog)
