"""A triple-store knowledge graph over networkx.

Entities are string URIs in a ``namespace:localname`` convention (for
example ``event:MotionDetected`` or ``proto:TCP``); literals are plain
Python scalars.  The store supports the small query surface the reasoner
needs: pattern matching over (subject, predicate, object), neighbourhood
queries and type lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import networkx as nx

__all__ = ["Triple", "KnowledgeGraph"]

RDF_TYPE = "rdf:type"


@dataclass(frozen=True)
class Triple:
    """A (subject, predicate, object) assertion."""

    subject: str
    predicate: str
    object: object

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))


class KnowledgeGraph:
    """A multigraph-backed triple store with simple pattern queries."""

    def __init__(self, name: str = "NetworkKG") -> None:
        self.name = name
        self._graph = nx.MultiDiGraph(name=name)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_triple(self, subject: str, predicate: str, obj: object) -> Triple:
        """Assert a triple; literals are stored as node attributes on edges."""
        if not subject or not predicate:
            raise ValueError("subject and predicate must be non-empty")
        self._graph.add_node(subject)
        # Literals become their repr-stable string node plus a literal flag.
        object_key = self._object_key(obj)
        if object_key not in self._graph:
            self._graph.add_node(object_key, literal=not isinstance(obj, str), value=obj)
        self._graph.add_edge(subject, object_key, key=predicate, predicate=predicate)
        return Triple(subject, predicate, obj)

    def add_type(self, subject: str, class_name: str) -> Triple:
        """Assert ``subject rdf:type class_name``."""
        return self.add_triple(subject, RDF_TYPE, class_name)

    def add_triples(self, triples: Iterable[tuple[str, str, object]]) -> None:
        for subject, predicate, obj in triples:
            self.add_triple(subject, predicate, obj)

    @staticmethod
    def _object_key(obj: object) -> str:
        if isinstance(obj, str):
            return obj
        return f"literal:{type(obj).__name__}:{obj!r}"

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._graph.number_of_edges()

    @property
    def num_entities(self) -> int:
        return self._graph.number_of_nodes()

    def triples(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        obj: object | None = None,
    ) -> Iterator[Triple]:
        """Iterate triples matching the given pattern (``None`` = wildcard)."""
        if subject is not None and subject not in self._graph:
            return
        edges = (
            self._graph.out_edges(subject, keys=True, data=True)
            if subject is not None
            else self._graph.edges(keys=True, data=True)
        )
        object_key = self._object_key(obj) if obj is not None else None
        for s, o_key, key, data in edges:
            if predicate is not None and key != predicate:
                continue
            if object_key is not None and o_key != object_key:
                continue
            node_data = self._graph.nodes[o_key]
            value = node_data.get("value", o_key)
            yield Triple(s, key, value)

    def objects(self, subject: str, predicate: str) -> list:
        """All objects ``o`` with ``(subject, predicate, o)`` asserted."""
        return [t.object for t in self.triples(subject=subject, predicate=predicate)]

    def subjects(self, predicate: str, obj: object) -> list[str]:
        """All subjects ``s`` with ``(s, predicate, obj)`` asserted."""
        return [t.subject for t in self.triples(predicate=predicate, obj=obj)]

    def has_triple(self, subject: str, predicate: str, obj: object) -> bool:
        return any(True for _ in self.triples(subject, predicate, obj))

    def entities_of_type(self, class_name: str) -> list[str]:
        """All subjects asserted to be of ``class_name``."""
        return self.subjects(RDF_TYPE, class_name)

    def types_of(self, subject: str) -> list[str]:
        return [str(o) for o in self.objects(subject, RDF_TYPE)]

    def predicates(self) -> set[str]:
        return {key for _, _, key in self._graph.edges(keys=True)}

    def neighbors(self, subject: str) -> list[str]:
        """Entities directly reachable from ``subject`` (any predicate)."""
        if subject not in self._graph:
            return []
        return list(self._graph.successors(subject))

    def degree(self, subject: str) -> int:
        if subject not in self._graph:
            return 0
        return self._graph.degree(subject)

    def to_networkx(self) -> nx.MultiDiGraph:
        """The underlying networkx graph (a live reference, not a copy)."""
        return self._graph

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_text(self) -> str:
        """Serialise to a simple tab-separated triple format."""
        lines = []
        for triple in self.triples():
            obj = triple.object
            marker = "L" if not isinstance(obj, str) else "R"
            lines.append(f"{triple.subject}\t{triple.predicate}\t{marker}\t{obj}")
        return "\n".join(lines)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_text() + "\n")

    @classmethod
    def from_text(cls, text: str, name: str = "NetworkKG") -> "KnowledgeGraph":
        graph = cls(name=name)
        for line in text.strip().splitlines():
            if not line.strip():
                continue
            parts = line.split("\t")
            if len(parts) != 4:
                raise ValueError(f"malformed triple line: {line!r}")
            subject, predicate, marker, raw = parts
            obj: object = raw
            if marker == "L":
                try:
                    obj = int(raw)
                except ValueError:
                    try:
                        obj = float(raw)
                    except ValueError:
                        obj = raw
            graph.add_triple(subject, predicate, obj)
        return graph

    @classmethod
    def load(cls, path: str | Path, name: str = "NetworkKG") -> "KnowledgeGraph":
        return cls.from_text(Path(path).read_text(), name=name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KnowledgeGraph({self.name!r}, {self.num_entities} entities, {len(self)} triples)"
