"""Reasoning over the NetworkKG.

:class:`KGReasoner` answers the queries the paper's knowledge-guided
discriminator needs (section III-B): given a (partial) record, is the
attribute combination valid, and which values of a given attribute are
admissible?  The reasoner works purely from the knowledge-graph triples the
builder produced -- it never sees the original catalog -- and compiles them
into per-event constraint tables the first time it is used.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.knowledge.builder import (
    EVENT_NS,
    IP_NS,
    PORT_NS,
    PROTOCOL_NS,
)
from repro.knowledge.catalog import DEFAULT_FIELD_MAP
from repro.knowledge.graph import KnowledgeGraph
from repro.knowledge.rules import ImplicationRule, MembershipRule, RuleSet, RuleViolation

__all__ = ["EventConstraints", "KGReasoner"]


def _strip(uri: object, namespace: str) -> str:
    text = str(uri)
    if text.startswith(namespace):
        return text[len(namespace):]
    return text


def _numeric_column(values) -> tuple[np.ndarray, np.ndarray]:
    """``(floats, parseable)`` for a possibly non-numeric column.

    Mirrors the record path's ``int(float(value))`` contract: anything that
    fails to parse (or is non-finite) is flagged unparseable and treated as
    a violation wherever a port check applies.
    """
    values = np.asarray(values)
    try:
        floats = values.astype(np.float64)
    except (TypeError, ValueError):
        floats = np.full(len(values), np.nan)
        for i, value in enumerate(values):
            try:
                floats[i] = float(value)
            except (TypeError, ValueError):
                pass
    return floats, np.isfinite(floats)


@dataclass
class EventConstraints:
    """Compiled constraints for one event type."""

    name: str
    kind: str = "benign"
    protocols: set[str] = field(default_factory=set)
    source_ips: set[str] = field(default_factory=set)
    destination_ips: set[str] = field(default_factory=set)
    destination_ports: set[int] = field(default_factory=set)
    destination_port_range: tuple[int, int] | None = None
    source_port_range: tuple[int, int] | None = None

    def destination_port_valid(self, port: int) -> bool:
        """A destination port is valid if it matches the explicit set or range."""
        if not self.destination_ports and self.destination_port_range is None:
            return True
        if port in self.destination_ports:
            return True
        if self.destination_port_range is not None:
            low, high = self.destination_port_range
            return low <= port <= high
        return False

    def source_port_valid(self, port: int) -> bool:
        if self.source_port_range is None:
            return True
        low, high = self.source_port_range
        return low <= port <= high


class KGReasoner:
    """Validity queries over a NetworkKG."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        field_map: dict[str, str] | None = None,
    ) -> None:
        self.graph = graph
        self.field_map = dict(field_map) if field_map is not None else dict(DEFAULT_FIELD_MAP)
        self._constraints: dict[str, EventConstraints] = {}
        self._compile()
        # Lazily-built lookup registries for the batched validity mask; the
        # constraint set is immutable after _compile(), so cached lookups
        # never go stale.  Guarded by a lock because federated thread
        # executors may share one reasoner across sites.
        self._batch_tables: dict | None = None
        self._batch_lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Locks cannot be pickled and the batch registries are a pure cache;
        # both are rebuilt lazily on the other side.
        state = self.__dict__.copy()
        state["_batch_tables"] = None
        state["_batch_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._batch_tables = None
        self._batch_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Compilation from triples
    # ------------------------------------------------------------------ #
    def _compile(self) -> None:
        for event_uri in self.graph.entities_of_type("EventType"):
            name = _strip(event_uri, EVENT_NS)
            constraints = EventConstraints(name=name)
            kinds = self.graph.objects(event_uri, "hasEventKind")
            if kinds:
                constraints.kind = str(kinds[0])
            constraints.protocols = {
                _strip(obj, PROTOCOL_NS) for obj in self.graph.objects(event_uri, "allowsProtocol")
            }
            # Source IPs come from the devices allowed to originate the event.
            for device_uri in self.graph.objects(event_uri, "allowsSourceDevice"):
                for ip_uri in self.graph.objects(str(device_uri), "hasIPAddress"):
                    constraints.source_ips.add(_strip(ip_uri, IP_NS))
            # Destination IPs: explicit IPs plus resolved domains.
            for ip_uri in self.graph.objects(event_uri, "allowsDestinationIP"):
                constraints.destination_ips.add(_strip(ip_uri, IP_NS))
            for domain_uri in self.graph.objects(event_uri, "allowsDestinationDomain"):
                for ip_uri in self.graph.objects(str(domain_uri), "resolvesTo"):
                    constraints.destination_ips.add(_strip(ip_uri, IP_NS))
            # Destination ports: explicit ports plus an optional range.
            for port_uri in self.graph.objects(event_uri, "allowsDestinationPort"):
                numbers = self.graph.objects(str(port_uri), "portNumber")
                if numbers:
                    constraints.destination_ports.add(int(numbers[0]))
                else:
                    constraints.destination_ports.add(int(_strip(port_uri, PORT_NS)))
            constraints.destination_port_range = self._read_range(
                event_uri, "allowsDestinationPortRange"
            )
            constraints.source_port_range = self._read_range(event_uri, "allowsSourcePortRange")
            self._constraints[name] = constraints

    def _read_range(self, event_uri: str, predicate: str) -> tuple[int, int] | None:
        ranges = self.graph.objects(event_uri, predicate)
        if not ranges:
            return None
        range_uri = str(ranges[0])
        lows = self.graph.objects(range_uri, "rangeLow")
        highs = self.graph.objects(range_uri, "rangeHigh")
        if not lows or not highs:
            return None
        return int(lows[0]), int(highs[0])

    # ------------------------------------------------------------------ #
    # Basic lookups
    # ------------------------------------------------------------------ #
    def event_names(self) -> list[str]:
        return sorted(self._constraints)

    def has_event(self, event_name: str) -> bool:
        return event_name in self._constraints

    def constraints(self, event_name: str) -> EventConstraints:
        if event_name not in self._constraints:
            raise KeyError(f"unknown event type {event_name!r}")
        return self._constraints[event_name]

    def event_kind(self, event_name: str) -> str:
        return self.constraints(event_name).kind

    def attack_events(self) -> list[str]:
        return [name for name, c in self._constraints.items() if c.kind == "attack"]

    def benign_events(self) -> list[str]:
        return [name for name, c in self._constraints.items() if c.kind == "benign"]

    def valid_protocols(self, event_name: str) -> set[str]:
        return set(self.constraints(event_name).protocols)

    def valid_source_ips(self, event_name: str) -> set[str]:
        return set(self.constraints(event_name).source_ips)

    def valid_destination_ips(self, event_name: str) -> set[str]:
        return set(self.constraints(event_name).destination_ips)

    def valid_destination_ports(self, event_name: str) -> set[int]:
        return set(self.constraints(event_name).destination_ports)

    def destination_port_range(self, event_name: str) -> tuple[int, int] | None:
        return self.constraints(event_name).destination_port_range

    def source_port_range(self, event_name: str) -> tuple[int, int] | None:
        return self.constraints(event_name).source_port_range

    # ------------------------------------------------------------------ #
    # Validity queries (the paper's "Q" query)
    # ------------------------------------------------------------------ #
    def violations(self, record: dict) -> list[RuleViolation]:
        """All constraint violations of a record, using the field map."""
        fm = self.field_map
        event_column = fm["event_type"]
        violations: list[RuleViolation] = []
        event_name = record.get(event_column)
        if event_name is None:
            return violations
        if event_name not in self._constraints:
            return [
                RuleViolation(
                    rule_name="known-event",
                    attribute=event_column,
                    value=event_name,
                    reason="event type is not described in the knowledge graph",
                )
            ]
        constraints = self._constraints[event_name]

        def _check_membership(role: str, allowed: set, rule_name: str) -> None:
            column = fm[role]
            if not allowed or column not in record:
                return
            value = record[column]
            if value not in allowed:
                violations.append(
                    RuleViolation(
                        rule_name=rule_name,
                        attribute=column,
                        value=value,
                        reason=f"invalid for event {event_name!r}",
                    )
                )

        _check_membership("protocol", constraints.protocols, "protocol")
        _check_membership("source_ip", constraints.source_ips, "source-ip")
        _check_membership("destination_ip", constraints.destination_ips, "destination-ip")

        dst_port_column = fm["destination_port"]
        if dst_port_column in record:
            try:
                port = int(float(record[dst_port_column]))
                if not constraints.destination_port_valid(port):
                    violations.append(
                        RuleViolation(
                            rule_name="destination-port",
                            attribute=dst_port_column,
                            value=port,
                            reason=f"port invalid for event {event_name!r}",
                        )
                    )
            except (TypeError, ValueError):
                violations.append(
                    RuleViolation(
                        rule_name="destination-port",
                        attribute=dst_port_column,
                        value=record[dst_port_column],
                        reason="port is not numeric",
                    )
                )
        src_port_column = fm["source_port"]
        if src_port_column in record and constraints.source_port_range is not None:
            try:
                port = int(float(record[src_port_column]))
                if not constraints.source_port_valid(port):
                    violations.append(
                        RuleViolation(
                            rule_name="source-port",
                            attribute=src_port_column,
                            value=port,
                            reason=f"port invalid for event {event_name!r}",
                        )
                    )
            except (TypeError, ValueError):
                violations.append(
                    RuleViolation(
                        rule_name="source-port",
                        attribute=src_port_column,
                        value=record[src_port_column],
                        reason="port is not numeric",
                    )
                )
        return violations

    def is_valid(self, record: dict) -> bool:
        """True when the record violates no knowledge-graph constraint."""
        return not self.violations(record)

    # ------------------------------------------------------------------ #
    # Batched validity (the vectorized form of the "Q" query)
    # ------------------------------------------------------------------ #
    _MEMBERSHIP_ATTRS = {
        "protocol": "protocols",
        "source_ip": "source_ips",
        "destination_ip": "destination_ips",
    }

    def _batch_registries(self) -> dict:
        """Lazily-built persistent lookup state for :meth:`validity_mask`.

        Value -> code registries grow monotonically across calls (first-seen
        order), so the per-(event, role) allowed-value bitmaps and the sorted
        per-event port arrays are computed once and reused every step instead
        of being rebuilt per batch.
        """
        with self._batch_lock:
            if self._batch_tables is None:
                self._batch_tables = {
                    "event_codes": {},  # event value -> code
                    "event_info": [],   # code -> EventConstraints | "skip" | None
                    "role_codes": {role: {} for role in self._MEMBERSHIP_ATTRS},
                    "allowed": {},      # (role, event_code) -> bool lookup array
                    "dst_ports": {      # event name -> sorted unique port array
                        name: np.array(sorted(c.destination_ports), dtype=np.int64)
                        for name, c in self._constraints.items()
                    },
                }
        return self._batch_tables

    def _allowed_lookup(self, tables: dict, role: str, event_id: int, allowed: set) -> np.ndarray:
        """Bool array mapping a role's value codes to set membership."""
        registry = tables["role_codes"][role]
        lookup = tables["allowed"].get((role, event_id))
        if lookup is None or lookup.size < len(registry):
            values = list(registry)  # insertion order == code order
            lookup = np.fromiter((v in allowed for v in values), dtype=bool, count=len(values))
            tables["allowed"][(role, event_id)] = lookup
        return lookup

    def validity_mask(self, table_or_columns) -> np.ndarray:
        """Per-row validity of a whole table as one boolean array.

        Accepts a :class:`~repro.tabular.table.Table` or a ``{column:
        array}`` mapping.  Rows are grouped by event type and every
        constraint (protocol / IP memberships, port sets and ranges) is
        checked with batched numpy operations, so the cost is a few C passes
        per event instead of one Python ``violations()`` call per row.  The
        semantics match :meth:`is_valid` row for row.

        Because the constraint tables are immutable, the value -> code
        registries and per-event allowed-value lookups live on the reasoner
        and persist across calls: in steady state each call costs one
        registry-mapping pass per constrained column plus a few small indexed
        reads per event, with no per-batch set scans or ``np.isin`` calls.
        """
        if isinstance(table_or_columns, Mapping):
            names = list(table_or_columns.keys())
            get_column = table_or_columns.__getitem__
            n_rows = len(table_or_columns[names[0]]) if names else 0
        else:
            names = list(table_or_columns.schema.names)
            get_column = table_or_columns.column
            n_rows = table_or_columns.n_rows

        fm = self.field_map
        event_column = fm["event_type"]
        valid = np.ones(n_rows, dtype=bool)
        if event_column not in names or n_rows == 0:
            # No event attribute: nothing is constrained (matches the
            # record path, where a missing event type yields no violations).
            return valid

        tables = self._batch_registries()
        event_registry = tables["event_codes"]
        ev_setdefault = event_registry.setdefault
        event_codes = np.fromiter(
            (ev_setdefault(v, len(event_registry)) for v in get_column(event_column)),
            dtype=np.int64,
            count=n_rows,
        )
        event_info = tables["event_info"]
        if len(event_registry) > len(event_info):
            with self._batch_lock:
                for value, _code in list(event_registry.items())[len(event_info):]:
                    if value is None:
                        event_info.append("skip")
                    else:
                        event_info.append(self._constraints.get(value))

        membership: dict[str, np.ndarray] = {}
        for role in self._MEMBERSHIP_ATTRS:
            column = fm.get(role)
            if column in names:
                registry = tables["role_codes"][role]
                rsetdefault = registry.setdefault
                membership[role] = np.fromiter(
                    (rsetdefault(v, len(registry)) for v in get_column(column)),
                    dtype=np.int64,
                    count=n_rows,
                )

        numeric: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for role in ("destination_port", "source_port"):
            column = fm.get(role)
            if column in names:
                numeric[role] = _numeric_column(get_column(column))

        for event_id in np.unique(event_codes):
            rows = np.nonzero(event_codes == event_id)[0]
            constraints = event_info[event_id]
            if constraints == "skip":  # event value was None
                continue
            if constraints is None:
                valid[rows] = False
                continue
            for role, codes in membership.items():
                allowed = getattr(constraints, self._MEMBERSHIP_ATTRS[role])
                if not allowed:
                    continue
                lookup = self._allowed_lookup(tables, role, int(event_id), allowed)
                valid[rows] &= lookup[codes[rows]]
            if "destination_port" in numeric:
                ports, parseable = numeric["destination_port"]
                ok = parseable[rows].copy()
                here = np.trunc(ports[rows][ok]).astype(np.int64)
                if constraints.destination_ports or constraints.destination_port_range is not None:
                    # Sorted-array membership == np.isin on the same set.
                    allowed_ports = tables["dst_ports"][constraints.name]
                    if allowed_ports.size:
                        idx = np.minimum(
                            np.searchsorted(allowed_ports, here), allowed_ports.size - 1
                        )
                        port_ok = allowed_ports[idx] == here
                    else:
                        port_ok = np.zeros(here.size, dtype=bool)
                    if constraints.destination_port_range is not None:
                        low, high = constraints.destination_port_range
                        port_ok |= (here >= low) & (here <= high)
                    ok[np.nonzero(ok)[0][~port_ok]] = False
                valid[rows] &= ok
            if "source_port" in numeric and constraints.source_port_range is not None:
                ports, parseable = numeric["source_port"]
                ok = parseable[rows].copy()
                here = np.trunc(ports[rows][ok]).astype(np.int64)
                low, high = constraints.source_port_range
                in_range = (here >= low) & (here <= high)
                ok[np.nonzero(ok)[0][~in_range]] = False
                valid[rows] &= ok
        return valid

    def valid_values(self, role: str, event_name: str) -> set:
        """Admissible values of a semantic role for a given event type.

        Roles are the keys of the field map (``protocol``, ``source_ip``,
        ``destination_ip``, ``destination_port``).  An empty set means the
        knowledge graph does not constrain that role for this event.
        """
        constraints = self.constraints(event_name)
        if role == "protocol":
            return set(constraints.protocols)
        if role == "source_ip":
            return set(constraints.source_ips)
        if role == "destination_ip":
            return set(constraints.destination_ips)
        if role == "destination_port":
            ports = set(constraints.destination_ports)
            if constraints.destination_port_range is not None:
                low, high = constraints.destination_port_range
                ports.update(range(low, high + 1))
            return ports
        raise ValueError(f"unknown role {role!r}")

    def sample_valid_record(self, event_name: str, rng) -> dict:
        """Draw one attribute combination the knowledge graph deems valid.

        Used by the knowledge-guided discriminator to provide positive
        (valid) examples for condition vectors, per section III-B-1.
        """
        constraints = self.constraints(event_name)
        fm = self.field_map
        record: dict = {fm["event_type"]: event_name}
        if constraints.protocols:
            record[fm["protocol"]] = sorted(constraints.protocols)[
                rng.integers(0, len(constraints.protocols))
            ]
        if constraints.source_ips:
            record[fm["source_ip"]] = sorted(constraints.source_ips)[
                rng.integers(0, len(constraints.source_ips))
            ]
        if constraints.destination_ips:
            record[fm["destination_ip"]] = sorted(constraints.destination_ips)[
                rng.integers(0, len(constraints.destination_ips))
            ]
        if constraints.destination_ports or constraints.destination_port_range is not None:
            if constraints.destination_ports and (
                constraints.destination_port_range is None or rng.uniform() < 0.5
            ):
                ports = sorted(constraints.destination_ports)
                record[fm["destination_port"]] = ports[rng.integers(0, len(ports))]
            else:
                low, high = constraints.destination_port_range
                record[fm["destination_port"]] = int(rng.integers(low, high + 1))
        if constraints.source_port_range is not None:
            low, high = constraints.source_port_range
            record[fm["source_port"]] = int(rng.integers(low, high + 1))
        return record

    # ------------------------------------------------------------------ #
    # Rule-set compilation
    # ------------------------------------------------------------------ #
    def to_rule_set(self) -> RuleSet:
        """Compile the per-event constraints into a declarative rule set."""
        fm = self.field_map
        event_column = fm["event_type"]
        rules = RuleSet(name=f"rules[{self.graph.name}]")
        rules.add(
            MembershipRule(
                attribute=event_column,
                allowed=frozenset(self._constraints),
                name="known-event",
            )
        )
        for name, constraints in self._constraints.items():
            memberships: dict[str, frozenset] = {}
            ranges: dict[str, tuple[float, float]] = {}
            if constraints.protocols:
                memberships[fm["protocol"]] = frozenset(constraints.protocols)
            if constraints.source_ips:
                memberships[fm["source_ip"]] = frozenset(constraints.source_ips)
            if constraints.destination_ips:
                memberships[fm["destination_ip"]] = frozenset(constraints.destination_ips)
            if constraints.destination_port_range is not None and not constraints.destination_ports:
                ranges[fm["destination_port"]] = constraints.destination_port_range
            elif constraints.destination_ports and constraints.destination_port_range is None:
                memberships[fm["destination_port"]] = frozenset(constraints.destination_ports)
            if constraints.source_port_range is not None:
                ranges[fm["source_port"]] = constraints.source_port_range
            if memberships or ranges:
                rules.add(
                    ImplicationRule(
                        when={event_column: name},
                        memberships=memberships,
                        ranges=ranges,
                        name=f"event[{name}]",
                    )
                )
        return rules
