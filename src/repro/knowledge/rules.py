"""Declarative attribute-constraint rules.

Rules capture the "strict domain rules" the paper says observed data alone
cannot teach a GAN: which protocols an event type may use, which destination
ports an attack targets, which devices may originate a given event.  The
reasoner compiles the NetworkKG into a :class:`RuleSet`; the knowledge-guided
discriminator and the evaluation harness both consume rule sets.

Every rule has an optional ``when`` guard (a ``{column: value}`` pattern);
the rule only constrains records matching the guard.  A record is a plain
``{column: value}`` dict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "RuleViolation",
    "Rule",
    "MembershipRule",
    "RangeRule",
    "ImplicationRule",
    "RuleSet",
]


@dataclass(frozen=True)
class RuleViolation:
    """A single rule violation for a single record."""

    rule_name: str
    attribute: str
    value: object
    reason: str


def _matches(record: dict, when: dict | None) -> bool:
    if not when:
        return True
    for column, expected in when.items():
        if column not in record:
            return False
        actual = record[column]
        if isinstance(expected, (set, frozenset, tuple, list)):
            if actual not in expected:
                return False
        elif actual != expected:
            return False
    return True


class Rule:
    """Base class for rules."""

    name: str = "rule"
    when: dict | None = None

    def applies_to(self, record: dict) -> bool:
        return _matches(record, self.when)

    def check(self, record: dict) -> list[RuleViolation]:
        raise NotImplementedError


@dataclass
class MembershipRule(Rule):
    """``attribute`` must take a value from ``allowed`` when the guard matches."""

    attribute: str
    allowed: frozenset
    when: dict | None = None
    name: str = "membership"

    def __post_init__(self) -> None:
        self.allowed = frozenset(self.allowed)
        if not self.allowed:
            raise ValueError(f"rule {self.name!r}: allowed set must not be empty")

    def check(self, record: dict) -> list[RuleViolation]:
        if not self.applies_to(record) or self.attribute not in record:
            return []
        value = record[self.attribute]
        if value in self.allowed:
            return []
        return [
            RuleViolation(
                rule_name=self.name,
                attribute=self.attribute,
                value=value,
                reason=f"{value!r} not in allowed set of {len(self.allowed)} values",
            )
        ]


@dataclass
class RangeRule(Rule):
    """``attribute`` must lie in ``[low, high]`` when the guard matches."""

    attribute: str
    low: float
    high: float
    when: dict | None = None
    name: str = "range"

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"rule {self.name!r}: low > high")

    def check(self, record: dict) -> list[RuleViolation]:
        if not self.applies_to(record) or self.attribute not in record:
            return []
        try:
            value = float(record[self.attribute])
        except (TypeError, ValueError):
            return [
                RuleViolation(
                    rule_name=self.name,
                    attribute=self.attribute,
                    value=record[self.attribute],
                    reason="value is not numeric",
                )
            ]
        if self.low <= value <= self.high:
            return []
        return [
            RuleViolation(
                rule_name=self.name,
                attribute=self.attribute,
                value=value,
                reason=f"{value} outside [{self.low}, {self.high}]",
            )
        ]


@dataclass
class ImplicationRule(Rule):
    """A guard implying several membership and/or range constraints at once.

    ``memberships`` maps attribute -> allowed value set; ``ranges`` maps
    attribute -> (low, high).  This is the general form the KG compiler
    emits: "IF event_type == X THEN protocol in {...} AND dst_port in [a, b]".
    """

    when: dict
    memberships: dict[str, frozenset] = field(default_factory=dict)
    ranges: dict[str, tuple[float, float]] = field(default_factory=dict)
    name: str = "implication"

    def __post_init__(self) -> None:
        if not self.when:
            raise ValueError("ImplicationRule requires a non-empty guard")
        self.memberships = {k: frozenset(v) for k, v in self.memberships.items()}
        for attribute, (low, high) in self.ranges.items():
            if low > high:
                raise ValueError(f"rule {self.name!r}: range for {attribute!r} has low > high")

    def check(self, record: dict) -> list[RuleViolation]:
        if not self.applies_to(record):
            return []
        violations: list[RuleViolation] = []
        for attribute, allowed in self.memberships.items():
            if attribute not in record:
                continue
            value = record[attribute]
            if value not in allowed:
                violations.append(
                    RuleViolation(
                        rule_name=self.name,
                        attribute=attribute,
                        value=value,
                        reason=f"{value!r} not allowed given {self.when}",
                    )
                )
        for attribute, (low, high) in self.ranges.items():
            if attribute not in record:
                continue
            try:
                value = float(record[attribute])
            except (TypeError, ValueError):
                violations.append(
                    RuleViolation(
                        rule_name=self.name,
                        attribute=attribute,
                        value=record[attribute],
                        reason="value is not numeric",
                    )
                )
                continue
            if not low <= value <= high:
                violations.append(
                    RuleViolation(
                        rule_name=self.name,
                        attribute=attribute,
                        value=value,
                        reason=f"{value} outside [{low}, {high}] given {self.when}",
                    )
                )
        return violations


class RuleSet:
    """An ordered collection of rules evaluated together."""

    def __init__(self, rules: list[Rule] | None = None, name: str = "ruleset") -> None:
        self.rules: list[Rule] = list(rules) if rules else []
        self.name = name

    def add(self, rule: Rule) -> "RuleSet":
        self.rules.append(rule)
        return self

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def validate(self, record: dict) -> list[RuleViolation]:
        """All violations of ``record`` across every rule."""
        violations: list[RuleViolation] = []
        for rule in self.rules:
            violations.extend(rule.check(record))
        return violations

    def is_valid(self, record: dict) -> bool:
        for rule in self.rules:
            if rule.check(record):
                return False
        return True

    def validity_mask(self, records: list[dict]) -> list[bool]:
        """Per-record validity flags for a batch."""
        return [self.is_valid(record) for record in records]

    def violation_rate(self, records: list[dict]) -> float:
        """Fraction of records violating at least one rule."""
        if not records:
            return 0.0
        invalid = sum(1 for record in records if not self.is_valid(record))
        return invalid / len(records)

    def merge(self, other: "RuleSet") -> "RuleSet":
        return RuleSet(self.rules + other.rules, name=f"{self.name}+{other.name}")
