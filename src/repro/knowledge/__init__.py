"""Knowledge representation: ontology, knowledge graph, rules and reasoning.

The paper grounds KiNETGAN's knowledge-guided discriminator in a Network
Traffic Knowledge Graph (NetworkKG) built on an extension of the Unified
Cybersecurity Ontology (UCO).  This subpackage provides the full pipeline:

* :mod:`repro.knowledge.ontology` -- the UCO-extended ontology (classes such
  as ``NetworkEvent``, ``DomainURL``, properties such as ``hasProtocol``).
* :mod:`repro.knowledge.graph` -- a triple store over ``networkx``.
* :mod:`repro.knowledge.catalog` -- the domain catalog (devices, events,
  attacks and their valid attribute combinations) that datasets publish.
* :mod:`repro.knowledge.builder` -- NetworkKG construction from an ontology
  plus a domain catalog.
* :mod:`repro.knowledge.rules` -- declarative attribute-constraint rules.
* :mod:`repro.knowledge.reasoner` -- validity queries over the NetworkKG
  (is this (event, protocol, IPs, ports) combination valid? which values are
  admissible given a partial assignment?).
* :mod:`repro.knowledge.validator` -- batch validity scoring used by the
  knowledge-guided discriminator (D_KG) and the evaluation harness.
"""

from repro.knowledge.ontology import Ontology, default_network_ontology
from repro.knowledge.graph import KnowledgeGraph, Triple
from repro.knowledge.catalog import (
    AttackSpec,
    DeviceSpec,
    DomainCatalog,
    EventSpec,
)
from repro.knowledge.rules import (
    ImplicationRule,
    MembershipRule,
    RangeRule,
    Rule,
    RuleSet,
    RuleViolation,
)
from repro.knowledge.builder import NetworkKGBuilder, build_network_kg
from repro.knowledge.reasoner import KGReasoner
from repro.knowledge.validator import BatchValidator, ValidityReport

__all__ = [
    "Ontology",
    "default_network_ontology",
    "KnowledgeGraph",
    "Triple",
    "DeviceSpec",
    "EventSpec",
    "AttackSpec",
    "DomainCatalog",
    "Rule",
    "MembershipRule",
    "RangeRule",
    "ImplicationRule",
    "RuleSet",
    "RuleViolation",
    "NetworkKGBuilder",
    "build_network_kg",
    "KGReasoner",
    "BatchValidator",
    "ValidityReport",
]
