"""Model serving: versioned artifacts, a batched sampling service, HTTP.

The training layers produce fitted synthesizers; this package makes them
*durable*, *servable* and *reachable over the network*:

* :mod:`repro.serve.artifact` -- the versioned :class:`ModelArtifact`
  directory format (``manifest.json`` + per-network ``.npz`` weights + the
  transformer / condition-sampler / knowledge state) with
  :func:`save_model` / :func:`load_model` for KiNETGAN and every baseline.
  Format v2 (the default) stores state as a pickle-free ``state.npz``
  (:mod:`repro.serve.codec`) safe to load from untrusted peers; v1
  artifacts (pickled ``state.pkl``) remain loadable.  The contract:
  ``load_model(save_model(m)).sample(n, seed)`` is bit-identical to
  ``m.sample(n, seed)``, in-process and across processes.
* :mod:`repro.serve.service` -- :class:`SamplingService`, which loads
  artifacts into an LRU :class:`ModelRegistry` (optionally warmed in
  parallel over :mod:`repro.runtime` executors), micro-batches concurrent
  ``sample(n, conditions)`` requests into single vectorized generator /
  harden / decode passes, and streams large requests in bounded-memory
  chunks.
* :mod:`repro.serve.server` -- the HTTP front-end:
  :class:`SamplingHTTPServer` over a :class:`ServingPool` of executor
  workers sharing one resident copy of each model, with a bounded
  admission queue (429 + ``Retry-After``), per-artifact concurrency
  limits, request deadlines and graceful drain.  :func:`request_samples`
  is the matching stdlib client.

Exposed on the CLI as ``repro save``, ``repro sample --artifact`` and
``repro serve [--http]``.  Documentation: ``docs/serving.md`` (operator
runbook), ``docs/artifact-format.md`` (on-disk format + trust model).
"""

from repro.serve.artifact import (
    ARTIFACT_FORMAT_VERSION,
    SUPPORTED_FORMAT_VERSIONS,
    ArtifactError,
    ModelArtifact,
    load_model,
    model_registry,
    save_model,
)
from repro.serve.codec import StateCodecError, StateDecodeError, StateEncodeError
from repro.serve.server import (
    SamplingHTTPServer,
    ServingPool,
    fetch_json,
    request_samples,
)
from repro.serve.service import ModelRegistry, SampleRequest, SamplingService

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "SUPPORTED_FORMAT_VERSIONS",
    "ArtifactError",
    "ModelArtifact",
    "ModelRegistry",
    "SampleRequest",
    "SamplingHTTPServer",
    "SamplingService",
    "ServingPool",
    "StateCodecError",
    "StateDecodeError",
    "StateEncodeError",
    "fetch_json",
    "load_model",
    "model_registry",
    "request_samples",
    "save_model",
]
