"""Model serving: versioned artifacts plus a batched sampling service.

The training layers produce fitted synthesizers; this package makes them
*durable* and *servable*:

* :mod:`repro.serve.artifact` -- the versioned :class:`ModelArtifact`
  directory format (``manifest.json`` + per-network ``.npz`` weights +
  the pickled transformer / condition-sampler / knowledge state) with
  :func:`save_model` / :func:`load_model` for KiNETGAN and every baseline.
  The contract: ``load_model(save_model(m)).sample(n, seed)`` is
  bit-identical to ``m.sample(n, seed)``, in-process and across processes.
* :mod:`repro.serve.service` -- :class:`SamplingService`, which loads
  artifacts into an LRU :class:`ModelRegistry` (optionally warmed in
  parallel over :mod:`repro.runtime` executors), micro-batches concurrent
  ``sample(n, conditions)`` requests into single vectorized generator /
  harden / decode passes, and streams large requests in bounded-memory
  chunks.

Exposed on the CLI as ``repro save``, ``repro sample --artifact`` and
``repro serve``.
"""

from repro.serve.artifact import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    ModelArtifact,
    load_model,
    model_registry,
    save_model,
)
from repro.serve.service import ModelRegistry, SampleRequest, SamplingService

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactError",
    "ModelArtifact",
    "ModelRegistry",
    "SampleRequest",
    "SamplingService",
    "load_model",
    "model_registry",
    "save_model",
]
