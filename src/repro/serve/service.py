"""The batched sampling service over model artifacts.

Two pieces:

* :class:`ModelRegistry` -- a thread-safe LRU cache of loaded artifacts.
  ``preload()`` fans the (CPU-heavy) artifact loads out over a
  :mod:`repro.runtime` executor, so warming a many-model registry scales
  with workers.
* :class:`SamplingService` -- the request front-end.  ``sample_many()``
  micro-batches a burst of ``(artifact, n, conditions, seed)`` requests:
  all requests against the same conditional-GAN artifact are coalesced
  into one concatenated generator pass (noise and condition matrices are
  drawn per request from that request's seeded stream, so every row is
  bit-identical to what ``model.sample(n, seed)`` would produce), hardened
  and decoded through the shared :class:`~repro.tabular.segments.
  BlockLayout` machinery in a single batched pass, then split back per
  request.  ``sample_stream()`` yields fixed-size chunks so arbitrarily
  large requests run in bounded memory.  ``submit()`` is the concurrent
  front-end: requests land on a queue and a background batcher drains
  bursts into ``sample_many``.

Determinism contract: a request's rows depend only on (artifact, n,
conditions, seed) -- never on which requests it was batched with, the
chunk size, or the thread that served it.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.core.synthesizer import KiNETGAN
from repro.engine import sampling_rng
from repro.runtime import Executor, resolve_executor
from repro.serve.artifact import load_model
from repro.tabular.table import Table

__all__ = ["SampleRequest", "ModelRegistry", "SamplingService"]


@dataclass(frozen=True)
class SampleRequest:
    """One sampling request against a saved artifact.

    ``seed=None`` uses the model's own sampling seed, exactly like calling
    ``model.sample(n)`` with no rng.  ``conditions`` fixes conditional
    attribute values for every generated row (conditional models only).
    """

    artifact: str
    n: int
    conditions: dict | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("n must be positive")


def _load_artifact_task(task: tuple):
    """Module-level executor work unit: apply an installed loader to a path.

    The loader rides as a :class:`repro.runtime.StateRef` installed once for
    the whole preload batch, so only the ref and the artifact key are
    pickled per task.
    """
    loader_ref, key = task
    return loader_ref.resolve()(key)


class ModelRegistry:
    """Thread-safe LRU cache mapping artifact directories to loaded models."""

    def __init__(
        self,
        capacity: int = 4,
        loader: Callable[[str], object] = load_model,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._loader = loader
        self._models: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.RLock()
        self._loading: dict[str, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _key(artifact: str | Path) -> str:
        return str(Path(artifact).resolve())

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._models)

    def get(self, artifact: str | Path):
        """The loaded model for ``artifact``, loading (and caching) on miss.

        The (potentially slow) artifact load runs *outside* the registry
        lock, so a cold load never stalls concurrent hits on other models;
        concurrent misses on the same key wait for the first loader instead
        of loading twice.
        """
        key = self._key(artifact)
        while True:
            with self._lock:
                if key in self._models:
                    self.hits += 1
                    self._models.move_to_end(key)
                    return self._models[key]
                pending = self._loading.get(key)
                if pending is None:
                    pending = threading.Event()
                    self._loading[key] = pending
                    break
            pending.wait()
        try:
            model = self._loader(key)
        except BaseException:
            with self._lock:
                self._loading.pop(key, None)
            pending.set()
            raise
        with self._lock:
            self.misses += 1
            self._insert(key, model)
            self._loading.pop(key, None)
        pending.set()
        return model

    def put(self, artifact: str | Path, model) -> None:
        """Insert an already-loaded model (used by ``preload``)."""
        with self._lock:
            self._insert(self._key(artifact), model)

    def _insert(self, key: str, model) -> None:
        self._models[key] = model
        self._models.move_to_end(key)
        while len(self._models) > self.capacity:
            self._models.popitem(last=False)
            self.evictions += 1

    def preload(
        self, artifacts: Sequence[str | Path], executor: Executor | str | int | None = None
    ) -> list:
        """Load many artifacts, optionally fanning out over an executor.

        ``executor`` accepts the usual :func:`repro.runtime.resolve_executor`
        specs; executors created here from a spec are closed afterwards,
        caller-supplied :class:`Executor` instances are left running.  The
        loader is installed into the execution plane once (resident state),
        so each task ships only a ref and its artifact key.
        """
        keys = [self._key(path) for path in artifacts]
        owns_executor = not isinstance(executor, Executor)
        resolved = resolve_executor(executor)
        loader_ref = resolved.install(self._loader)
        try:
            models = resolved.map(_load_artifact_task, [(loader_ref, key) for key in keys])
        finally:
            if owns_executor:
                resolved.close()
            else:
                resolved.evict(loader_ref)
        for key, model in zip(keys, models):
            self.put(key, model)
        return models


@dataclass
class ServiceStats:
    """Running counters of the service's work (monotonic, thread-safe)."""

    requests: int = 0
    rows: int = 0
    generator_passes: int = 0
    batches: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, requests: int, rows: int, passes: int) -> None:
        with self._lock:
            self.requests += requests
            self.rows += rows
            self.generator_passes += passes
            self.batches += 1


class SamplingService:
    """Micro-batching sampling front-end over a :class:`ModelRegistry`."""

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        capacity: int = 4,
        max_batch_rows: int = 8192,
        chunk_rows: int = 1024,
        max_pending: int = 64,
        request_timeout: float | None = None,
    ) -> None:
        if max_batch_rows < 1 or chunk_rows < 1:
            raise ValueError("max_batch_rows and chunk_rows must be positive")
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive (or None)")
        self.registry = registry if registry is not None else ModelRegistry(capacity=capacity)
        self.max_batch_rows = max_batch_rows
        self.chunk_rows = chunk_rows
        self.max_pending = max_pending
        #: Per-request deadline of the concurrent front-end: a submitted
        #: request that waited longer than this in the queue fails with
        #: ``TimeoutError`` on *its own* future when the batcher reaches it
        #: (every other request of the batch is served normally).
        self.request_timeout = request_timeout
        self.stats = ServiceStats()
        self._queue: queue.Queue = queue.Queue()
        self._worker: threading.Thread | None = None
        self._worker_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Synchronous API
    # ------------------------------------------------------------------ #
    def sample(
        self,
        artifact: str | Path,
        n: int,
        conditions: dict | None = None,
        seed: int | None = None,
    ) -> Table:
        """Serve a single request (one-element micro-batch)."""
        request = SampleRequest(artifact=str(artifact), n=n, conditions=conditions, seed=seed)
        return self.sample_many([request])[0]

    def sample_many(self, requests: Sequence[SampleRequest]) -> list[Table]:
        """Serve a burst of requests, coalescing per artifact.

        Results come back in request order.  Requests against the same
        conditional-GAN artifact share generator / harden / decode passes;
        other model types are served per request.
        """
        if not requests:
            return []
        groups: OrderedDict[str, list[int]] = OrderedDict()
        for index, request in enumerate(requests):
            groups.setdefault(ModelRegistry._key(request.artifact), []).append(index)
        results: list[Table | None] = [None] * len(requests)
        for key, indices in groups.items():
            model = self.registry.get(key)
            group = [requests[i] for i in indices]
            if isinstance(model, KiNETGAN):
                tables, passes = self._serve_conditional_gan(model, group)
            else:
                tables = [
                    model.sample(
                        request.n,
                        conditions=request.conditions,
                        rng=self._request_rng(model, request),
                    )
                    for request in group
                ]
                passes = len(group)
            for i, table in zip(indices, tables):
                results[i] = table
            self.stats.record(requests=len(group), rows=sum(r.n for r in group), passes=passes)
        return results  # type: ignore[return-value]

    @staticmethod
    def _default_seed(model) -> int:
        """The seed ``model.sample()`` would fall back to with no rng."""
        config = getattr(model, "config", None)
        if config is not None:
            return config.seed
        return getattr(model, "seed", 0)

    @classmethod
    def _request_rng(cls, model, request: SampleRequest) -> np.random.Generator:
        seed = request.seed if request.seed is not None else cls._default_seed(model)
        return sampling_rng(seed)

    def _serve_conditional_gan(
        self, model: KiNETGAN, group: list[SampleRequest]
    ) -> tuple[list[Table], int]:
        """One vectorized pipeline pass for all requests against ``model``.

        Noise and condition matrices are drawn per request from that
        request's own seeded stream (bit-identical to ``model.sample``),
        then concatenated: the generator forward runs in ``max_batch_rows``
        chunks over the stacked inputs, and hardening + decoding run once
        over the whole stack through the shared ``BlockLayout`` passes.
        Row-chunked forward passes are bit-identical to unchunked ones, so
        batching never changes a request's rows.
        """
        noises: list[np.ndarray] = []
        conditions: list[np.ndarray] = []
        for request in group:
            rng = self._request_rng(model, request)
            noise, condition = model.sample_inputs(request.n, request.conditions, rng)
            noises.append(noise)
            conditions.append(condition)
        noise = np.concatenate(noises, axis=0)
        condition = np.concatenate(conditions, axis=0)
        total = noise.shape[0]
        outputs: list[np.ndarray] = []
        passes = 0
        for start in range(0, total, self.max_batch_rows):
            end = min(start + self.max_batch_rows, total)
            outputs.append(model.generator_forward(noise[start:end], condition[start:end]))
            passes += 1
        table = model.decode_matrix(np.concatenate(outputs, axis=0))
        tables: list[Table] = []
        cursor = 0
        for request in group:
            tables.append(table.select_rows(np.arange(cursor, cursor + request.n)))
            cursor += request.n
        return tables, passes

    # ------------------------------------------------------------------ #
    # Streaming API
    # ------------------------------------------------------------------ #
    def sample_stream(
        self,
        artifact: str | Path,
        n: int,
        conditions: dict | None = None,
        seed: int | None = None,
        chunk_rows: int | None = None,
    ) -> Iterator[Table]:
        """Yield a request's rows in chunks of ``chunk_rows``.

        For conditional-GAN artifacts each chunk is generated and decoded
        on demand, so peak memory is bounded by the chunk size regardless
        of ``n``; concatenating the chunks reproduces ``sample(artifact, n,
        conditions, seed)`` bit-for-bit.  Other model types sample once and
        stream row slices.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        chunk_rows = chunk_rows if chunk_rows is not None else self.chunk_rows
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be positive")
        model = self.registry.get(artifact)
        rng = sampling_rng(seed if seed is not None else self._default_seed(model))
        if not isinstance(model, KiNETGAN):
            table = model.sample(n, conditions=conditions, rng=rng)
            for start in range(0, n, chunk_rows):
                yield table.select_rows(np.arange(start, min(start + chunk_rows, n)))
            return
        noise, condition = model.sample_inputs(n, conditions, rng)
        for start in range(0, n, chunk_rows):
            end = min(start + chunk_rows, n)
            raw = model.generator_forward(noise[start:end], condition[start:end])
            self.stats.record(requests=0, rows=end - start, passes=1)
            yield model.decode_matrix(raw)

    # ------------------------------------------------------------------ #
    # Concurrent front-end
    # ------------------------------------------------------------------ #
    def submit(self, request: SampleRequest) -> "Future[Table]":
        """Enqueue a request; the background batcher resolves the future.

        Concurrent submissions that are in the queue together are served as
        one micro-batch through :meth:`sample_many`.  Failure isolation: a
        request that raises (bad conditions, missing artifact) or overruns
        ``request_timeout`` fails only its *own* future -- the batcher
        thread survives and every other request of the batch is served.
        """
        future: "Future[Table]" = Future()
        self._ensure_worker()
        self._queue.put((request, future, time.monotonic()))
        return future

    def _ensure_worker(self) -> None:
        with self._worker_lock:
            if self._worker is None or not self._worker.is_alive():
                self._worker = threading.Thread(
                    target=self._batch_loop, name="sampling-service", daemon=True
                )
                self._worker.start()

    def _batch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            batch = [item]
            while len(batch) < self.max_pending:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is None:
                    self._serve_batch(batch)
                    return
                batch.append(extra)
            self._serve_batch(batch)

    def _serve_batch(self, batch: list) -> None:
        # Claim every future first: a future cancelled while queued reports
        # False here and is dropped, and a claimed future can no longer be
        # cancelled, so the set_result/set_exception calls below cannot
        # raise InvalidStateError and kill the batcher thread.
        live = []
        for request, future, enqueued in batch:
            if not future.set_running_or_notify_cancel():
                continue
            waited = time.monotonic() - enqueued
            if self.request_timeout is not None and waited > self.request_timeout:
                future.set_exception(
                    TimeoutError(
                        f"request queued {waited:.3f}s, past its "
                        f"{self.request_timeout}s deadline"
                    )
                )
                continue
            live.append((request, future))
        if not live:
            return
        try:
            tables = self.sample_many([request for request, _future in live])
        except Exception:
            # One poisoned request must not take the batch (or the batcher)
            # down with it: re-serve each request individually so only the
            # offending request's future carries the exception.
            for request, future in live:
                try:
                    table = self.sample_many([request])[0]
                except Exception as error:
                    future.set_exception(error)
                else:
                    future.set_result(table)
            return
        for (_request, future), table in zip(live, tables):
            future.set_result(table)

    def close(self) -> None:
        """Stop the background batcher (idempotent; restartable)."""
        with self._worker_lock:
            worker = self._worker
            self._worker = None
        if worker is not None and worker.is_alive():
            self._queue.put(None)
            worker.join(timeout=10.0)

    def __enter__(self) -> "SamplingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def warm(
        self,
        artifacts: Iterable[str | Path],
        executor: Executor | str | int | None = None,
    ) -> None:
        """Preload artifacts into the registry (see ``ModelRegistry.preload``)."""
        self.registry.preload(list(artifacts), executor=executor)
