"""Versioned model artifacts: durable, reloadable fitted synthesizers.

A :class:`ModelArtifact` is a single directory:

* ``manifest.json`` -- format version, model class, human-readable config
  summary, fit metadata supplied by the caller, and the file inventory;
* one ``<name>.npz`` per network (via the engine's checkpoint machinery,
  so the weight files are byte-compatible with training checkpoints);
* ``state.pkl`` -- the model's :meth:`~repro.core.base.Synthesizer.
  artifact_state` blob: transformer encoders, the condition sampler's
  integer-code tables, and the knowledge-graph reasoner.

The headline invariant (enforced by ``tests/serve/test_artifacts.py``,
including across processes): for every registered model class,
``load_model(save_model(m)).sample(n, seed)`` is bit-identical to
``m.sample(n, seed)``.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass
from pathlib import Path

from repro._version import __version__
from repro.core.base import Synthesizer
from repro.engine.checkpoint import CheckpointError, load_networks, save_networks

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "MANIFEST_NAME",
    "STATE_NAME",
    "ArtifactError",
    "ModelArtifact",
    "model_registry",
    "save_model",
    "load_model",
]

#: Bumped when the on-disk artifact layout changes incompatibly.
ARTIFACT_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
STATE_NAME = "state.pkl"


class ArtifactError(RuntimeError):
    """A model artifact is missing, incomplete or incompatible."""


def model_registry() -> dict[str, type]:
    """Model classes loadable from an artifact, keyed by class name.

    Resolved lazily so :mod:`repro.serve` stays importable without pulling
    the whole model zoo in at import time.
    """
    from repro.baselines import CTGAN, OCTGAN, PATEGAN, TVAE, IndependentSampler, TableGAN
    from repro.core import KiNETGAN

    return {
        cls.__name__: cls
        for cls in (KiNETGAN, CTGAN, OCTGAN, TVAE, TableGAN, PATEGAN, IndependentSampler)
    }


@dataclass(frozen=True)
class ModelArtifact:
    """A validated on-disk artifact (manifest parsed, files checked)."""

    directory: Path
    manifest: dict

    @property
    def format_version(self) -> int:
        return int(self.manifest["format_version"])

    @property
    def model_class(self) -> str:
        return str(self.manifest["model_class"])

    @property
    def networks(self) -> list[str]:
        return list(self.manifest.get("networks", []))

    @property
    def metadata(self) -> dict:
        return dict(self.manifest.get("metadata", {}))

    @classmethod
    def open(cls, directory: str | Path) -> "ModelArtifact":
        """Parse and validate an artifact directory's manifest."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise ArtifactError(f"no artifact manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as error:
            raise ArtifactError(f"unreadable artifact manifest {manifest_path}: {error}")
        version = manifest.get("format_version")
        if version != ARTIFACT_FORMAT_VERSION:
            raise ArtifactError(
                f"artifact at {directory} has format version {version!r}; this build "
                f"supports version {ARTIFACT_FORMAT_VERSION}"
            )
        if "model_class" not in manifest:
            raise ArtifactError(f"artifact manifest {manifest_path} names no model class")
        if not (directory / manifest.get("state_file", STATE_NAME)).exists():
            raise ArtifactError(f"artifact at {directory} is missing its state file")
        return cls(directory=directory, manifest=manifest)


def save_model(
    model: Synthesizer, directory: str | Path, metadata: dict | None = None
) -> ModelArtifact:
    """Persist a fitted synthesizer as a versioned artifact directory.

    ``metadata`` is caller-supplied fit provenance (dataset name, row count,
    epochs, ...) recorded verbatim in the manifest; it must be
    JSON-serialisable.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    networks = model.artifact_networks()
    save_networks(networks, directory)
    state = model.artifact_state()
    (directory / STATE_NAME).write_bytes(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
    manifest = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "model_class": type(model).__name__,
        "model_name": model.name,
        "repro_version": __version__,
        "networks": sorted(networks),
        "state_file": STATE_NAME,
        "metadata": dict(metadata or {}),
    }
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2) + "\n")
    return ModelArtifact(directory=directory, manifest=manifest)


def load_model(directory: str | Path) -> Synthesizer:
    """Load a fitted synthesizer from an artifact directory.

    Validates the manifest (format version, known model class), restores the
    non-network state through the model's ``restore_state``, then loads the
    network weights through the checkpoint machinery, which reports missing
    or mismatched networks with one clear error.
    """
    artifact = ModelArtifact.open(directory)
    registry = model_registry()
    if artifact.model_class not in registry:
        raise ArtifactError(
            f"artifact at {artifact.directory} was saved by unknown model class "
            f"{artifact.model_class!r}; known classes: {sorted(registry)}"
        )
    state_path = artifact.directory / artifact.manifest.get("state_file", STATE_NAME)
    try:
        state = pickle.loads(state_path.read_bytes())
    except Exception as error:
        raise ArtifactError(f"corrupt artifact state at {state_path}: {error}")
    model = registry[artifact.model_class]()
    model.restore_state(state)
    try:
        load_networks(model.artifact_networks(), artifact.directory)
    except CheckpointError as error:
        raise ArtifactError(str(error))
    return model
