"""Versioned model artifacts: durable, reloadable fitted synthesizers.

A :class:`ModelArtifact` is a single directory:

* ``manifest.json`` -- format version, model class, human-readable config
  summary, fit metadata supplied by the caller, and the file inventory;
* one ``<name>.npz`` per network (via the engine's checkpoint machinery,
  so the weight files are byte-compatible with training checkpoints);
* the model's :meth:`~repro.core.base.Synthesizer.artifact_state` blob:
  transformer encoders, the condition sampler's integer-code tables, and
  the knowledge-graph reasoner.  **Format v2** (the default) stores it as
  a pickle-free ``state.npz`` (:mod:`repro.serve.codec`) that is safe to
  load from untrusted peers; **format v1** stored a pickled ``state.pkl``
  and remains loadable for artifacts written by older builds.

The headline invariant (enforced by ``tests/serve/test_artifacts.py``,
including across processes and for both formats): for every registered
model class, ``load_model(save_model(m)).sample(n, seed)`` is bit-identical
to ``m.sample(n, seed)``.

The on-disk layout, the trust model, and the v1 -> v2 migration story are
specified in ``docs/artifact-format.md``.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro._version import __version__
from repro.core.base import Synthesizer
from repro.engine.checkpoint import CheckpointError, load_networks, save_networks
from repro.serve.codec import StateCodecError, load_state_npz, save_state_npz

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "SUPPORTED_FORMAT_VERSIONS",
    "MANIFEST_NAME",
    "STATE_NAME",
    "STATE_NAME_V1",
    "ArtifactError",
    "ModelArtifact",
    "model_registry",
    "save_model",
    "load_model",
]

#: The format written by :func:`save_model`.  Bumped when the on-disk
#: artifact layout changes incompatibly.
ARTIFACT_FORMAT_VERSION = 2

#: Formats :func:`load_model` can read.  v1 (pickled ``state.pkl``) is
#: kept readable so artifacts written by older builds keep working; new
#: artifacts are always v2 (pickle-free ``state.npz``).
SUPPORTED_FORMAT_VERSIONS = (1, 2)

MANIFEST_NAME = "manifest.json"

#: v2 state file: self-describing npz, loaded with ``allow_pickle=False``.
STATE_NAME = "state.npz"

#: v1 state file: a pickle.  Only ever *read*, never written.
STATE_NAME_V1 = "state.pkl"

_DEFAULT_STATE = {1: STATE_NAME_V1, 2: STATE_NAME}


class ArtifactError(RuntimeError):
    """A model artifact is missing, incomplete or incompatible."""


def model_registry() -> dict[str, type]:
    """Model classes loadable from an artifact, keyed by class name.

    Resolved lazily so :mod:`repro.serve` stays importable without pulling
    the whole model zoo in at import time.
    """
    from repro.baselines import CTGAN, OCTGAN, PATEGAN, TVAE, IndependentSampler, TableGAN
    from repro.core import KiNETGAN

    return {
        cls.__name__: cls
        for cls in (KiNETGAN, CTGAN, OCTGAN, TVAE, TableGAN, PATEGAN, IndependentSampler)
    }


@dataclass(frozen=True)
class ModelArtifact:
    """A validated on-disk artifact (manifest parsed, files checked)."""

    directory: Path
    manifest: dict

    @property
    def format_version(self) -> int:
        return int(self.manifest["format_version"])

    @property
    def model_class(self) -> str:
        return str(self.manifest["model_class"])

    @property
    def networks(self) -> list[str]:
        return list(self.manifest.get("networks", []))

    @property
    def metadata(self) -> dict:
        return dict(self.manifest.get("metadata", {}))

    @property
    def dtype(self) -> str | None:
        """The networks' parameter dtype name, or None for older artifacts.

        Artifacts written before the mixed-precision tier carry no
        ``dtype`` key; they are all float64 and load unchanged.
        """
        value = self.manifest.get("dtype")
        return None if value is None else str(value)

    @property
    def state_path(self) -> Path:
        """Path of the state blob (``state.npz`` for v2, ``state.pkl`` for v1)."""
        default = _DEFAULT_STATE.get(self.format_version, STATE_NAME)
        return self.directory / self.manifest.get("state_file", default)

    @classmethod
    def open(cls, directory: str | Path) -> "ModelArtifact":
        """Parse and validate an artifact directory's manifest.

        Accepts every format in :data:`SUPPORTED_FORMAT_VERSIONS`; rejects
        unknown versions, missing manifests and missing state files with an
        :class:`ArtifactError` naming the problem.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise ArtifactError(f"no artifact manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as error:
            raise ArtifactError(f"unreadable artifact manifest {manifest_path}: {error}")
        version = manifest.get("format_version")
        if version not in SUPPORTED_FORMAT_VERSIONS:
            raise ArtifactError(
                f"artifact at {directory} has format version {version!r}; this build "
                f"supports versions {list(SUPPORTED_FORMAT_VERSIONS)}"
            )
        if "model_class" not in manifest:
            raise ArtifactError(f"artifact manifest {manifest_path} names no model class")
        artifact = cls(directory=directory, manifest=manifest)
        if not artifact.state_path.exists():
            raise ArtifactError(f"artifact at {directory} is missing its state file")
        return artifact


def _network_dtypes(networks: dict) -> set[str]:
    """Dtype names of every network that reports one (normally exactly one)."""
    return {
        np.dtype(network.dtype).name
        for network in networks.values()
        if getattr(network, "dtype", None) is not None
    }


def save_model(
    model: Synthesizer,
    directory: str | Path,
    metadata: dict | None = None,
    *,
    format_version: int = ARTIFACT_FORMAT_VERSION,
) -> ModelArtifact:
    """Persist a fitted synthesizer as a versioned artifact directory.

    Writes format v2 by default: network weights as per-network ``.npz``
    checkpoints plus a pickle-free ``state.npz`` state blob.  Passing
    ``format_version=1`` writes the legacy pickled ``state.pkl`` layout --
    kept only so the compatibility tests can produce v1 artifacts; new
    code should never ask for it.

    ``metadata`` is caller-supplied fit provenance (dataset name, row count,
    epochs, ...) recorded verbatim in the manifest; it must be
    JSON-serialisable.
    """
    if format_version not in SUPPORTED_FORMAT_VERSIONS:
        raise ArtifactError(
            f"cannot write artifact format version {format_version!r}; "
            f"supported versions: {list(SUPPORTED_FORMAT_VERSIONS)}"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    networks = model.artifact_networks()
    save_networks(networks, directory)
    state = model.artifact_state()
    state_file = _DEFAULT_STATE[format_version]
    if format_version == 1:
        (directory / state_file).write_bytes(
            pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        )
    else:
        try:
            save_state_npz(state, directory / state_file)
        except StateCodecError as error:
            raise ArtifactError(f"cannot encode {type(model).__name__} state: {error}")
    manifest = {
        "format_version": format_version,
        "model_class": type(model).__name__,
        "model_name": model.name,
        "repro_version": __version__,
        "networks": sorted(networks),
        "state_file": state_file,
        "metadata": dict(metadata or {}),
    }
    dtypes = _network_dtypes(networks)
    if len(dtypes) == 1:
        manifest["dtype"] = next(iter(dtypes))
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2) + "\n")
    return ModelArtifact(directory=directory, manifest=manifest)


def load_model(directory: str | Path) -> Synthesizer:
    """Load a fitted synthesizer from an artifact directory.

    Validates the manifest (supported format version, known model class),
    restores the non-network state through the model's ``restore_state``,
    then loads the network weights through the checkpoint machinery, which
    reports missing or mismatched networks with one clear error.

    v2 state blobs are decoded with ``allow_pickle=False`` end to end (see
    :mod:`repro.serve.codec`), so loading a v2 artifact received from an
    untrusted peer can fail but never execute code.  v1 blobs are pickles:
    only load them from directories you wrote yourself.
    """
    artifact = ModelArtifact.open(directory)
    registry = model_registry()
    if artifact.model_class not in registry:
        raise ArtifactError(
            f"artifact at {artifact.directory} was saved by unknown model class "
            f"{artifact.model_class!r}; known classes: {sorted(registry)}"
        )
    state_path = artifact.state_path
    if artifact.format_version == 1:
        try:
            state = pickle.loads(state_path.read_bytes())
        except Exception as error:
            raise ArtifactError(f"corrupt artifact state at {state_path}: {error}")
    else:
        try:
            state = load_state_npz(state_path)
        except (StateCodecError, ValueError, OSError) as error:
            raise ArtifactError(f"corrupt artifact state at {state_path}: {error}")
    model = registry[artifact.model_class]()
    model.restore_state(state)
    networks = model.artifact_networks()
    try:
        load_networks(networks, artifact.directory)
    except CheckpointError as error:
        raise ArtifactError(str(error))
    declared = artifact.dtype
    if declared is not None:
        restored = _network_dtypes(networks)
        if restored and restored != {declared}:
            raise ArtifactError(
                f"artifact at {artifact.directory} declares dtype {declared!r} but its "
                f"restored networks run in {sorted(restored)}; the manifest and the "
                "saved configuration disagree"
            )
    return model
