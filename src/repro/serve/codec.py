"""Pickle-free artifact-state encoding (artifact format v2).

Format v1 stored a model's :meth:`~repro.core.base.Synthesizer.
artifact_state` as ``state.pkl`` -- a pickle, which executes arbitrary code
on load and is therefore unsafe for artifacts received from untrusted peers.
Once artifacts are reachable over a socket (:mod:`repro.serve.server`) the
state blob must be *data*, not code.  This module encodes the state tree
into

* a JSON document describing the tree's structure, with every non-JSON
  value replaced by a small tagged node (``{"__kind__": ...}``); and
* a flat ``{key: ndarray}`` mapping holding every numpy array,

and packs both into one ``state.npz`` (arrays natively, the JSON document
as a ``uint8`` byte member), loaded with ``allow_pickle=False``.

Decoding constructs only a **closed set** of types -- JSON scalars,
lists/tuples/dicts, numpy arrays and scalars, :class:`~repro.core.config.
KiNETGANConfig`, :class:`~repro.tabular.schema.TableSchema` /
:class:`~repro.tabular.table.Table`, and a :class:`~repro.knowledge.
reasoner.KGReasoner` rebuilt from the graph's text serialisation -- so a
hostile ``state.npz`` can at worst produce a malformed model, never code
execution.  Encoding is exact: float64 buffers ride the npz binary format
bit-for-bit and JSON floats round-trip through ``repr``, so the
``load(save(m)).sample(n, seed) == m.sample(n, seed)`` invariant holds for
v2 exactly as it did for v1 (``tests/serve/test_artifacts.py``).

Unknown object types fail loudly at *encode* time (``StateEncodeError``
naming the type) instead of silently falling back to pickle; unknown node
tags fail at *decode* time (``StateDecodeError``).  See
``docs/artifact-format.md`` for the on-disk specification.
"""

from __future__ import annotations

import json
from dataclasses import fields
from pathlib import Path

import numpy as np

__all__ = [
    "StateCodecError",
    "StateEncodeError",
    "StateDecodeError",
    "encode_state",
    "decode_state",
    "save_state_npz",
    "load_state_npz",
]

#: npz member holding the JSON structure document (utf-8 bytes).
_DOC_MEMBER = "__state_json__"

#: Tag key marking a non-JSON node in the structure document.
_KIND = "__kind__"


class StateCodecError(ValueError):
    """Base error of the v2 state codec."""


class StateEncodeError(StateCodecError):
    """A state tree contains a type the v2 encoding does not cover."""


class StateDecodeError(StateCodecError):
    """A state document is malformed or names an unsupported node kind."""


def _config_classes() -> dict[str, type]:
    """Model-config dataclasses reconstructible from a v2 state document.

    Resolved lazily (like :func:`repro.serve.artifact.model_registry`) so the
    codec stays importable without the model zoo.
    """
    from repro.core.config import KiNETGANConfig

    return {"KiNETGANConfig": KiNETGANConfig}


# --------------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------------- #
class _Encoder:
    """Walks a state tree, emitting the JSON document and the array table."""

    def __init__(self) -> None:
        self.arrays: dict[str, np.ndarray] = {}

    def _store(self, array: np.ndarray) -> str:
        key = f"a{len(self.arrays)}"
        self.arrays[key] = array
        return key

    def encode(self, value) -> object:
        # bool is an int subclass: check it first so flags stay booleans.
        if value is None or isinstance(value, (bool, int, str)):
            return value
        if isinstance(value, float):
            return value
        if isinstance(value, np.generic):
            # Numpy scalars ride as 0-d npz arrays so dtype survives exactly.
            return {_KIND: "npscalar", "key": self._store(np.asarray(value))}
        if isinstance(value, np.ndarray):
            if value.dtype == object:
                return {_KIND: "objarray", "items": [self.encode(v) for v in value]}
            return {_KIND: "ndarray", "key": self._store(value)}
        if isinstance(value, tuple):
            return {_KIND: "tuple", "items": [self.encode(v) for v in value]}
        if isinstance(value, list):
            return [self.encode(v) for v in value]
        if isinstance(value, dict):
            plain = all(isinstance(k, str) and k != _KIND for k in value)
            if plain:
                return {k: self.encode(v) for k, v in value.items()}
            return {
                _KIND: "dict",
                "items": [[self.encode(k), self.encode(v)] for k, v in value.items()],
            }
        return self._encode_object(value)

    def _encode_object(self, value) -> dict:
        from repro.knowledge.graph import KnowledgeGraph
        from repro.knowledge.reasoner import KGReasoner
        from repro.tabular.schema import ColumnSpec, TableSchema
        from repro.tabular.table import Table

        if type(value) in _config_classes().values():
            return {
                _KIND: "config",
                "class": type(value).__name__,
                "data": {f.name: self.encode(getattr(value, f.name)) for f in fields(value)},
            }
        if isinstance(value, KGReasoner):
            return {
                _KIND: "kg_reasoner",
                "graph": self.encode(value.graph),
                "field_map": self.encode(dict(value.field_map)),
            }
        if isinstance(value, KnowledgeGraph):
            return {_KIND: "knowledge_graph", "name": value.name, "triples": value.to_text()}
        if isinstance(value, Table):
            return {
                _KIND: "table",
                "schema": self.encode(value.schema),
                "columns": {name: self.encode(value.column(name)) for name in value.schema.names},
            }
        if isinstance(value, TableSchema):
            return {_KIND: "schema", "columns": [self.encode(spec) for spec in value]}
        if isinstance(value, ColumnSpec):
            return {
                _KIND: "column_spec",
                "name": value.name,
                "col_kind": value.kind,
                "categories": [self.encode(v) for v in value.categories],
                "minimum": value.minimum,
                "maximum": value.maximum,
                "sensitive": value.sensitive,
            }
        raise StateEncodeError(
            f"cannot encode {type(value).__module__}.{type(value).__qualname__} in the "
            "v2 artifact-state format; teach repro.serve.codec about the type or keep "
            "the value out of artifact_state()"
        )


def encode_state(state) -> tuple[object, dict[str, np.ndarray]]:
    """``(json_document, arrays)`` for a state tree (see module docs)."""
    encoder = _Encoder()
    document = encoder.encode(state)
    return document, encoder.arrays


# --------------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------------- #
class _Decoder:
    """Rebuilds a state tree from the JSON document and the array table."""

    def __init__(self, arrays) -> None:
        self.arrays = arrays

    def _fetch(self, node: dict) -> np.ndarray:
        key = node.get("key")
        try:
            return np.asarray(self.arrays[key])
        except KeyError:
            raise StateDecodeError(f"state document references missing array {key!r}") from None

    def decode(self, node):
        if node is None or isinstance(node, (bool, int, float, str)):
            return node
        if isinstance(node, list):
            return [self.decode(v) for v in node]
        if not isinstance(node, dict):
            raise StateDecodeError(f"unsupported node type {type(node).__name__} in state document")
        kind = node.get(_KIND)
        if kind is None:
            return {k: self.decode(v) for k, v in node.items()}
        decoder = getattr(self, f"_decode_{kind}", None)
        if decoder is None:
            raise StateDecodeError(f"unsupported node kind {kind!r} in state document")
        return decoder(node)

    # -- tagged nodes -------------------------------------------------- #
    def _decode_ndarray(self, node: dict) -> np.ndarray:
        return self._fetch(node)

    def _decode_npscalar(self, node: dict):
        return self._fetch(node)[()]

    def _decode_objarray(self, node: dict) -> np.ndarray:
        items = [self.decode(v) for v in node["items"]]
        array = np.empty(len(items), dtype=object)
        array[:] = items
        return array

    def _decode_tuple(self, node: dict) -> tuple:
        return tuple(self.decode(v) for v in node["items"])

    def _decode_dict(self, node: dict) -> dict:
        return {self.decode(k): self.decode(v) for k, v in node["items"]}

    def _decode_config(self, node: dict):
        classes = _config_classes()
        name = node.get("class")
        if name not in classes:
            raise StateDecodeError(f"state document names unknown config class {name!r}")
        data = {k: self.decode(v) for k, v in node["data"].items()}
        try:
            return classes[name](**data)
        except (TypeError, ValueError) as error:
            raise StateDecodeError(f"invalid {name} in state document: {error}") from None

    def _decode_kg_reasoner(self, node: dict):
        from repro.knowledge.reasoner import KGReasoner

        return KGReasoner(self.decode(node["graph"]), field_map=self.decode(node["field_map"]))

    def _decode_knowledge_graph(self, node: dict):
        from repro.knowledge.graph import KnowledgeGraph

        return KnowledgeGraph.from_text(node["triples"], name=node.get("name", "NetworkKG"))

    def _decode_table(self, node: dict):
        from repro.tabular.table import Table

        schema = self.decode(node["schema"])
        return Table(schema, {name: self.decode(col) for name, col in node["columns"].items()})

    def _decode_schema(self, node: dict):
        from repro.tabular.schema import TableSchema

        return TableSchema([self.decode(spec) for spec in node["columns"]])

    def _decode_column_spec(self, node: dict):
        from repro.tabular.schema import ColumnSpec

        try:
            return ColumnSpec(
                name=node["name"],
                kind=node["col_kind"],
                categories=tuple(self.decode(v) for v in node["categories"]),
                minimum=node["minimum"],
                maximum=node["maximum"],
                sensitive=bool(node["sensitive"]),
            )
        except (KeyError, ValueError) as error:
            raise StateDecodeError(f"invalid column spec in state document: {error}") from None


def decode_state(document, arrays):
    """Inverse of :func:`encode_state`."""
    return _Decoder(arrays).decode(document)


# --------------------------------------------------------------------------- #
# npz packing
# --------------------------------------------------------------------------- #
def save_state_npz(state, path: str | Path) -> Path:
    """Encode ``state`` and write it as a self-describing ``state.npz``."""
    document, arrays = encode_state(state)
    doc_bytes = np.frombuffer(json.dumps(document).encode("utf-8"), dtype=np.uint8)
    path = Path(path)
    np.savez(path, **{_DOC_MEMBER: doc_bytes}, **arrays)
    return path


def load_state_npz(path: str | Path):
    """Load and decode a ``state.npz`` written by :func:`save_state_npz`.

    ``allow_pickle`` stays ``False``: every member must be a plain-dtype
    array, so loading an artifact received from an untrusted peer can fail
    but never execute code.
    """
    with np.load(Path(path), allow_pickle=False) as data:
        if _DOC_MEMBER not in data:
            raise StateDecodeError(f"{path} has no {_DOC_MEMBER} member; not a v2 state file")
        try:
            document = json.loads(bytes(data[_DOC_MEMBER].tobytes()).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise StateDecodeError(f"unreadable state document in {path}: {error}") from None
        arrays = {key: data[key] for key in data.files if key != _DOC_MEMBER}
    return decode_state(document, arrays)
