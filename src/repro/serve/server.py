"""HTTP serving front-end: network transport with production semantics.

This module puts a real transport in front of the serving layer so a
second host can request synthetic traffic.  Three pieces:

* :class:`ServingPool` -- N executor workers sharing **one resident copy**
  of each served model.  Every artifact is loaded once in the parent and
  installed into the execution plane via ``Executor.install`` (a
  ``DirectStateRef`` for serial/thread pools, one shared-memory segment
  for process pools -- see ``repro/runtime/state.py``), so worker count
  scales without re-loading or re-pickling models.  Requests are
  dispatched through ``Executor.map_tasks`` riding the existing
  :class:`~repro.runtime.TaskPolicy` deadline/retry machinery.
* :class:`SamplingHTTPServer` -- a stdlib ``ThreadingHTTPServer`` exposing

  - ``POST /sample``   ``{"artifact", "n", "conditions", "seed"}`` -> rows
  - ``GET  /health``   status, queue depth, counters
  - ``GET  /artifacts``  manifests of every served artifact

  with a **bounded admission queue** (full -> ``429`` + ``Retry-After``),
  **per-artifact concurrency limits**, per-request **deadlines**, and
  **graceful drain** on shutdown (``stop(drain=True)`` stops admitting,
  serves everything already queued, then exits).
* :func:`request_samples` / :func:`fetch_json` -- a tiny stdlib client.

Determinism contract, unchanged from the in-process service: the rows of a
response depend only on ``(artifact, n, conditions, seed)``.  A client on
localhost receives samples **bit-identical** to ``model.sample(n, seed)``
in-process -- continuous columns ride JSON via ``repr`` round-tripping
(exact for float64), categorical values are JSON-native strings/ints --
enforced by ``tests/serve/test_server.py``.

Operator documentation (knobs, capacity planning, runbook) lives in
``docs/serving.md``.
"""

from __future__ import annotations

import json
import queue
import threading
import time
import urllib.error
import urllib.request
from collections import OrderedDict
from concurrent.futures import Future
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.engine import sampling_rng
from repro.obs import MetricsRegistry, default_registry
from repro.runtime import Executor, TaskPolicy, resolve_executor
from repro.serve.artifact import ArtifactError, ModelArtifact, load_model
from repro.tabular.schema import TableSchema
from repro.tabular.table import Table

__all__ = [
    "ServingPool",
    "SamplingHTTPServer",
    "ServerStats",
    "request_samples",
    "fetch_json",
    "table_to_wire",
    "table_from_wire",
]


# --------------------------------------------------------------------------- #
# Wire format
# --------------------------------------------------------------------------- #
def table_to_wire(table: Table) -> dict:
    """JSON-serialisable ``{"schema", "columns"}`` document for a table.

    Exact: float64 columns serialise through Python ``repr`` (the shortest
    round-tripping decimal), categorical values are native JSON strings or
    ints, and the schema rides its own ``to_dict`` form.
    """
    return {
        "schema": table.schema.to_dict(),
        "columns": {name: table.column(name).tolist() for name in table.schema.names},
    }


def table_from_wire(document: dict) -> Table:
    """Rebuild a :class:`~repro.tabular.table.Table` from its wire document."""
    schema = TableSchema.from_dict(document["schema"])
    return Table(schema, {name: document["columns"][name] for name in schema.names})


# --------------------------------------------------------------------------- #
# The serving pool
# --------------------------------------------------------------------------- #
def _unbind_step_workspaces(model: object) -> None:
    """Detach single-stream step workspaces from every network in ``model``.

    A fitted model's networks carry a bound
    :class:`~repro.neural.workspace.Workspace` -- recycled scratch buffers
    that make the *training* hot loop allocation-free but are only safe for
    one forward pass at a time.  A resident serving model is sampled by
    several worker threads concurrently, so the pool walks the model's
    object graph and unbinds each ``Sequential`` before installing it
    (see :meth:`repro.neural.network.Sequential.unbind_workspace`); the
    allocating forward paths it falls back to are bit-identical.
    """
    from repro.neural.network import Sequential

    seen: set[int] = set()
    stack = [model]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, Sequential):
            node.unbind_workspace()
            continue
        if isinstance(node, dict):
            stack.extend(node.values())
        elif isinstance(node, (list, tuple)):
            stack.extend(node)
        else:
            state = getattr(node, "__dict__", None)
            if isinstance(state, dict):
                stack.extend(state.values())


def _pool_sample_task(payload: tuple):
    """Executor work unit: sample from a resident model.

    ``payload`` is ``(state_ref, n, conditions, seed, default_seed)``.  The
    model rides as a :class:`~repro.runtime.StateRef` -- resolved (and
    cached) worker-side, so steady-state tasks ship only the ref and the
    request parameters, never the model.
    """
    state_ref, n, conditions, seed, default_seed = payload
    model = state_ref.resolve()
    rng = sampling_rng(seed if seed is not None else default_seed)
    return model.sample(n, conditions=conditions, rng=rng)


class ServingPool:
    """N workers serving sampling requests from shared resident models.

    Each artifact directory is loaded **once** in the parent and installed
    into the execution plane via ``Executor.install``: thread pools share
    the parent's object directly, process pools share one pickled copy in
    ``multiprocessing.shared_memory`` that every worker resolves and
    caches.  ``sample_batch`` dispatches requests through
    ``Executor.map_tasks`` under a :class:`~repro.runtime.TaskPolicy`, so
    deadlines, retries and structured failures behave exactly as in the
    rest of the runtime.

    Artifacts are addressed by the path string they were registered under;
    unambiguous directory basenames work as aliases (``kinetgan`` for
    ``artifacts/kinetgan``).
    """

    def __init__(
        self,
        artifacts: dict[str, str | Path] | list[str | Path],
        executor: Executor | str | int | None = None,
        *,
        task_retries: int = 0,
    ) -> None:
        if not artifacts:
            raise ValueError("ServingPool needs at least one artifact")
        if isinstance(artifacts, dict):
            items = [(str(name), Path(path)) for name, path in artifacts.items()]
        else:
            items = [(str(path), Path(path)) for path in artifacts]
        self._owns_executor = not isinstance(executor, Executor)
        self.executor = resolve_executor(executor)
        self.task_retries = task_retries
        self.manifests: OrderedDict[str, dict] = OrderedDict()
        self._refs: dict[str, object] = {}
        self._default_seeds: dict[str, int] = {}
        self._aliases: dict[str, str] = {}
        try:
            for name, path in items:
                artifact = ModelArtifact.open(path)
                model = load_model(path)
                _unbind_step_workspaces(model)
                self.manifests[name] = dict(artifact.manifest)
                self._refs[name] = self.executor.install(model)
                config = getattr(model, "config", None)
                self._default_seeds[name] = (
                    config.seed if config is not None else getattr(model, "seed", 0)
                )
            # Aliases: the artifact's directory path (as given and resolved)
            # plus its basename when unambiguous, so clients can address a
            # model by name or by path interchangeably.
            candidates: dict[str, list[str]] = {}
            for name, path in items:
                for alias in {str(path), str(path.resolve()), path.name}:
                    candidates.setdefault(alias, []).append(name)
            self._aliases = {
                alias: names[0]
                for alias, names in candidates.items()
                if len(set(names)) == 1 and alias not in self._refs
            }
        except BaseException:
            if self._owns_executor:
                self.executor.close()
            raise
        self._closed = False

    @property
    def artifact_names(self) -> list[str]:
        """Registered artifact keys, in registration order."""
        return list(self.manifests)

    def resolve_name(self, artifact: str) -> str | None:
        """Canonical key for ``artifact`` (exact or basename alias), or None."""
        if artifact in self._refs:
            return artifact
        return self._aliases.get(artifact)

    def sample_batch(
        self,
        requests: list[tuple[str, int, dict | None, int | None]],
        timeout: float | None = None,
    ) -> list:
        """Dispatch ``(artifact, n, conditions, seed)`` requests to the pool.

        Returns the runtime's structured :class:`~repro.runtime.TaskResult`
        list in request order: ``result.value`` is the sampled table,
        ``result.failure`` a :class:`~repro.runtime.TaskFailure` whose
        ``cause`` distinguishes deadline overruns (``timeout``) from model
        errors (``error``) and worker crashes (``crash``).
        """
        if self._closed:
            raise RuntimeError("ServingPool is closed")
        payloads = []
        for artifact, n, conditions, seed in requests:
            key = self.resolve_name(artifact)
            if key is None:
                raise KeyError(artifact)
            payloads.append(
                (self._refs[key], n, conditions, seed, self._default_seeds[key])
            )
        policy = TaskPolicy(timeout=timeout, retries=self.task_retries)
        return self.executor.map_tasks(_pool_sample_task, payloads, policy)

    def close(self) -> None:
        """Evict resident models and release the executor (if owned)."""
        if self._closed:
            return
        self._closed = True
        if self._owns_executor:
            self.executor.close()
        else:
            for ref in self._refs.values():
                self.executor.evict(ref)

    def __enter__(self) -> "ServingPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# The HTTP server
# --------------------------------------------------------------------------- #
class ServerStats:
    """Monotonic request counters (thread-safe), surfaced by ``/health``.

    Each bump is mirrored into the ``repro_http_requests_total`` counter
    family of ``registry`` (the process-wide default unless one is given),
    so ``GET /metrics`` exposes the same outcomes Prometheus-style.  The
    instance's own fields stay authoritative for ``/health``: they count
    this server only, while the registry family accumulates process-wide.
    """

    _FIELDS = ("admitted", "served", "rejected", "timeouts", "errors", "invalid")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._lock = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)
        registry = registry if registry is not None else default_registry()
        self._counters = {
            name: registry.counter(
                "repro_http_requests_total",
                help="HTTP requests by outcome (admitted/served/rejected/...).",
                labels={"outcome": name},
            )
            for name in self._FIELDS
        }

    def bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + by)
        self._counters[name].inc(by)

    def snapshot(self) -> dict:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}


class _Admitted:
    """One admitted request riding the queue to the dispatcher."""

    __slots__ = ("artifact", "n", "conditions", "seed", "future", "enqueued")

    def __init__(self, artifact: str, n: int, conditions, seed) -> None:
        self.artifact = artifact
        self.n = n
        self.conditions = conditions
        self.seed = seed
        self.future: Future = Future()
        self.enqueued = time.monotonic()


class _HTTPError(Exception):
    """An HTTP error response (status + JSON body + extra headers)."""

    def __init__(self, status: int, message: str, headers: dict | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


class _Handler(BaseHTTPRequestHandler):
    """Request handler; all state lives on ``self.server`` (the outer class)."""

    protocol_version = "HTTP/1.1"
    server: "SamplingHTTPServer"

    # -- plumbing ------------------------------------------------------- #
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _respond(self, status: int, document: dict, headers: dict | None = None) -> int:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        return status

    def _fail(self, error: _HTTPError) -> int:
        return self._respond(error.status, {"error": str(error)}, error.headers)

    def _respond_metrics(self, query: str) -> int:
        if query == "format=json":
            return self._respond(200, self.server.metrics_snapshot())
        body = self.server.metrics_text().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        return 200

    # -- routes --------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802
        start = time.perf_counter()
        path, _, query = self.path.partition("?")
        status = 500
        try:
            if path == "/health":
                status = self._respond(200, self.server.health())
            elif path == "/artifacts":
                status = self._respond(200, {"artifacts": self.server.pool.manifests})
            elif path == "/metrics":
                status = self._respond_metrics(query)
            else:
                status = self._fail(_HTTPError(404, f"no route {self.path!r}"))
        finally:
            self.server.observe_request(path, status, time.perf_counter() - start)

    def do_POST(self) -> None:  # noqa: N802
        start = time.perf_counter()
        status = 500
        try:
            if self.path != "/sample":
                status = self._fail(_HTTPError(404, f"no route {self.path!r}"))
                return
            try:
                admitted = self.server.admit(self._parse_sample_body())
                status = self._respond(200, self.server.await_result(admitted))
            except _HTTPError as error:
                status = self._fail(error)
        finally:
            self.server.observe_request(self.path, status, time.perf_counter() - start)

    def _parse_sample_body(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            raise _HTTPError(400, "missing or invalid Content-Length")
        if length <= 0:
            raise _HTTPError(400, "empty request body")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HTTPError(400, f"malformed JSON body: {error}")
        if not isinstance(body, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return body


class SamplingHTTPServer:
    """HTTP front door over a :class:`ServingPool`, with production semantics.

    * **Bounded admission**: at most ``queue_depth`` requests wait at once;
      requests arriving while the queue is full are rejected immediately
      with ``429`` and a ``Retry-After: <retry_after>`` header, so clients
      get backpressure instead of unbounded latency.
    * **Per-artifact concurrency**: per dispatch burst at most
      ``artifact_concurrency`` requests of the same artifact run on the
      pool together; excess requests stay queued (fair to other artifacts,
      bounds any one model's worker share).
    * **Deadlines**: ``request_deadline`` bounds both queue wait and
      execution (via :class:`~repro.runtime.TaskPolicy`); an overrun
      answers ``504``.
    * **Graceful drain**: ``stop(drain=True)`` stops admitting (``503``),
      serves every request already admitted, then shuts the listener down.

    Use as a context manager or call :meth:`start` / :meth:`stop`.  The
    operator runbook (knob tuning, capacity planning) is
    ``docs/serving.md``.
    """

    def __init__(
        self,
        pool: ServingPool,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        queue_depth: int = 64,
        artifact_concurrency: int = 8,
        request_deadline: float | None = None,
        max_rows: int = 1_000_000,
        retry_after: float = 1.0,
        verbose: bool = False,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        if artifact_concurrency < 1:
            raise ValueError("artifact_concurrency must be positive")
        if request_deadline is not None and request_deadline <= 0:
            raise ValueError("request_deadline must be positive (or None)")
        if max_rows < 1:
            raise ValueError("max_rows must be positive")
        self.pool = pool
        self.queue_depth = queue_depth
        self.artifact_concurrency = artifact_concurrency
        self.request_deadline = request_deadline
        self.max_rows = max_rows
        self.retry_after = retry_after
        self.verbose = verbose
        # The registry behind GET /metrics.  The process-wide default also
        # receives the runtime's task/pool counters and any engine metrics
        # published in this process, so one scrape covers all three layers;
        # pass a private registry to isolate a server (tests do).
        self.registry = registry if registry is not None else default_registry()
        self.stats = ServerStats(self.registry)
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._dispatcher: threading.Thread | None = None
        self._listener: threading.Thread | None = None
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        # The handler reaches the front-end through its server object.
        self._httpd.pool = pool  # type: ignore[attr-defined]
        self._httpd.admit = self.admit  # type: ignore[attr-defined]
        self._httpd.await_result = self.await_result  # type: ignore[attr-defined]
        self._httpd.health = self.health  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.metrics_text = self.metrics_text  # type: ignore[attr-defined]
        self._httpd.metrics_snapshot = self.metrics_snapshot  # type: ignore[attr-defined]
        self._httpd.observe_request = self._observe_request  # type: ignore[attr-defined]

    # -- lifecycle ------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (port resolved when ``port=0``)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "SamplingHTTPServer":
        """Start the listener and dispatcher threads (idempotent)."""
        if self._listener is None:
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="serving-dispatcher", daemon=True
            )
            self._dispatcher.start()
            self._listener = threading.Thread(
                target=self._httpd.serve_forever, name="serving-listener", daemon=True
            )
            self._listener.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Shut down; with ``drain`` serve everything already admitted first.

        New requests are answered ``503`` the moment drain begins.  Without
        ``drain``, queued requests fail with ``503`` instead of running.
        """
        self._draining.set()
        if not drain:
            self._flush_queue("server stopped before serving this request")
        deadline = time.monotonic() + timeout
        while drain and not self._queue.empty() and time.monotonic() < deadline:
            time.sleep(0.01)
        self._stopped.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=max(0.0, deadline - time.monotonic()))
            self._dispatcher = None
        self._httpd.shutdown()
        if self._listener is not None:
            self._listener.join(timeout=5.0)
            self._listener = None
        self._httpd.server_close()

    def __enter__(self) -> "SamplingHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- admission ------------------------------------------------------ #
    def admit(self, body: dict) -> _Admitted:
        """Validate a parsed ``/sample`` body and enqueue it, or raise.

        Raises :class:`_HTTPError` 503 while draining, 400 for invalid
        fields, 404 for unknown artifacts and 429 (with ``Retry-After``)
        when the admission queue is full.
        """
        if self._draining.is_set():
            raise _HTTPError(503, "server is draining; not admitting new requests")
        artifact = body.get("artifact")
        if not isinstance(artifact, str) or not artifact:
            self.stats.bump("invalid")
            raise _HTTPError(400, "body needs an 'artifact' string")
        key = self.pool.resolve_name(artifact)
        if key is None:
            self.stats.bump("invalid")
            raise _HTTPError(
                404, f"unknown artifact {artifact!r}; serving {self.pool.artifact_names}"
            )
        n = body.get("n")
        if isinstance(n, bool) or not isinstance(n, int) or n < 1:
            self.stats.bump("invalid")
            raise _HTTPError(400, "body needs a positive integer 'n'")
        if n > self.max_rows:
            self.stats.bump("invalid")
            raise _HTTPError(400, f"n={n} exceeds the server's max_rows={self.max_rows}")
        conditions = body.get("conditions")
        if conditions is not None and not isinstance(conditions, dict):
            self.stats.bump("invalid")
            raise _HTTPError(400, "'conditions' must be an object or null")
        seed = body.get("seed")
        if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
            self.stats.bump("invalid")
            raise _HTTPError(400, "'seed' must be an integer or null")
        admitted = _Admitted(key, n, conditions, seed)
        try:
            self._queue.put_nowait(admitted)
        except queue.Full:
            self.stats.bump("rejected")
            raise _HTTPError(
                429,
                f"admission queue full ({self.queue_depth} pending); retry later",
                headers={"Retry-After": f"{self.retry_after:g}"},
            )
        self.stats.bump("admitted")
        self._queue_gauge().set(self._queue.qsize())
        return admitted

    def await_result(self, admitted: _Admitted) -> dict:
        """Block until the dispatcher resolves the request; map to a document."""
        try:
            table = admitted.future.result()
        except _HTTPError:
            raise
        except Exception as error:  # pragma: no cover - defensive
            raise _HTTPError(500, f"internal serving error: {error}")
        return {
            "artifact": admitted.artifact,
            "n": admitted.n,
            "seed": admitted.seed,
            **table_to_wire(table),
        }

    def health(self) -> dict:
        """The ``/health`` document."""
        return {
            "status": "draining" if self._draining.is_set() else "ok",
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self.queue_depth,
            "artifacts": self.pool.artifact_names,
            "workers": getattr(self.pool.executor, "workers", 1),
            "request_deadline": self.request_deadline,
            "stats": self.stats.snapshot(),
            "runtime": self._runtime_health(),
        }

    def _runtime_health(self) -> dict:
        """Runtime-internal counters for ``/health``: respawns, task tallies.

        Task counters live in the process-wide default registry (that is
        where ``Executor.map_tasks`` records), labelled by executor kind;
        they accumulate across every pool of that kind in the process, so
        treat them as monotonic process totals, not per-server counts.
        """
        executor = self.pool.executor
        registry = default_registry()
        labels = {"executor": executor.name}

        def count(metric: str, extra: dict | None = None) -> int:
            value = registry.value(metric, {**labels, **(extra or {})})
            return int(value) if value else 0

        return {
            "executor": executor.name,
            "respawns": getattr(executor, "respawns", 0),
            "tasks": {
                "dispatched": count("repro_tasks_dispatched_total"),
                "completed": count("repro_tasks_completed_total"),
                "retries": count("repro_task_retries_total"),
                "timeouts": count("repro_tasks_failed_total", {"cause": "timeout"}),
                "crashes": count("repro_tasks_failed_total", {"cause": "crash"}),
                "errors": count("repro_tasks_failed_total", {"cause": "error"}),
            },
        }

    def metrics_text(self) -> str:
        """The ``GET /metrics`` body: Prometheus text exposition."""
        return self.registry.prometheus_text()

    def metrics_snapshot(self) -> dict:
        """The ``GET /metrics?format=json`` document."""
        return self.registry.snapshot()

    def _observe_request(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one HTTP request into the per-endpoint latency histogram."""
        self.registry.histogram(
            "repro_http_request_seconds",
            help="End-to-end HTTP request latency by endpoint and status.",
            labels={"endpoint": endpoint, "status": str(status)},
        ).observe(seconds)

    def _queue_gauge(self):
        return self.registry.gauge(
            "repro_http_queue_depth",
            help="Requests waiting in the admission queue.",
        )

    def _inflight_gauge(self):
        return self.registry.gauge(
            "repro_http_inflight",
            help="Requests currently executing on the serving pool.",
        )

    # -- dispatch ------------------------------------------------------- #
    def _dispatch_loop(self) -> None:
        """Single dispatcher: drain bursts, cap per artifact, run the pool.

        Dispatch runs on exactly one thread because ``Executor.map_tasks``
        is not safe to call concurrently; the burst shape (one
        ``map_tasks`` per drain) is also what makes the per-artifact cap
        a real concurrency bound on the workers.
        """
        deferred: list[_Admitted] = []
        while True:
            batch = deferred
            deferred = []
            if not batch:
                try:
                    batch.append(self._queue.get(timeout=0.05))
                except queue.Empty:
                    if self._stopped.is_set():
                        return
                    continue
            while True:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            dispatch: list[_Admitted] = []
            counts: dict[str, int] = {}
            for item in batch:
                if counts.get(item.artifact, 0) < self.artifact_concurrency:
                    counts[item.artifact] = counts.get(item.artifact, 0) + 1
                    dispatch.append(item)
                else:
                    deferred.append(item)
            self._run_batch(dispatch)
            if self._stopped.is_set() and not deferred and self._queue.empty():
                return

    def _run_batch(self, batch: list[_Admitted]) -> None:
        live: list[_Admitted] = []
        now = time.monotonic()
        for item in batch:
            if not item.future.set_running_or_notify_cancel():
                continue
            waited = now - item.enqueued
            if self.request_deadline is not None and waited > self.request_deadline:
                self.stats.bump("timeouts")
                item.future.set_exception(
                    _HTTPError(
                        504,
                        f"request queued {waited:.3f}s, past its "
                        f"{self.request_deadline}s deadline",
                    )
                )
                continue
            live.append(item)
        if not live:
            return
        requests = [(item.artifact, item.n, item.conditions, item.seed) for item in live]
        self._queue_gauge().set(self._queue.qsize())
        self._inflight_gauge().inc(len(live))
        try:
            results = self.pool.sample_batch(requests, timeout=self.request_deadline)
        except Exception as error:
            for item in live:
                item.future.set_exception(_HTTPError(500, f"dispatch failed: {error}"))
            return
        finally:
            self._inflight_gauge().dec(len(live))
        for item, result in zip(live, results):
            if result.failure is None:
                self.stats.bump("served")
                item.future.set_result(result.value)
                continue
            failure = result.failure
            if failure.cause == "timeout":
                self.stats.bump("timeouts")
                item.future.set_exception(
                    _HTTPError(504, f"sampling overran its deadline: {failure.message}")
                )
            elif failure.cause == "error":
                self.stats.bump("errors")
                item.future.set_exception(
                    _HTTPError(400, f"sampling failed: {failure.message}")
                )
            else:
                self.stats.bump("errors")
                item.future.set_exception(
                    _HTTPError(500, f"worker failure ({failure.cause}): {failure.message}")
                )

    def _flush_queue(self, message: str) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item.future.set_running_or_notify_cancel():
                item.future.set_exception(_HTTPError(503, message))


# --------------------------------------------------------------------------- #
# Client helpers
# --------------------------------------------------------------------------- #
def fetch_json(url: str, path: str, timeout: float = 30.0) -> dict:
    """GET ``url + path`` and parse the JSON document (e.g. ``/health``)."""
    with urllib.request.urlopen(url.rstrip("/") + path, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def request_samples(
    url: str,
    artifact: str,
    n: int,
    conditions: dict | None = None,
    seed: int | None = None,
    timeout: float = 60.0,
) -> Table:
    """POST a ``/sample`` request and rebuild the returned table.

    Raises :class:`urllib.error.HTTPError` on non-200 responses (status
    429 carries a ``Retry-After`` header; inspect ``error.headers``).
    The returned table is bit-identical to the in-process
    ``model.sample(n, conditions, sampling_rng(seed))``.
    """
    body = json.dumps(
        {"artifact": artifact, "n": n, "conditions": conditions, "seed": seed}
    ).encode("utf-8")
    request = urllib.request.Request(
        url.rstrip("/") + "/sample",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return table_from_wire(json.loads(response.read().decode("utf-8")))
