"""Privacy evaluation: the attack battery of Figures 5-7 plus DP utilities.

* :mod:`repro.privacy.reidentification` -- linkage / re-identification attack
  with a configurable fraction of attacker background knowledge (Fig. 5).
* :mod:`repro.privacy.attribute_inference` -- inferring a sensitive column
  from quasi-identifiers using the synthetic data as attacker training set
  (Fig. 6).
* :mod:`repro.privacy.membership_inference` -- white-box and fully-black-box
  membership inference against a synthesizer (Fig. 7).
* :mod:`repro.privacy.dp` -- Laplace / Gaussian mechanisms and a simple
  composition accountant (used by the PATE-GAN baseline and the examples).
* :mod:`repro.privacy.accountant` -- Renyi-DP (moments) accounting for the
  subsampled Gaussian mechanism, used by DP-SGD and DP-FedAvg training.
"""

from repro.privacy.dp import (
    CompositionAccountant,
    exponential_mechanism,
    gaussian_mechanism,
    gaussian_sigma,
    laplace_mechanism,
    randomized_response,
)
from repro.privacy.accountant import (
    MomentsAccountant,
    RDPAccountant,
    dp_sgd_epsilon,
    rdp_gaussian,
    rdp_subsampled_gaussian,
    rdp_to_epsilon,
)
from repro.privacy.reidentification import ReidentificationAttack, ReidentificationResult
from repro.privacy.attribute_inference import AttributeInferenceAttack, AttributeInferenceResult
from repro.privacy.membership_inference import (
    MembershipInferenceAttack,
    MembershipInferenceResult,
)

__all__ = [
    "laplace_mechanism",
    "gaussian_mechanism",
    "gaussian_sigma",
    "exponential_mechanism",
    "randomized_response",
    "CompositionAccountant",
    "RDPAccountant",
    "MomentsAccountant",
    "dp_sgd_epsilon",
    "rdp_gaussian",
    "rdp_subsampled_gaussian",
    "rdp_to_epsilon",
    "ReidentificationAttack",
    "ReidentificationResult",
    "AttributeInferenceAttack",
    "AttributeInferenceResult",
    "MembershipInferenceAttack",
    "MembershipInferenceResult",
]
