"""Membership-inference attacks -- Figure 7.

Decides whether a given record was part of the synthesizer's training set.
Two attacker models are evaluated, as in the paper:

* **Fully black box (FBB)** -- the attacker only holds the released
  synthetic table.  Each candidate record is scored by its distance to its
  nearest synthetic neighbours; records closer than a data-driven threshold
  are declared members.
* **White box (WB)** -- the attacker additionally holds a model-specific
  scoring function (for the GAN-family models, the trained discriminator's
  realness logit).  When no scorer is available the attack falls back to a
  sharper k-nearest-neighbour distance score, which still upper-bounds the
  FBB attacker.

Accuracy is measured on a balanced set of members (training records) and
non-members (held-out records); 0.5 is the ideal (no leakage) outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.privacy._distance import record_distance_matrix
from repro.tabular.table import Table

__all__ = ["MembershipInferenceResult", "MembershipInferenceAttack"]


@dataclass
class MembershipInferenceResult:
    """Outcome of one membership-inference attack."""

    setting: str
    attack_accuracy: float
    true_positive_rate: float
    false_positive_rate: float
    n_members: int
    n_non_members: int

    @property
    def advantage(self) -> float:
        """Yeom-style membership advantage (TPR - FPR)."""
        return self.true_positive_rate - self.false_positive_rate

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Membership inference ({self.setting}): accuracy={self.attack_accuracy:.3f} "
            f"advantage={self.advantage:+.3f}"
        )


class MembershipInferenceAttack:
    """Distance- or score-threshold membership inference."""

    def __init__(self, k_neighbors: int = 3, max_records: int = 300, seed: int = 0) -> None:
        if k_neighbors < 1:
            raise ValueError("k_neighbors must be at least 1")
        self.k_neighbors = k_neighbors
        self.max_records = max_records
        self.seed = seed

    # ------------------------------------------------------------------ #
    def _subsample(self, table: Table, rng: np.random.Generator) -> Table:
        if table.n_rows > self.max_records:
            return table.sample(self.max_records, rng)
        return table

    def _distance_scores(self, candidates: Table, synthetic: Table, k: int) -> np.ndarray:
        """Negative mean distance to the k nearest synthetic records."""
        matrix = record_distance_matrix(candidates, synthetic)
        k = min(k, synthetic.n_rows)
        nearest = np.sort(matrix, axis=1)[:, :k]
        return -nearest.mean(axis=1)

    def run(
        self,
        members: Table,
        non_members: Table,
        synthetic: Table,
        setting: str = "fbb",
        score_fn: Callable[[Table], np.ndarray] | None = None,
    ) -> MembershipInferenceResult:
        """Run the attack.

        ``score_fn`` (white-box only) maps a table to per-row "realness"
        scores; higher means the attacker believes the record was seen during
        training.
        """
        setting = setting.lower()
        if setting not in ("fbb", "wb"):
            raise ValueError("setting must be 'fbb' or 'wb'")
        rng = np.random.default_rng(self.seed)
        members = self._subsample(members, rng)
        non_members = self._subsample(non_members, rng)

        if setting == "wb" and score_fn is not None:
            member_scores = np.asarray(score_fn(members), dtype=np.float64).reshape(-1)
            non_member_scores = np.asarray(score_fn(non_members), dtype=np.float64).reshape(-1)
        else:
            k = self.k_neighbors if setting == "wb" else 1
            member_scores = self._distance_scores(members, synthetic, k)
            non_member_scores = self._distance_scores(non_members, synthetic, k)

        # Threshold at the pooled median: the attacker declares the half of
        # candidates with the highest scores to be members.
        threshold = float(np.median(np.concatenate([member_scores, non_member_scores])))
        tp = float((member_scores > threshold).mean())
        fp = float((non_member_scores > threshold).mean())
        accuracy = 0.5 * (tp + (1.0 - fp))
        return MembershipInferenceResult(
            setting=setting,
            attack_accuracy=accuracy,
            true_positive_rate=tp,
            false_positive_rate=fp,
            n_members=members.n_rows,
            n_non_members=non_members.n_rows,
        )
