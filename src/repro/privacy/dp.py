"""Differential-privacy primitives.

The paper's related work leans on DP-GAN / PATE-GAN style mechanisms; this
module provides the two classic additive-noise mechanisms plus a naive
sequential-composition accountant so the PATE-GAN baseline and the examples
can report the budget they spend.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "laplace_mechanism",
    "gaussian_sigma",
    "gaussian_mechanism",
    "exponential_mechanism",
    "randomized_response",
    "CompositionAccountant",
]


def exponential_mechanism(
    candidates: list,
    scores: np.ndarray | list[float],
    sensitivity: float,
    epsilon: float,
    rng: np.random.Generator,
):
    """Select one candidate with probability proportional to ``exp(eps*score/2Δ)``.

    The exponential mechanism is the standard way to privately choose a
    *discrete* object (e.g. which attribute value to release, which category
    to report as the mode) when adding noise to the object itself makes no
    sense.  ``scores`` are higher-is-better utilities and ``sensitivity`` is
    their per-record sensitivity.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if len(candidates) == 0 or len(candidates) != len(scores):
        raise ValueError("candidates and scores must be non-empty and the same length")
    if sensitivity <= 0:
        raise ValueError("sensitivity must be positive")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    logits = epsilon * scores / (2.0 * sensitivity)
    logits -= logits.max()
    probabilities = np.exp(logits)
    probabilities /= probabilities.sum()
    return candidates[int(rng.choice(len(candidates), p=probabilities))]


def randomized_response(
    value: bool,
    epsilon: float,
    rng: np.random.Generator,
) -> bool:
    """Classic binary randomized response: answer truthfully w.p. e^eps/(1+e^eps).

    This is the local-DP primitive a device can apply before reporting a
    sensitive boolean (e.g. "did this device observe the attack?") to the
    coordinator; it satisfies epsilon-local differential privacy.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    truth_probability = np.exp(epsilon) / (1.0 + np.exp(epsilon))
    if rng.uniform() < truth_probability:
        return bool(value)
    return not bool(value)


def laplace_mechanism(
    value: np.ndarray | float,
    sensitivity: float,
    epsilon: float,
    rng: np.random.Generator,
) -> np.ndarray | float:
    """Add Laplace noise calibrated to ``sensitivity / epsilon``."""
    if sensitivity < 0:
        raise ValueError("sensitivity must be non-negative")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    scale = sensitivity / epsilon
    if np.shape(value):
        noise = rng.laplace(0.0, scale, size=np.shape(value))
    else:
        noise = rng.laplace(0.0, scale)
    return value + noise


def gaussian_sigma(sensitivity: float, epsilon: float, delta: float) -> float:
    """Standard deviation of the classic (eps, delta) Gaussian mechanism."""
    if sensitivity < 0:
        raise ValueError("sensitivity must be non-negative")
    if epsilon <= 0 or not 0 < delta < 1:
        raise ValueError("need epsilon > 0 and delta in (0, 1)")
    return sensitivity * np.sqrt(2.0 * np.log(1.25 / delta)) / epsilon


def gaussian_mechanism(
    value: np.ndarray | float,
    sensitivity: float,
    epsilon: float,
    delta: float,
    rng: np.random.Generator,
) -> np.ndarray | float:
    """Add Gaussian noise satisfying (epsilon, delta)-DP."""
    sigma = gaussian_sigma(sensitivity, epsilon, delta)
    if np.shape(value):
        noise = rng.normal(0.0, sigma, size=np.shape(value))
    else:
        noise = rng.normal(0.0, sigma)
    return value + noise


class CompositionAccountant:
    """Naive sequential composition: epsilons and deltas simply add up.

    Deliberately conservative; it upper-bounds the budget the advanced
    composition / moments accountants would report, which is the right
    direction for a safety claim.
    """

    def __init__(self) -> None:
        self._epsilons: list[float] = []
        self._deltas: list[float] = []

    def spend(self, epsilon: float, delta: float = 0.0) -> None:
        if epsilon < 0 or delta < 0:
            raise ValueError("epsilon and delta must be non-negative")
        self._epsilons.append(epsilon)
        self._deltas.append(delta)

    @property
    def epsilon(self) -> float:
        return float(sum(self._epsilons))

    @property
    def delta(self) -> float:
        return float(sum(self._deltas))

    @property
    def num_queries(self) -> int:
        return len(self._epsilons)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompositionAccountant(eps={self.epsilon:.3f}, delta={self.delta:.2e})"
