"""Mixed-type record distances shared by the privacy attacks."""

from __future__ import annotations

import numpy as np

from repro.tabular.table import Table

__all__ = ["record_distance_matrix", "nearest_neighbor_distances"]


def record_distance_matrix(
    queries: Table, references: Table, columns: list[str] | None = None
) -> np.ndarray:
    """Pairwise distances between query rows and reference rows.

    Categorical columns contribute 0/1 mismatch; continuous columns
    contribute the absolute difference normalised by the reference column's
    range.  The result is the mean over the used columns, i.e. a value in
    ``[0, 1]``-ish space that is comparable across schemas.
    """
    schema = queries.schema
    if columns is None:
        columns = schema.names
    if not columns:
        raise ValueError("need at least one column to compare")
    total = np.zeros((queries.n_rows, references.n_rows), dtype=np.float64)
    for name in columns:
        spec = schema.column(name)
        q = queries.column(name)
        r = references.column(name)
        if spec.is_categorical:
            total += (q[:, None] != r[None, :]).astype(np.float64)
        else:
            q_num = q.astype(np.float64)
            r_num = r.astype(np.float64)
            span = max(float(r_num.max() - r_num.min()), 1e-9)
            total += np.abs(q_num[:, None] - r_num[None, :]) / span
    return total / len(columns)


def nearest_neighbor_distances(
    queries: Table, references: Table, columns: list[str] | None = None,
    chunk_size: int = 256,
) -> tuple[np.ndarray, np.ndarray]:
    """Distance to, and index of, each query's nearest reference row."""
    distances = np.empty(queries.n_rows, dtype=np.float64)
    indices = np.empty(queries.n_rows, dtype=int)
    for start in range(0, queries.n_rows, chunk_size):
        end = min(start + chunk_size, queries.n_rows)
        chunk = queries.select_rows(np.arange(start, end))
        matrix = record_distance_matrix(chunk, references, columns)
        indices[start:end] = matrix.argmin(axis=1)
        distances[start:end] = matrix[np.arange(end - start), indices[start:end]]
    return distances, indices
