"""Re-identification (linkage) attack -- Figure 5.

The attacker holds prior knowledge about a fraction of the original dataset
(30 %, 60 % or 90 % in the paper) and, given the released synthetic table,
tries to uniquely identify data points of the original dataset:

* targets that fall inside the attacker's background knowledge are
  identified by direct lookup (the attacker already holds them -- this is
  why attack accuracy grows with the overlap fraction for *every* model);
* targets outside the background knowledge can only be identified through
  the synthetic release: the attack links the target to its nearest
  synthetic record over the quasi-identifiers and succeeds when the link is
  tight (below a threshold calibrated on the known records) and the linked
  record reveals the target's sensitive attribute.

Attack accuracy is the fraction of targets identified -- the synthesizer's
contribution is the second term, so for a fixed overlap a lower accuracy
means the synthetic data leaks less.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.privacy._distance import nearest_neighbor_distances
from repro.tabular.table import Table

__all__ = ["ReidentificationResult", "ReidentificationAttack"]


@dataclass
class ReidentificationResult:
    """Outcome of one re-identification attack run."""

    overlap: float
    attack_accuracy: float
    linkage_rate: float
    n_targets: int
    threshold: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Re-identification @ {int(self.overlap * 100)}% overlap: "
            f"accuracy={self.attack_accuracy:.3f} "
            f"(synthetic linkage rate {self.linkage_rate:.3f}, {self.n_targets} targets)"
        )


class ReidentificationAttack:
    """Linkage attack with configurable attacker background knowledge."""

    def __init__(
        self,
        sensitive_column: str,
        quasi_identifiers: list[str] | None = None,
        threshold_quantile: float = 0.25,
        max_targets: int = 400,
        seed: int = 0,
    ) -> None:
        if not 0.0 < threshold_quantile <= 1.0:
            raise ValueError("threshold_quantile must be in (0, 1]")
        self.sensitive_column = sensitive_column
        self.quasi_identifiers = quasi_identifiers
        self.threshold_quantile = threshold_quantile
        self.max_targets = max_targets
        self.seed = seed

    def run(self, real: Table, synthetic: Table, overlap: float) -> ReidentificationResult:
        """Run the attack assuming the attacker knows ``overlap`` of ``real``."""
        if not 0.0 < overlap < 1.0:
            raise ValueError("overlap must be in (0, 1)")
        if self.sensitive_column not in real.schema:
            raise KeyError(f"sensitive column {self.sensitive_column!r} not in table")
        rng = np.random.default_rng(self.seed)
        quasi = self.quasi_identifiers or [
            name for name in real.schema.names if name != self.sensitive_column
        ]

        permutation = rng.permutation(real.n_rows)
        n_known = max(1, int(round(real.n_rows * overlap)))
        known_mask = np.zeros(real.n_rows, dtype=bool)
        known_mask[permutation[:n_known]] = True

        # Targets are drawn from the whole dataset, as in the paper: the
        # attacker is asked to uniquely identify data points of the original
        # data, some of which they already hold.
        target_indices = rng.permutation(real.n_rows)[: self.max_targets]
        targets = real.select_rows(target_indices)
        target_known = known_mask[target_indices]

        # Calibrate the synthetic-linkage threshold on known records.
        known_table = real.select_rows(np.nonzero(known_mask)[0])
        calibration = known_table
        if calibration.n_rows > self.max_targets:
            calibration = calibration.sample(self.max_targets, rng)
        known_distances, _ = nearest_neighbor_distances(calibration, synthetic, quasi)
        threshold = float(np.quantile(known_distances, self.threshold_quantile))

        # Synthetic-linkage success for every target.
        distances, matched = nearest_neighbor_distances(targets, synthetic, quasi)
        sensitive_real = targets.column(self.sensitive_column)
        sensitive_matched = synthetic.column(self.sensitive_column)[matched]
        linked = np.logical_and(distances <= threshold, sensitive_matched == sensitive_real)

        # A target is identified if the attacker already knows it, or if the
        # synthetic release links it.
        identified = np.logical_or(target_known, linked)
        return ReidentificationResult(
            overlap=overlap,
            attack_accuracy=float(identified.mean()),
            linkage_rate=float(linked[~target_known].mean()) if (~target_known).any() else 1.0,
            n_targets=targets.n_rows,
            threshold=threshold,
        )

    def run_sweep(
        self, real: Table, synthetic: Table, overlaps: tuple[float, ...] = (0.3, 0.6, 0.9)
    ) -> list[ReidentificationResult]:
        """The 30/60/90 % sweep reported in Figure 5."""
        return [self.run(real, synthetic, overlap) for overlap in overlaps]
