"""Attribute-inference attack -- Figure 6.

The attacker sees the released synthetic table and the quasi-identifiers of
real individuals, and tries to infer the sensitive attribute (the traffic
label in the NIDS datasets).  The attack trains a classifier on the
synthetic data (features = quasi-identifiers, target = sensitive column) and
applies it to the real records; attack accuracy is its accuracy on the real
sensitive values.  Lower accuracy (closer to the majority-class rate) means
the synthetic data leaks less about individuals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nids.metrics import accuracy_score
from repro.nids.pipeline import make_classifier
from repro.nids.features import TabularFeaturizer
from repro.tabular.table import Table

__all__ = ["AttributeInferenceResult", "AttributeInferenceAttack"]


@dataclass
class AttributeInferenceResult:
    """Outcome of one attribute-inference attack."""

    attack_accuracy: float
    majority_baseline: float
    n_targets: int

    @property
    def advantage(self) -> float:
        """How much better than guessing the majority class the attack does."""
        return self.attack_accuracy - self.majority_baseline

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Attribute inference: accuracy={self.attack_accuracy:.3f} "
            f"(majority baseline {self.majority_baseline:.3f}, "
            f"advantage {self.advantage:+.3f})"
        )


class AttributeInferenceAttack:
    """Infer a sensitive categorical column from quasi-identifiers."""

    def __init__(
        self,
        sensitive_column: str,
        quasi_identifiers: list[str] | None = None,
        classifier: str = "decision_tree",
        max_targets: int = 1000,
        seed: int = 0,
    ) -> None:
        self.sensitive_column = sensitive_column
        self.quasi_identifiers = quasi_identifiers
        self.classifier = classifier
        self.max_targets = max_targets
        self.seed = seed

    def run(self, real: Table, synthetic: Table) -> AttributeInferenceResult:
        if self.sensitive_column not in real.schema:
            raise KeyError(f"sensitive column {self.sensitive_column!r} not in table")
        spec = real.schema.column(self.sensitive_column)
        if not spec.is_categorical:
            raise ValueError("attribute inference targets a categorical sensitive column")
        rng = np.random.default_rng(self.seed)
        quasi = self.quasi_identifiers or [
            name for name in real.schema.names if name != self.sensitive_column
        ]
        keep = quasi + [self.sensitive_column]
        synthetic_view = synthetic.select_columns(keep)
        real_view = real.select_columns(keep)
        if real_view.n_rows > self.max_targets:
            real_view = real_view.sample(self.max_targets, rng)

        featurizer = TabularFeaturizer(self.sensitive_column).fit(synthetic_view)
        X_train, y_train = featurizer.transform(synthetic_view)
        X_real, y_real = featurizer.transform(real_view)
        model = make_classifier(self.classifier, seed=self.seed)
        model.fit(X_train, y_train)
        predictions = model.predict(X_real)

        counts = np.bincount(y_real, minlength=featurizer.n_classes)
        majority = float(counts.max() / counts.sum())
        return AttributeInferenceResult(
            attack_accuracy=accuracy_score(y_real, predictions),
            majority_baseline=majority,
            n_targets=real_view.n_rows,
        )
