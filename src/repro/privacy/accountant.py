"""Renyi differential-privacy accounting for (subsampled) Gaussian mechanisms.

The :class:`CompositionAccountant` in :mod:`repro.privacy.dp` adds epsilons
linearly, which is far too loose for iterative training (DP-SGD, DP-FedAvg,
PATE-style noisy aggregation repeated over many rounds).  This module
implements the standard Renyi-DP (moments) accountant:

* :func:`rdp_gaussian` -- RDP curve of the plain Gaussian mechanism.
* :func:`rdp_subsampled_gaussian` -- the Mironov et al. upper bound for the
  Poisson-subsampled Gaussian mechanism (the DP-SGD setting).
* :func:`rdp_to_epsilon` -- conversion from an RDP curve to an
  ``(epsilon, delta)`` guarantee.
* :class:`RDPAccountant` -- tracks many heterogeneous mechanism invocations
  and reports the total budget; :class:`MomentsAccountant` is an alias using
  the historical name from Abadi et al.

Only ``numpy`` / ``scipy`` are required; the computation follows the widely
used reference implementations (TensorFlow Privacy / Opacus) restricted to
integer Renyi orders, which is accurate enough for the training regimes this
package runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import special

__all__ = [
    "DEFAULT_ORDERS",
    "rdp_gaussian",
    "rdp_subsampled_gaussian",
    "rdp_to_epsilon",
    "dp_sgd_epsilon",
    "RDPAccountant",
    "MomentsAccountant",
]

#: Integer Renyi orders the accountant evaluates.  The optimum order for the
#: usual (sigma, q, steps, delta) regimes of this package lies well inside
#: this list.
DEFAULT_ORDERS: tuple[int, ...] = tuple(range(2, 64)) + (72, 96, 128, 256, 512)


def _validate_sigma(noise_multiplier: float) -> None:
    if noise_multiplier <= 0:
        raise ValueError("noise_multiplier must be positive")


def rdp_gaussian(noise_multiplier: float, orders: tuple[int, ...] = DEFAULT_ORDERS) -> np.ndarray:
    """RDP of the Gaussian mechanism with standard deviation ``sigma * sensitivity``.

    For the Gaussian mechanism, ``RDP(alpha) = alpha / (2 sigma^2)`` exactly.
    """
    _validate_sigma(noise_multiplier)
    alphas = np.asarray(orders, dtype=np.float64)
    return alphas / (2.0 * noise_multiplier**2)


def _log_add(a: float, b: float) -> float:
    """Numerically stable ``log(exp(a) + exp(b))``."""
    if a == -math.inf:
        return b
    if b == -math.inf:
        return a
    high, low = (a, b) if a > b else (b, a)
    return high + math.log1p(math.exp(low - high))


def _rdp_subsampled_gaussian_one(q: float, sigma: float, alpha: int) -> float:
    """RDP upper bound of the Poisson-subsampled Gaussian at integer order ``alpha``.

    Implements the binomial-expansion bound of Mironov, Talwar & Zhang
    (2019), eq. (3): the log of
    ``sum_k C(alpha, k) (1-q)^(alpha-k) q^k exp(k(k-1)/(2 sigma^2))``
    divided by ``alpha - 1``.
    """
    if q == 0.0:
        return 0.0
    if q == 1.0:
        return alpha / (2.0 * sigma**2)
    log_sum = -math.inf
    log_q = math.log(q)
    log_1mq = math.log1p(-q)
    for k in range(alpha + 1):
        log_term = (
            float(
                special.gammaln(alpha + 1)
                - special.gammaln(k + 1)
                - special.gammaln(alpha - k + 1)
            )
            + k * log_q
            + (alpha - k) * log_1mq
            + (k * (k - 1)) / (2.0 * sigma**2)
        )
        log_sum = _log_add(log_sum, log_term)
    return log_sum / (alpha - 1)


def rdp_subsampled_gaussian(
    noise_multiplier: float,
    sample_rate: float,
    steps: int = 1,
    orders: tuple[int, ...] = DEFAULT_ORDERS,
) -> np.ndarray:
    """RDP curve of ``steps`` compositions of the subsampled Gaussian mechanism.

    Parameters
    ----------
    noise_multiplier:
        Ratio of the noise standard deviation to the clipping norm (the
        ``sigma`` of DP-SGD).
    sample_rate:
        Poisson sampling probability ``q`` (batch size / dataset size).
    steps:
        Number of mechanism invocations (RDP composes additively).
    """
    _validate_sigma(noise_multiplier)
    if not 0.0 <= sample_rate <= 1.0:
        raise ValueError("sample_rate must be in [0, 1]")
    if steps < 0:
        raise ValueError("steps must be non-negative")
    per_step = np.asarray(
        [
            _rdp_subsampled_gaussian_one(sample_rate, noise_multiplier, int(alpha))
            for alpha in orders
        ],
        dtype=np.float64,
    )
    return per_step * steps


def rdp_to_epsilon(
    rdp: np.ndarray, delta: float, orders: tuple[int, ...] = DEFAULT_ORDERS
) -> tuple[float, int]:
    """Convert an RDP curve to an ``(epsilon, delta)`` guarantee.

    Uses the standard conversion ``eps = rdp(alpha) + log(1/delta)/(alpha-1)``
    minimised over the evaluated orders.  Returns ``(epsilon, best_order)``.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    rdp = np.asarray(rdp, dtype=np.float64)
    alphas = np.asarray(orders, dtype=np.float64)
    if rdp.shape != alphas.shape:
        raise ValueError("rdp and orders must have the same length")
    epsilons = rdp + math.log(1.0 / delta) / (alphas - 1.0)
    best = int(np.argmin(epsilons))
    return float(epsilons[best]), int(alphas[best])


def dp_sgd_epsilon(
    noise_multiplier: float,
    sample_rate: float,
    steps: int,
    delta: float,
    orders: tuple[int, ...] = DEFAULT_ORDERS,
) -> float:
    """Epsilon spent by ``steps`` DP-SGD updates (the usual one-call helper)."""
    rdp = rdp_subsampled_gaussian(noise_multiplier, sample_rate, steps, orders)
    epsilon, _ = rdp_to_epsilon(rdp, delta, orders)
    return epsilon


@dataclass
class _MechanismRecord:
    """One recorded mechanism family: (sigma, q) composed ``steps`` times."""

    noise_multiplier: float
    sample_rate: float
    steps: int


class RDPAccountant:
    """Tracks Gaussian-mechanism invocations and reports the RDP budget.

    Typical DP-SGD / DP-FedAvg use::

        accountant = RDPAccountant()
        for _ in range(steps):
            accountant.step(noise_multiplier=1.1, sample_rate=256 / 60_000)
        epsilon = accountant.get_epsilon(delta=1e-5)
    """

    def __init__(self, orders: tuple[int, ...] = DEFAULT_ORDERS) -> None:
        if len(orders) < 2 or any(int(o) != o or o < 2 for o in orders):
            raise ValueError("orders must be integers >= 2")
        self.orders = tuple(int(o) for o in orders)
        self._records: list[_MechanismRecord] = []

    # ------------------------------------------------------------------ #
    def step(
        self, noise_multiplier: float, sample_rate: float = 1.0, steps: int = 1
    ) -> None:
        """Record ``steps`` invocations of a (subsampled) Gaussian mechanism."""
        _validate_sigma(noise_multiplier)
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if steps <= 0:
            raise ValueError("steps must be positive")
        # Merge with an existing record of the same mechanism when possible.
        for record in self._records:
            if (
                record.noise_multiplier == noise_multiplier
                and record.sample_rate == sample_rate
            ):
                record.steps += steps
                return
        self._records.append(_MechanismRecord(noise_multiplier, sample_rate, steps))

    @property
    def total_steps(self) -> int:
        return sum(record.steps for record in self._records)

    def total_rdp(self) -> np.ndarray:
        """The composed RDP curve over all recorded mechanisms."""
        total = np.zeros(len(self.orders), dtype=np.float64)
        for record in self._records:
            total += rdp_subsampled_gaussian(
                record.noise_multiplier, record.sample_rate, record.steps, self.orders
            )
        return total

    def get_epsilon(self, delta: float) -> float:
        """The (epsilon, delta)-DP guarantee implied by everything recorded."""
        if not self._records:
            return 0.0
        epsilon, _ = rdp_to_epsilon(self.total_rdp(), delta, self.orders)
        return epsilon

    def get_epsilon_and_order(self, delta: float) -> tuple[float, int]:
        """Epsilon plus the Renyi order at which the conversion is tightest."""
        if not self._records:
            return 0.0, self.orders[0]
        return rdp_to_epsilon(self.total_rdp(), delta, self.orders)

    def reset(self) -> None:
        self._records = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RDPAccountant(mechanisms={len(self._records)}, "
            f"total_steps={self.total_steps})"
        )


#: Historical name from Abadi et al. (2016); the moments accountant and the
#: RDP accountant are the same object up to a change of variables.
MomentsAccountant = RDPAccountant
