"""The synthesizer interface shared by KiNETGAN and every baseline."""

from __future__ import annotations

import numpy as np

from repro.tabular.table import Table

__all__ = ["Synthesizer"]


class Synthesizer:
    """Base class for tabular synthesizers.

    Subclasses implement :meth:`fit` and :meth:`sample`.  The evaluation
    harness (fidelity, utility, privacy) only depends on this interface, so
    KiNETGAN and the five baselines are interchangeable there.
    """

    #: Human-readable model name used in result tables.
    name: str = "synthesizer"

    def fit(self, table: Table, **kwargs) -> "Synthesizer":
        """Fit the synthesizer on a real table and return ``self``."""
        raise NotImplementedError

    def sample(self, n: int, conditions: dict | None = None,
               rng: np.random.Generator | None = None) -> Table:
        """Draw ``n`` synthetic rows.

        ``conditions`` optionally fixes values of conditional attributes
        (only supported by conditional models; unconditional baselines raise
        ``ValueError`` when conditions are passed).
        """
        raise NotImplementedError

    def _require_fitted(self, flag: bool) -> None:
        if not flag:
            raise RuntimeError(f"{type(self).__name__}.sample() called before fit()")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
