"""The synthesizer interface shared by KiNETGAN and every baseline."""

from __future__ import annotations

import numpy as np

from repro.tabular.table import Table

__all__ = ["Synthesizer"]


class Synthesizer:
    """Base class for tabular synthesizers.

    Subclasses implement :meth:`fit` and :meth:`sample`.  The evaluation
    harness (fidelity, utility, privacy) only depends on this interface, so
    KiNETGAN and the five baselines are interchangeable there.
    """

    #: Human-readable model name used in result tables.
    name: str = "synthesizer"

    def fit(self, table: Table, **kwargs) -> "Synthesizer":
        """Fit the synthesizer on a real table and return ``self``."""
        raise NotImplementedError

    def sample(self, n: int, conditions: dict | None = None,
               rng: np.random.Generator | None = None) -> Table:
        """Draw ``n`` synthetic rows.

        ``conditions`` optionally fixes values of conditional attributes
        (only supported by conditional models; unconditional baselines raise
        ``ValueError`` when conditions are passed).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Artifact-state protocol (repro.serve)
    # ------------------------------------------------------------------ #
    def artifact_state(self) -> dict:
        """Picklable non-network state of a fitted model.

        Together with :meth:`artifact_networks` this is the contract behind
        :func:`repro.serve.save_model` / :func:`repro.serve.load_model`: the
        state dict must contain everything (config, transformer / sampler /
        knowledge state) needed so that ``restore_state(state)`` followed by
        loading the network weights reproduces ``sample()`` bit-for-bit.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the artifact-state protocol"
        )

    def restore_state(self, state: dict) -> None:
        """Rebuild a fitted model (minus network weights) from ``state``."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the artifact-state protocol"
        )

    def artifact_networks(self) -> dict[str, object]:
        """Named :class:`~repro.neural.network.Sequential` networks to persist.

        Valid on a fitted *or* restored model; may be empty for models whose
        whole state lives in :meth:`artifact_state` (e.g. the independent
        marginal sampler).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the artifact-state protocol"
        )

    def _require_fitted(self, flag: bool) -> None:
        if not flag:
            raise RuntimeError(f"{type(self).__name__}.sample() called before fit()")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
