"""The conditional generator ``G_C`` (paper section III-A).

The generator consumes a Gaussian noise vector ``z`` concatenated with the
one-hot condition vector ``C`` and produces one transformed table row.  Its
architecture follows the CTGAN family: a stack of concatenating residual
blocks followed by a linear projection to the transformed width, with a
per-block output activation (tanh for continuous scalars, Gumbel-softmax for
one-hot blocks) supplied by :class:`TabularOutputActivation` so that
discrete outputs stay differentiable during training.
"""

from __future__ import annotations

import numpy as np

from repro.neural.layers import BatchNorm, Dense, Layer, ReLU, Residual
from repro.neural.network import Sequential
from repro.tabular.segments import BlockLayout
from repro.tabular.transformer import DataTransformer

__all__ = ["TabularOutputActivation", "ConditionalGenerator"]


class TabularOutputActivation(Layer):
    """Applies per-span output activations to the generator's raw scores.

    ``spans`` is the ``(start, end, activation)`` list produced by
    :meth:`repro.tabular.transformer.DataTransformer.activation_spans`.
    ``tanh`` spans get a plain tanh; ``softmax`` spans get a Gumbel-softmax
    with temperature ``tau`` during training (noise-free softmax at
    evaluation time), matching how CTGAN-style generators emit one-hot
    blocks while remaining differentiable.

    All softmax spans are handled together through a precomputed
    :class:`~repro.tabular.segments.BlockLayout`: one gather, one Gumbel
    noise draw for the whole region, segmented softmax, one scatter -- both
    forward and backward run in a handful of C passes regardless of how many
    one-hot blocks the table has.
    """

    def __init__(
        self,
        spans: list[tuple[int, int, str]],
        tau: float = 0.2,
        rng: np.random.Generator | None = None,
    ) -> None:
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.spans = list(spans)
        self.tau = tau
        self.rng = rng if rng is not None else np.random.default_rng()
        self._layout = BlockLayout(
            [(start, end) for start, end, activation in self.spans if activation == "softmax"]
        )
        tanh_cols: list[int] = []
        for start, end, activation in self.spans:
            if activation == "tanh":
                tanh_cols.extend(range(start, end))
        self._tanh_columns = np.asarray(tanh_cols, dtype=np.intp)
        self._cache: np.ndarray | None = None
        # Reusable scratch for the gather / Gumbel / softmax intermediates
        # (keyed by shape inside BlockLayout._scratch_buffer).  The output
        # matrix itself stays freshly allocated: it escapes as the generated
        # batch and is held across the whole training step.
        self._scratch: dict | None = {}

    def bind_workspace(self, workspace) -> None:
        # The scratch dict is single-stream, exactly like a step workspace:
        # two concurrent forwards through it would overwrite each other's
        # gather/softmax intermediates.  Unbinding (Sequential.
        # unbind_workspace, used by the serving pool before sharing a model
        # across sampler threads) therefore also disables scratch reuse;
        # the allocating path is bit-identical.
        self._ws = workspace
        self._scratch = {} if workspace is not None else None

    def __getstate__(self) -> dict:
        # Scratch buffers are a pure cache; drop them from pickles so saved
        # models do not carry the last batch's intermediates (an unbound
        # layer stays unbound on the other side).
        state = self.__dict__.copy()
        state["_scratch"] = None if self._scratch is None else {}
        return state

    def _buffer(
        self, key: str, shape: tuple[int, ...], dtype: np.dtype | type = np.float64
    ) -> np.ndarray:
        return BlockLayout._scratch_buffer(self._scratch, key, shape, dtype)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = np.empty_like(x)
        tanh_cols = self._tanh_columns
        if tanh_cols.size:
            # take -> tanh-in-place replays ``np.tanh(x[:, tanh_cols])``
            # without the two per-call temporaries.
            span = self._buffer("tanh", (x.shape[0], tanh_cols.size), x.dtype)
            np.take(x, tanh_cols, axis=1, out=span)
            np.tanh(span, out=span)
            out[:, tanh_cols] = span
        layout = self._layout
        if layout.n_blocks:
            gathered = self._buffer("gather", (x.shape[0], layout.total), x.dtype)
            np.take(x, layout.columns, axis=1, out=gathered)
            if training:
                # ``gathered - log(-log(u)) * tau`` staged in place through
                # a recycled buffer: ``random(out=...)`` consumes the stream
                # identically to ``uniform(lo, hi, size=...)`` (float64) and
                # to ``random(size=..., dtype=float32)`` (float32), and
                # ``u * (hi - lo) + lo`` in place returns the same bits.
                lo, hi = 1e-12, 1.0 - 1e-12
                uniform = self._buffer("gumbel", gathered.shape, x.dtype)
                self.rng.random(out=uniform, dtype=uniform.dtype)
                np.multiply(uniform, hi - lo, out=uniform)
                np.add(uniform, lo, out=uniform)
                np.log(uniform, out=uniform)
                np.negative(uniform, out=uniform)
                np.log(uniform, out=uniform)
                np.multiply(uniform, self.tau, out=uniform)
                np.subtract(gathered, uniform, out=gathered)
            layout.scatter(
                out, layout.softmax(gathered, tau=self.tau, scratch=self._scratch)
            )
        # Only training passes are differentiated; caching inference outputs
        # would pin the last sampled batch in warm serving registries.
        self._cache = out if training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        out = self._cache
        grad_input = np.empty_like(grad_output)
        tanh_cols = self._tanh_columns
        if tanh_cols.size:
            # Replays ``grad_output[:, cols] * (1.0 - out[:, cols] ** 2)``
            # through two reused spans (power(, 2) hits the same squared
            # special case as ``**``), writing the product into the first.
            span = self._buffer("tanh_bwd", (grad_output.shape[0], tanh_cols.size), grad_output.dtype)
            np.take(out, tanh_cols, axis=1, out=span)
            np.power(span, 2, out=span)
            np.subtract(1.0, span, out=span)
            gspan = self._buffer(
                "tanh_bwd_g", (grad_output.shape[0], tanh_cols.size), grad_output.dtype
            )
            np.take(grad_output, tanh_cols, axis=1, out=gspan)
            np.multiply(gspan, span, out=span)
            grad_input[:, tanh_cols] = span
        layout = self._layout
        if layout.n_blocks:
            region = self._buffer("bwd_region_out", (out.shape[0], layout.total), grad_output.dtype)
            np.take(out, layout.columns, axis=1, out=region)
            gregion = self._buffer(
                "bwd_region_grad", (out.shape[0], layout.total), grad_output.dtype
            )
            np.take(grad_output, layout.columns, axis=1, out=gregion)
            grad_soft = layout.softmax_backward(
                region, gregion, tau=self.tau, scratch=self._scratch
            )
            layout.scatter(grad_input, grad_soft)
        self._cache = None
        return grad_input


class ConditionalGenerator:
    """Residual MLP generator conditioned on the one-hot condition vector."""

    def __init__(
        self,
        noise_dim: int,
        condition_dim: int,
        transformer: DataTransformer,
        hidden_dims: tuple[int, ...] = (128, 128),
        gumbel_tau: float = 0.2,
        rng: np.random.Generator | None = None,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        if noise_dim <= 0:
            raise ValueError("noise_dim must be positive")
        if condition_dim < 0:
            raise ValueError("condition_dim must be non-negative")
        rng = rng if rng is not None else np.random.default_rng()
        self.noise_dim = noise_dim
        self.condition_dim = condition_dim
        self.output_dim = transformer.output_dim
        self.transformer = transformer

        layers: list[Layer] = []
        width = noise_dim + condition_dim
        for hidden in hidden_dims:
            layers.append(
                Residual(
                    [
                        Dense(width, hidden, rng=rng, init="he", dtype=dtype),
                        BatchNorm(hidden, dtype=dtype),
                        ReLU(),
                    ]
                )
            )
            width += hidden  # residual blocks concatenate
        layers.append(Dense(width, self.output_dim, rng=rng, init="glorot", dtype=dtype))
        self.activation = TabularOutputActivation(
            transformer.activation_spans(), tau=gumbel_tau, rng=rng
        )
        layers.append(self.activation)
        self.network = Sequential(layers)
        self.network.consolidate()

    # ------------------------------------------------------------------ #
    def forward(
        self, noise: np.ndarray, condition: np.ndarray | None, training: bool = True
    ) -> np.ndarray:
        """Generate a batch of transformed rows from noise and conditions."""
        dtype = self.network.dtype
        if condition is None:
            condition = np.zeros((noise.shape[0], self.condition_dim), dtype=dtype)
        if noise.shape[1] != self.noise_dim:
            raise ValueError(f"expected noise of width {self.noise_dim}, got {noise.shape[1]}")
        if condition.shape[1] != self.condition_dim:
            raise ValueError(
                f"expected condition of width {self.condition_dim}, got {condition.shape[1]}"
            )
        x = np.concatenate([noise, condition], axis=1)
        if x.dtype != dtype:
            # Float64 inputs to a float32 network round once at the boundary.
            x = x.astype(dtype)
        return self.network.forward(x, training=training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate into the generator; returns grad w.r.t. [z, C]."""
        return self.network.backward(grad_output)

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return self.network.parameters()

    def zero_grad(self) -> None:
        self.network.zero_grad()

    def num_parameters(self) -> int:
        return self.network.num_parameters()

    def state_dict(self) -> dict[str, np.ndarray]:
        return self.network.state_dict()

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self.network.load_state_dict(state)
