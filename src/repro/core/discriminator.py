"""The regular discriminator ``D_M`` (paper section III-B-2).

A standard MLP critic distinguishing real transformed rows from generated
ones, conditioned on the same condition vector the generator received.
"""

from __future__ import annotations

import numpy as np

from repro.neural.layers import Dense, Dropout, Layer, LeakyReLU
from repro.neural.network import Sequential

__all__ = ["DataDiscriminator"]


class DataDiscriminator:
    """Conditional real/fake discriminator over transformed rows."""

    def __init__(
        self,
        data_dim: int,
        condition_dim: int,
        hidden_dims: tuple[int, ...] = (128, 128),
        dropout: float = 0.25,
        rng: np.random.Generator | None = None,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        if data_dim <= 0:
            raise ValueError("data_dim must be positive")
        if condition_dim < 0:
            raise ValueError("condition_dim must be non-negative")
        rng = rng if rng is not None else np.random.default_rng()
        self.data_dim = data_dim
        self.condition_dim = condition_dim

        layers: list[Layer] = []
        width = data_dim + condition_dim
        for hidden in hidden_dims:
            layers.append(Dense(width, hidden, rng=rng, init="he", dtype=dtype))
            layers.append(LeakyReLU(0.2))
            if dropout > 0:
                layers.append(Dropout(dropout, rng=rng))
            width = hidden
        layers.append(Dense(width, 1, rng=rng, init="glorot", dtype=dtype))
        self.network = Sequential(layers)
        self.network.consolidate()

    def forward(
        self, data: np.ndarray, condition: np.ndarray | None, training: bool = True
    ) -> np.ndarray:
        """Return real/fake logits of shape ``(batch, 1)``."""
        dtype = self.network.dtype
        if condition is None:
            condition = np.zeros((data.shape[0], self.condition_dim), dtype=dtype)
        if data.shape[1] != self.data_dim:
            raise ValueError(f"expected data of width {self.data_dim}, got {data.shape[1]}")
        if condition.shape[1] != self.condition_dim:
            raise ValueError(
                f"expected condition of width {self.condition_dim}, got {condition.shape[1]}"
            )
        x = np.concatenate([data, condition], axis=1)
        if x.dtype != dtype:
            x = x.astype(dtype)
        return self.network.forward(x, training=training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate; returns the gradient w.r.t. the data block only.

        The condition block is an input, not something the generator
        produced, so its gradient is discarded by the caller.
        """
        grad_input = self.network.backward(grad_output)
        return grad_input[:, : self.data_dim]

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return self.network.parameters()

    def zero_grad(self) -> None:
        self.network.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        return self.network.state_dict()

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self.network.load_state_dict(state)
