"""Hyper-parameter configuration for KiNETGAN."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["KiNETGANConfig"]


@dataclass
class KiNETGANConfig:
    """All tunable knobs of the KiNETGAN trainer.

    The defaults are sized for the CPU-only numpy backend: small residual
    generators and a few hundred epochs over mini-batches are enough for the
    low-dimensional flow-record tables used in the paper's evaluation.

    Attributes
    ----------
    embedding_dim:
        Dimension of the Gaussian noise vector ``z``.
    generator_dims / discriminator_dims:
        Hidden layer widths of the generator residual stack and of the
        real/fake discriminator ``D_M``.
    epochs / batch_size / discriminator_steps:
        Standard GAN loop controls; ``discriminator_steps`` is the number of
        ``D_M`` updates per generator update.
    generator_lr / discriminator_lr:
        Adam learning rates (betas are fixed at the GAN-standard (0.5, 0.9)).
    lambda_condition:
        Weight of the condition cross-entropy penalty (section III-A-2).
    lambda_knowledge:
        Weight of the knowledge-guided discriminator term in the generator
        loss (equation 3 adds ``D_KG`` to ``D_M``; this weight lets the
        ablation switch it off).
    uniform_probability:
        Probability of drawing the pivot conditional attribute uniformly over
        its range rather than by log-frequency (section III-A-3).
    use_knowledge_discriminator:
        Master switch for ``D_KG`` (ablation A1 in DESIGN.md).
    use_valid_set_loss:
        When true (default) the knowledge graph is queried with the sampled
        condition values and the generator is additionally penalised for
        probability mass on categories outside the returned valid sets
        (section III-B-1: "the discriminator's input consists of all valid
        sets of attributes for the conditional vector C").  Weighted by
        ``lambda_knowledge`` like the learned-head term.
    knowledge_head_dims:
        Hidden widths of the learned refinement head of ``D_KG``.
    knowledge_negatives_per_batch:
        Number of invalid attribute combinations synthesised per batch to
        train the learned head.
    gumbel_tau:
        Temperature of the Gumbel-softmax applied to discrete output blocks.
    max_modes:
        Maximum number of Gaussian-mixture modes per continuous column.
    continuous_encoding:
        ``"mode"`` (CTGAN-style mode-specific normalisation) or ``"minmax"``.
    dtype:
        Floating dtype of the networks and the training hot path:
        ``"float64"`` (the default, bit-compatible with every existing
        seeded history) or ``"float32"`` (half the memory bandwidth,
        transport bytes and artifact size -- see ``docs/precision.md``).
    dropout:
        Discriminator dropout rate.
    seed:
        Seed for all random draws (model init, sampling, noise).
    verbose:
        When true the trainer prints one line per ``log_every`` epochs.
    log_every:
        Epoch period of the engine's :class:`~repro.engine.PeriodicLogger`
        (only active when ``verbose``).
    patience:
        Early-stopping patience in epochs for the engine's loss-plateau
        monitor; 0 (the default) disables early stopping so training always
        runs the full ``epochs``.
    min_delta:
        Minimum loss improvement that resets the early-stopping counter.
    checkpoint_dir:
        When set, the engine's :class:`~repro.engine.Checkpointer` persists
        the model networks into this directory (always at the end of
        training, plus every ``checkpoint_every`` epochs when positive).
    checkpoint_every:
        Epoch period of intermediate checkpoints; 0 writes only the final
        checkpoint.
    metrics:
        When true the engine publishes epoch counters/durations and the
        live loss gauges into the process metrics registry
        (:class:`~repro.engine.MetricsCallback`); attaching it never
        touches an RNG stream.  The CLI enables it automatically when
        ``--metrics-dump`` is passed.
    """

    embedding_dim: int = 64
    generator_dims: tuple[int, ...] = (128, 128)
    discriminator_dims: tuple[int, ...] = (128, 128)
    epochs: int = 120
    batch_size: int = 128
    discriminator_steps: int = 1
    generator_lr: float = 2e-3
    discriminator_lr: float = 2e-3
    lambda_condition: float = 1.0
    lambda_knowledge: float = 1.0
    uniform_probability: float = 0.3
    use_knowledge_discriminator: bool = True
    use_valid_set_loss: bool = True
    knowledge_head_dims: tuple[int, ...] = (64,)
    knowledge_negatives_per_batch: int = 64
    gumbel_tau: float = 0.2
    max_modes: int = 10
    continuous_encoding: str = "mode"
    dtype: str = "float64"
    dropout: float = 0.25
    seed: int = 0
    verbose: bool = False
    log_every: int = 20
    patience: int = 0
    min_delta: float = 0.0
    checkpoint_dir: str | None = None
    checkpoint_every: int = 0
    metrics: bool = False
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.discriminator_steps < 1:
            raise ValueError("discriminator_steps must be at least 1")
        if not 0.0 <= self.uniform_probability <= 1.0:
            raise ValueError("uniform_probability must be in [0, 1]")
        if self.lambda_condition < 0 or self.lambda_knowledge < 0:
            raise ValueError("loss weights must be non-negative")
        if self.continuous_encoding not in ("mode", "minmax"):
            raise ValueError("continuous_encoding must be 'mode' or 'minmax'")
        if self.dtype not in ("float64", "float32"):
            raise ValueError("dtype must be 'float64' or 'float32'")
        if self.log_every < 1:
            raise ValueError("log_every must be at least 1")
        if self.patience < 0 or self.checkpoint_every < 0:
            raise ValueError("patience and checkpoint_every must be non-negative")
        if self.min_delta < 0:
            raise ValueError("min_delta must be non-negative")

    @property
    def np_dtype(self) -> np.dtype:
        """The configured dtype as a numpy dtype object."""
        return np.dtype(self.dtype)

    def engine_callbacks(self, **overrides) -> list:
        """The standard engine callback stack implied by this config.

        Thin wrapper over :func:`repro.engine.standard_callbacks` so every
        synthesizer derives logging / early stopping / checkpointing from
        the same knobs; ``overrides`` customises the display (prefix,
        labels, extra metrics) or the monitored loss key.
        """
        from repro.engine.callbacks import standard_callbacks

        options = dict(
            verbose=self.verbose,
            log_every=self.log_every,
            patience=self.patience,
            min_delta=self.min_delta,
            checkpoint_dir=self.checkpoint_dir,
            checkpoint_every=self.checkpoint_every,
            metrics=self.metrics,
        )
        options.update(overrides)
        return standard_callbacks(**options)

    def with_overrides(self, **kwargs) -> "KiNETGANConfig":
        """A copy of this config with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **kwargs)
