"""Loss terms specific to KiNETGAN training.

The generator loss (paper equation 4) combines three signals; the
adversarial and knowledge terms are produced by ``D_M`` and ``D_KG``
respectively, and the condition penalty implemented here ties the generated
discrete attributes to the requested condition vector (section III-A-2):
``BCE(C, C_hat)`` averaged over the batch, where ``C_hat`` is the softmax
block the generator produced for each conditional attribute.
"""

from __future__ import annotations

import numpy as np

from repro.tabular.sampler import ConditionSampler
from repro.tabular.transformer import DataTransformer

__all__ = ["condition_penalty"]

_EPS = 1e-6


def condition_penalty(
    fake: np.ndarray,
    condition: np.ndarray,
    sampler: ConditionSampler,
    transformer: DataTransformer,
) -> tuple[float, np.ndarray]:
    """Binary cross entropy between the condition vector and generated attributes.

    Parameters
    ----------
    fake:
        Activated generator output, shape ``(batch, output_dim)``.
    condition:
        The condition matrix ``C`` of shape ``(batch, condition_dim)``.
    sampler:
        The condition sampler that owns the layout of ``C``.
    transformer:
        The data transformer that owns the layout of ``fake``.

    Returns
    -------
    (loss, grad):
        The scalar penalty and its gradient with respect to ``fake``
        (non-zero only in the one-hot blocks of conditional attributes whose
        condition block is active).
    """
    if fake.shape[0] != condition.shape[0]:
        raise ValueError("fake and condition batches differ in size")
    # The penalty runs in the generator's dtype; float64 condition vectors
    # against a float32 fake batch round once here (no-op for float64).
    condition = np.asarray(condition, dtype=fake.dtype)
    grad = np.zeros_like(fake)
    total_loss = 0.0
    total_terms = 0

    for column in sampler.conditional_columns:
        cond_slice = sampler.condition_slice(column)
        target = condition[:, cond_slice]
        # Rows whose condition constrains this column (non-zero block).
        active = target.sum(axis=1) > 0
        if not active.any():
            continue
        info = transformer.column_info(column)
        data_slice = info.onehot_slice
        prediction = np.clip(fake[:, data_slice], _EPS, 1.0 - _EPS)
        t = target[active]
        p = prediction[active]
        loss = -(t * np.log(p) + (1.0 - t) * np.log(1.0 - p))
        count = p.size
        total_loss += float(loss.sum())
        total_terms += count
        grad_block = (p - t) / (p * (1.0 - p))
        block = np.zeros_like(prediction)
        block[active] = grad_block
        grad[:, data_slice] += block

    if total_terms == 0:
        return 0.0, grad
    grad /= total_terms
    return total_loss / total_terms, grad
