"""The KiNETGAN training loop, expressed as an engine train step.

One training step follows the paper's framework (figure 1):

1. **Discriminator step(s)** -- sample a condition batch (training-by-
   sampling), fetch matching real rows, generate fakes under the same
   conditions, and update the real/fake discriminator ``D_M`` with binary
   cross entropy.
2. **Knowledge head step** -- update the learned head of ``D_KG`` on valid
   combinations (real rows, KG-enumerated combinations) versus invalid ones
   (corrupted rows, generated rows the exact KG query rejects).
3. **Generator step** -- generate a fresh fake batch and descend the sum of
   (a) the non-saturating adversarial loss through ``D_M``, (b) the
   knowledge loss through ``D_KG``'s head weighted by ``lambda_knowledge``
   (equation 3/4), and (c) the condition cross-entropy penalty weighted by
   ``lambda_condition`` (section III-A-2).

The epoch/batch iteration, metric averaging, periodic logging, early
stopping and checkpointing all live in :class:`repro.engine.TrainingEngine`;
this module only contributes the model-specific :class:`KiNETGANStep` and
keeps the public :class:`TrainingHistory` record format stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import KiNETGANConfig
from repro.core.discriminator import DataDiscriminator
from repro.core.generator import ConditionalGenerator
from repro.core.kg_discriminator import KnowledgeGuidedDiscriminator
from repro.core.losses import condition_penalty
from repro.engine import Callback, TrainingEngine, TrainStep, seeded_rng
from repro.knowledge.reasoner import KGReasoner
from repro.neural.losses import BinaryCrossEntropy
from repro.neural.network import Sequential
from repro.neural.optimizers import Adam
from repro.tabular.sampler import ConditionSampler
from repro.tabular.table import Table
from repro.tabular.transformer import DataTransformer

__all__ = ["TrainingHistory", "KiNETGANStep", "KiNETGANTrainer"]


@dataclass
class TrainingHistory:
    """Per-epoch loss traces recorded during training."""

    generator_loss: list[float] = field(default_factory=list)
    discriminator_loss: list[float] = field(default_factory=list)
    condition_loss: list[float] = field(default_factory=list)
    knowledge_loss: list[float] = field(default_factory=list)
    validity_rate: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.generator_loss)

    def last(self) -> dict[str, float]:
        """The most recent epoch's losses as a dict (empty if untrained)."""
        if not self.generator_loss:
            return {}
        return {
            "generator_loss": self.generator_loss[-1],
            "discriminator_loss": self.discriminator_loss[-1],
            "condition_loss": self.condition_loss[-1],
            "knowledge_loss": self.knowledge_loss[-1],
            "validity_rate": self.validity_rate[-1] if self.validity_rate else float("nan"),
        }


class _HistoryAdapter(Callback):
    """Mirrors the engine's epoch metrics into the public history lists."""

    def __init__(self, history: TrainingHistory) -> None:
        self.history = history

    def on_epoch_end(self, engine: TrainingEngine, epoch: int, metrics: dict) -> None:
        self.history.discriminator_loss.append(metrics["discriminator_loss"])
        self.history.generator_loss.append(metrics["generator_loss"])
        self.history.condition_loss.append(metrics["condition_loss"])
        self.history.knowledge_loss.append(metrics["knowledge_loss"])


class KiNETGANStep(TrainStep):
    """One KiNETGAN mini-batch update (paper figure 1), engine-pluggable."""

    def __init__(
        self,
        trainer: "KiNETGANTrainer",
        real_matrix: np.ndarray,
        table: Table | None = None,
    ) -> None:
        self.trainer = trainer
        self.real_matrix = real_matrix
        # Real rows never change across a fit, so their exact KG validity
        # and record dicts are computed once here instead of once per step;
        # each step then just gathers by the sampled row indices.  The
        # validator is deterministic (no rng draws), so this is
        # bit-identical to the per-step query.
        self._kg_valid: np.ndarray | None = None
        self._kg_records: list[dict] | None = None
        kg = trainer.kg_discriminator
        if kg is not None and kg.head is not None and table is not None:
            self._kg_valid = kg.hard_scores(table)
            self._kg_records = [table.row(i) for i in range(table.n_rows)]

    def step(self, rng: np.random.Generator, batch_index: int) -> dict[str, float]:
        trainer = self.trainer
        config = trainer.config
        d_loss = 0.0
        fake_for_kg = None
        cond = None
        for _ in range(config.discriminator_steps):
            cond = trainer.sampler.sample(config.batch_size, rng)
            real = self.real_matrix[cond.row_indices]
            noise = rng.normal(size=(config.batch_size, config.embedding_dim))
            fake = trainer.generator.forward(noise, cond.vector, training=True)
            d_loss += trainer._discriminator_step(real, fake, cond.vector)
            fake_for_kg = fake
        d_loss /= config.discriminator_steps

        k_loss = 0.0
        if trainer.kg_discriminator is not None and cond is not None:
            if self._kg_valid is not None and self._kg_records is not None:
                # ``real`` is the last d-step's gather of the same indices,
                # so it is reused rather than gathered a second time.
                idx = cond.row_indices
                limit = max(config.knowledge_negatives_per_batch, 1)
                k_loss = trainer.kg_discriminator.train_step(
                    real_table=None,
                    real_matrix=real,
                    fake_matrix=fake_for_kg,
                    negatives=config.knowledge_negatives_per_batch,
                    real_valid=self._kg_valid[idx],
                    real_records=[self._kg_records[i] for i in idx[:limit]],
                )
            else:
                real_rows = trainer.sampler.real_batch(cond)
                k_loss = trainer.kg_discriminator.train_step(
                    real_table=real_rows,
                    real_matrix=self.real_matrix[cond.row_indices],
                    fake_matrix=fake_for_kg,
                    negatives=config.knowledge_negatives_per_batch,
                )

        g_loss, c_loss, kg_gen_loss = trainer._generator_step(config)
        return {
            "discriminator_loss": d_loss,
            "generator_loss": g_loss,
            "condition_loss": c_loss,
            "knowledge_loss": k_loss + kg_gen_loss,
        }

    def checkpoint_targets(self) -> dict[str, Sequential]:
        targets = {
            "generator": self.trainer.generator.network,
            "discriminator": self.trainer.discriminator.network,
        }
        kg = self.trainer.kg_discriminator
        if kg is not None and kg.head is not None:
            targets["kg_head"] = kg.head
        return targets


class KiNETGANTrainer:
    """Orchestrates KiNETGAN training over a fitted transformer and sampler."""

    def __init__(
        self,
        config: KiNETGANConfig,
        transformer: DataTransformer,
        sampler: ConditionSampler,
        reasoner: KGReasoner | None = None,
        generator: ConditionalGenerator | None = None,
        discriminator: DataDiscriminator | None = None,
    ) -> None:
        """``generator`` / ``discriminator`` may be supplied pre-built (the
        OCTGAN baseline injects ODE-augmented networks this way); by default
        the standard residual generator and MLP discriminator are created."""
        self.config = config
        self.transformer = transformer
        self.sampler = sampler
        self.rng = seeded_rng(config.seed)

        if generator is None:
            generator = ConditionalGenerator(
                noise_dim=config.embedding_dim,
                condition_dim=sampler.condition_dim,
                transformer=transformer,
                hidden_dims=config.generator_dims,
                gumbel_tau=config.gumbel_tau,
                rng=self.rng,
                dtype=config.np_dtype,
            )
        self.generator = generator
        if discriminator is None:
            discriminator = DataDiscriminator(
                data_dim=transformer.output_dim,
                condition_dim=sampler.condition_dim,
                hidden_dims=config.discriminator_dims,
                dropout=config.dropout,
                rng=self.rng,
                dtype=config.np_dtype,
            )
        self.discriminator = discriminator
        self.kg_discriminator: KnowledgeGuidedDiscriminator | None = None
        if reasoner is not None and config.use_knowledge_discriminator:
            self.kg_discriminator = KnowledgeGuidedDiscriminator(
                reasoner=reasoner,
                transformer=transformer,
                hidden_dims=config.knowledge_head_dims,
                learning_rate=config.discriminator_lr,
                learned_head=True,
                rng=self.rng,
                dtype=config.np_dtype,
            )

        self._opt_g = Adam(self.generator.parameters(), lr=config.generator_lr, betas=(0.5, 0.9))
        self._opt_d = Adam(
            self.discriminator.parameters(), lr=config.discriminator_lr, betas=(0.5, 0.9)
        )
        self._bce = BinaryCrossEntropy(from_logits=True)
        # Constant BCE target arrays, cached per logits shape: the three
        # discriminator/generator BCE terms per step would otherwise rebuild
        # identical ones/zeros batches thousands of times per fit.
        self._bce_targets: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray]] = {}
        self.history = TrainingHistory()
        self.engine: TrainingEngine | None = None

    # ------------------------------------------------------------------ #
    def fit(self, table: Table) -> TrainingHistory:
        """Train on ``table`` (already the table the sampler was built from)."""
        config = self.config
        real_matrix = self.transformer.transform(table, rng=self.rng)
        step = KiNETGANStep(self, real_matrix, table=table)
        callbacks: list[Callback] = [_HistoryAdapter(self.history)]
        callbacks += config.engine_callbacks(
            prefix="[KiNETGAN]",
            labels={
                "discriminator_loss": "D",
                "generator_loss": "G",
                "condition_loss": "cond",
                "knowledge_loss": "KG",
            },
            extra=self._log_validity,
            monitor="generator_loss",
        )
        self.engine = TrainingEngine(
            step,
            epochs=config.epochs,
            batch_size=config.batch_size,
            n_rows=table.n_rows,
            rng=self.rng,
            callbacks=callbacks,
        )
        self.engine.run()
        return self.history

    def _log_validity(self, engine: TrainingEngine, epoch: int, metrics: dict) -> dict:
        """Extra metric hook for the engine logger: KG validity (recorded)."""
        validity = self._estimate_validity()
        self.history.validity_rate.append(validity)
        return {"validity": validity}

    # ------------------------------------------------------------------ #
    def _targets(self, shape: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(ones, zeros)`` BCE target arrays for ``shape``.

        Built in the discriminator's dtype so the BCE loss (which follows
        its prediction's dtype) never re-casts them per step.
        """
        cached = self._bce_targets.get(shape)
        if cached is None:
            dtype = self.discriminator.network.dtype
            cached = (np.ones(shape, dtype=dtype), np.zeros(shape, dtype=dtype))
            self._bce_targets[shape] = cached
        return cached

    def _discriminator_step(
        self, real: np.ndarray, fake: np.ndarray, condition: np.ndarray
    ) -> float:
        self.discriminator.zero_grad()
        logits_real = self.discriminator.forward(real, condition, training=True)
        ones, zeros = self._targets(logits_real.shape)
        loss_real = self._bce.forward(logits_real, ones)
        self.discriminator.backward(self._bce.backward())
        logits_fake = self.discriminator.forward(fake, condition, training=True)
        loss_fake = self._bce.forward(logits_fake, zeros)
        self.discriminator.backward(self._bce.backward())
        self._opt_d.step()
        return loss_real + loss_fake

    def _generator_step(self, config: KiNETGANConfig) -> tuple[float, float, float]:
        cond = self.sampler.sample(config.batch_size, self.rng)
        noise = self.rng.normal(size=(config.batch_size, config.embedding_dim))
        fake = self.generator.forward(noise, cond.vector, training=True)

        # Adversarial (non-saturating) term through D_M.
        logits_fake = self.discriminator.forward(fake, cond.vector, training=True)
        ones, _zeros = self._targets(logits_fake.shape)
        adv_loss = self._bce.forward(logits_fake, ones)
        grad_fake = self.discriminator.backward(self._bce.backward())
        self.discriminator.zero_grad()

        # Condition penalty (section III-A-2).
        cond_loss, grad_cond = condition_penalty(fake, cond.vector, self.sampler, self.transformer)

        # Knowledge term through the learned head of D_KG (equation 3), plus
        # the exact valid-set penalty obtained by querying the KG with the
        # sampled condition values (section III-B-1).
        kg_loss = 0.0
        grad_kg: np.ndarray | float = 0.0
        if self.kg_discriminator is not None and config.lambda_knowledge > 0:
            kg_loss, grad_kg = self.kg_discriminator.generator_loss_and_grad(fake)
            if config.use_valid_set_loss:
                vs_loss, grad_vs = self.kg_discriminator.valid_set_loss_and_grad(
                    fake, cond
                )
                kg_loss += vs_loss
                grad_kg += grad_vs

        # ``grad_fake + lambda_c * grad_cond + lambda_k * grad_kg`` fused in
        # place through ``grad_cond`` (both penalty grads are freshly
        # allocated per call).  IEEE addition is commutative bitwise, so
        # accumulating left-to-right into the scaled condition grad matches
        # the reference expression exactly while dropping three batch-sized
        # temporaries per generator step.
        np.multiply(grad_cond, config.lambda_condition, out=grad_cond)
        grad_cond += grad_fake
        if isinstance(grad_kg, np.ndarray):
            np.multiply(grad_kg, config.lambda_knowledge, out=grad_kg)
            grad_cond += grad_kg
        else:
            grad_cond += config.lambda_knowledge * grad_kg
        total_grad = grad_cond
        self.generator.zero_grad()
        self.generator.backward(total_grad)
        self._opt_g.step()
        return adv_loss, cond_loss, kg_loss

    # ------------------------------------------------------------------ #
    def _estimate_validity(self, n: int = 256) -> float:
        """Fraction of freshly generated rows that satisfy the knowledge graph."""
        if self.kg_discriminator is None:
            return float("nan")
        matrix = self.generate_matrix(n)
        return self.kg_discriminator.validity_rate(matrix)

    def generate_matrix(
        self,
        n: int,
        conditions: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        hard: bool = True,
    ) -> np.ndarray:
        """Generate ``n`` transformed rows (one-hot blocks hardened by default)."""
        rng = rng if rng is not None else self.rng
        if conditions is None:
            conditions = self.sampler.empirical_conditions(n, rng)
        if conditions.shape[0] != n:
            raise ValueError("conditions batch size does not match n")
        outputs: list[np.ndarray] = []
        batch_size = self.config.batch_size
        for start in range(0, n, batch_size):
            end = min(start + batch_size, n)
            noise = rng.normal(size=(end - start, self.config.embedding_dim))
            fake = self.generator.forward(noise, conditions[start:end], training=False)
            outputs.append(fake)
        matrix = np.concatenate(outputs, axis=0)
        if hard:
            matrix = self.transformer.harden(matrix, inplace=True)
        return matrix
