"""The KiNETGAN training loop.

One training step follows the paper's framework (figure 1):

1. **Discriminator step(s)** -- sample a condition batch (training-by-
   sampling), fetch matching real rows, generate fakes under the same
   conditions, and update the real/fake discriminator ``D_M`` with binary
   cross entropy.
2. **Knowledge head step** -- update the learned head of ``D_KG`` on valid
   combinations (real rows, KG-enumerated combinations) versus invalid ones
   (corrupted rows, generated rows the exact KG query rejects).
3. **Generator step** -- generate a fresh fake batch and descend the sum of
   (a) the non-saturating adversarial loss through ``D_M``, (b) the
   knowledge loss through ``D_KG``'s head weighted by ``lambda_knowledge``
   (equation 3/4), and (c) the condition cross-entropy penalty weighted by
   ``lambda_condition`` (section III-A-2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import KiNETGANConfig
from repro.core.discriminator import DataDiscriminator
from repro.core.generator import ConditionalGenerator
from repro.core.kg_discriminator import KnowledgeGuidedDiscriminator
from repro.core.losses import condition_penalty
from repro.knowledge.reasoner import KGReasoner
from repro.neural.losses import BinaryCrossEntropy
from repro.neural.optimizers import Adam
from repro.tabular.sampler import ConditionSampler
from repro.tabular.table import Table
from repro.tabular.transformer import DataTransformer

__all__ = ["TrainingHistory", "KiNETGANTrainer"]


@dataclass
class TrainingHistory:
    """Per-epoch loss traces recorded during training."""

    generator_loss: list[float] = field(default_factory=list)
    discriminator_loss: list[float] = field(default_factory=list)
    condition_loss: list[float] = field(default_factory=list)
    knowledge_loss: list[float] = field(default_factory=list)
    validity_rate: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.generator_loss)

    def last(self) -> dict[str, float]:
        """The most recent epoch's losses as a dict (empty if untrained)."""
        if not self.generator_loss:
            return {}
        return {
            "generator_loss": self.generator_loss[-1],
            "discriminator_loss": self.discriminator_loss[-1],
            "condition_loss": self.condition_loss[-1],
            "knowledge_loss": self.knowledge_loss[-1],
            "validity_rate": self.validity_rate[-1] if self.validity_rate else float("nan"),
        }


class KiNETGANTrainer:
    """Orchestrates KiNETGAN training over a fitted transformer and sampler."""

    def __init__(
        self,
        config: KiNETGANConfig,
        transformer: DataTransformer,
        sampler: ConditionSampler,
        reasoner: KGReasoner | None = None,
        generator: ConditionalGenerator | None = None,
        discriminator: DataDiscriminator | None = None,
    ) -> None:
        """``generator`` / ``discriminator`` may be supplied pre-built (the
        OCTGAN baseline injects ODE-augmented networks this way); by default
        the standard residual generator and MLP discriminator are created."""
        self.config = config
        self.transformer = transformer
        self.sampler = sampler
        self.rng = np.random.default_rng(config.seed)

        self.generator = generator if generator is not None else ConditionalGenerator(
            noise_dim=config.embedding_dim,
            condition_dim=sampler.condition_dim,
            transformer=transformer,
            hidden_dims=config.generator_dims,
            gumbel_tau=config.gumbel_tau,
            rng=self.rng,
        )
        self.discriminator = discriminator if discriminator is not None else DataDiscriminator(
            data_dim=transformer.output_dim,
            condition_dim=sampler.condition_dim,
            hidden_dims=config.discriminator_dims,
            dropout=config.dropout,
            rng=self.rng,
        )
        self.kg_discriminator: KnowledgeGuidedDiscriminator | None = None
        if reasoner is not None and config.use_knowledge_discriminator:
            self.kg_discriminator = KnowledgeGuidedDiscriminator(
                reasoner=reasoner,
                transformer=transformer,
                hidden_dims=config.knowledge_head_dims,
                learning_rate=config.discriminator_lr,
                learned_head=True,
                rng=self.rng,
            )

        self._opt_g = Adam(self.generator.parameters(), lr=config.generator_lr, betas=(0.5, 0.9))
        self._opt_d = Adam(
            self.discriminator.parameters(), lr=config.discriminator_lr, betas=(0.5, 0.9)
        )
        self._bce = BinaryCrossEntropy(from_logits=True)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ #
    def fit(self, table: Table) -> TrainingHistory:
        """Train on ``table`` (already the table the sampler was built from)."""
        config = self.config
        real_matrix = self.transformer.transform(table, rng=self.rng)
        steps_per_epoch = max(1, table.n_rows // config.batch_size)

        for epoch in range(config.epochs):
            epoch_d, epoch_g, epoch_c, epoch_k = 0.0, 0.0, 0.0, 0.0
            for _ in range(steps_per_epoch):
                d_loss = 0.0
                fake_for_kg = None
                cond = None
                for _ in range(config.discriminator_steps):
                    cond = self.sampler.sample(config.batch_size, self.rng)
                    real = real_matrix[cond.row_indices]
                    noise = self.rng.normal(size=(config.batch_size, config.embedding_dim))
                    fake = self.generator.forward(noise, cond.vector, training=True)
                    d_loss += self._discriminator_step(real, fake, cond.vector)
                    fake_for_kg = fake
                d_loss /= config.discriminator_steps

                k_loss = 0.0
                if self.kg_discriminator is not None and cond is not None:
                    real_rows = self.sampler.real_batch(cond)
                    k_loss = self.kg_discriminator.train_step(
                        real_table=real_rows,
                        real_matrix=real_matrix[cond.row_indices],
                        fake_matrix=fake_for_kg,
                        negatives=config.knowledge_negatives_per_batch,
                    )

                g_loss, c_loss, kg_gen_loss = self._generator_step(config)
                epoch_d += d_loss
                epoch_g += g_loss
                epoch_c += c_loss
                epoch_k += k_loss + kg_gen_loss

            self.history.discriminator_loss.append(epoch_d / steps_per_epoch)
            self.history.generator_loss.append(epoch_g / steps_per_epoch)
            self.history.condition_loss.append(epoch_c / steps_per_epoch)
            self.history.knowledge_loss.append(epoch_k / steps_per_epoch)

            if config.verbose and (epoch + 1) % config.log_every == 0:
                validity = self._estimate_validity()
                self.history.validity_rate.append(validity)
                print(
                    f"[KiNETGAN] epoch {epoch + 1}/{config.epochs} "
                    f"D={self.history.discriminator_loss[-1]:.3f} "
                    f"G={self.history.generator_loss[-1]:.3f} "
                    f"cond={self.history.condition_loss[-1]:.3f} "
                    f"KG={self.history.knowledge_loss[-1]:.3f} "
                    f"validity={validity:.3f}"
                )
        return self.history

    # ------------------------------------------------------------------ #
    def _discriminator_step(
        self, real: np.ndarray, fake: np.ndarray, condition: np.ndarray
    ) -> float:
        self.discriminator.zero_grad()
        logits_real = self.discriminator.forward(real, condition, training=True)
        loss_real = self._bce.forward(logits_real, np.ones_like(logits_real))
        self.discriminator.backward(self._bce.backward())
        logits_fake = self.discriminator.forward(fake, condition, training=True)
        loss_fake = self._bce.forward(logits_fake, np.zeros_like(logits_fake))
        self.discriminator.backward(self._bce.backward())
        self._opt_d.step()
        return loss_real + loss_fake

    def _generator_step(self, config: KiNETGANConfig) -> tuple[float, float, float]:
        cond = self.sampler.sample(config.batch_size, self.rng)
        noise = self.rng.normal(size=(config.batch_size, config.embedding_dim))
        fake = self.generator.forward(noise, cond.vector, training=True)

        # Adversarial (non-saturating) term through D_M.
        logits_fake = self.discriminator.forward(fake, cond.vector, training=True)
        adv_loss = self._bce.forward(logits_fake, np.ones_like(logits_fake))
        grad_fake = self.discriminator.backward(self._bce.backward())
        self.discriminator.zero_grad()

        # Condition penalty (section III-A-2).
        cond_loss, grad_cond = condition_penalty(fake, cond.vector, self.sampler, self.transformer)

        # Knowledge term through the learned head of D_KG (equation 3), plus
        # the exact valid-set penalty obtained by querying the KG with the
        # sampled condition values (section III-B-1).
        kg_loss = 0.0
        grad_kg = 0.0
        if self.kg_discriminator is not None and config.lambda_knowledge > 0:
            kg_loss, grad_kg = self.kg_discriminator.generator_loss_and_grad(fake)
            if config.use_valid_set_loss:
                vs_loss, grad_vs = self.kg_discriminator.valid_set_loss_and_grad(
                    fake, cond.values
                )
                kg_loss += vs_loss
                grad_kg = grad_kg + grad_vs

        total_grad = (
            grad_fake
            + config.lambda_condition * grad_cond
            + config.lambda_knowledge * grad_kg
        )
        self.generator.zero_grad()
        self.generator.backward(total_grad)
        self._opt_g.step()
        return adv_loss, cond_loss, kg_loss

    # ------------------------------------------------------------------ #
    def _estimate_validity(self, n: int = 256) -> float:
        """Fraction of freshly generated rows that satisfy the knowledge graph."""
        if self.kg_discriminator is None:
            return float("nan")
        matrix = self.generate_matrix(n)
        return float(self.kg_discriminator.hard_scores_matrix(matrix).mean())

    def generate_matrix(
        self,
        n: int,
        conditions: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        hard: bool = True,
    ) -> np.ndarray:
        """Generate ``n`` transformed rows (one-hot blocks hardened by default)."""
        rng = rng if rng is not None else self.rng
        if conditions is None:
            conditions = self.sampler.empirical_conditions(n, rng)
        if conditions.shape[0] != n:
            raise ValueError("conditions batch size does not match n")
        outputs: list[np.ndarray] = []
        batch_size = self.config.batch_size
        for start in range(0, n, batch_size):
            end = min(start + batch_size, n)
            noise = rng.normal(size=(end - start, self.config.embedding_dim))
            fake = self.generator.forward(noise, conditions[start:end], training=False)
            outputs.append(fake)
        matrix = np.concatenate(outputs, axis=0)
        if hard:
            matrix = self._harden(matrix)
        return matrix

    def _harden(self, matrix: np.ndarray) -> np.ndarray:
        """Convert soft one-hot blocks to exact one-hot by argmax."""
        hardened = matrix.copy()
        for start, end, activation in self.transformer.activation_spans():
            if activation != "softmax":
                continue
            block = hardened[:, start:end]
            one_hot = np.zeros_like(block)
            one_hot[np.arange(len(block)), block.argmax(axis=1)] = 1.0
            hardened[:, start:end] = one_hot
        return hardened
