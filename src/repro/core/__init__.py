"""KiNETGAN: the paper's primary contribution.

The public entry point is :class:`repro.core.KiNETGAN`, a tabular
synthesizer that combines

* a **conditional generator** driven by a one-hot condition vector over the
  discrete attributes (paper section III-A, equations 1-2),
* **training-by-sampling** with uniform minority boosting so imbalanced
  attribute values are seen during training (section III-A-3),
* a **dual discriminator**: the standard real/fake discriminator ``D_M``
  plus the knowledge-guided discriminator ``D_KG`` that scores whether a
  generated attribute combination is valid according to the NetworkKG
  (section III-B, equation 3), and
* a generator loss combining the adversarial signal from both
  discriminators with a cross-entropy penalty tying the generated discrete
  attributes to the requested condition (equation 4).

Supporting pieces (generator / discriminator networks, the trainer and the
configuration dataclass) are exported for ablation studies and tests.
"""

from repro.core.base import Synthesizer
from repro.core.config import KiNETGANConfig
from repro.core.condition import build_condition_matrix
from repro.core.generator import ConditionalGenerator, TabularOutputActivation
from repro.core.discriminator import DataDiscriminator
from repro.core.kg_discriminator import KnowledgeGuidedDiscriminator
from repro.core.losses import condition_penalty
from repro.core.trainer import KiNETGANTrainer, TrainingHistory
from repro.core.synthesizer import KiNETGAN

__all__ = [
    "Synthesizer",
    "KiNETGANConfig",
    "build_condition_matrix",
    "ConditionalGenerator",
    "TabularOutputActivation",
    "DataDiscriminator",
    "KnowledgeGuidedDiscriminator",
    "condition_penalty",
    "KiNETGANTrainer",
    "TrainingHistory",
    "KiNETGAN",
]
