"""The knowledge-guided discriminator ``D_KG`` (paper section III-B-1).

``D_KG`` judges whether a generated attribute combination is *valid*
according to the NetworkKG, independently of whether it looks statistically
real.  It has two parts:

* a **hard rule check**: the generated batch is decoded back into records
  and scored 0/1 by the :class:`~repro.knowledge.validator.BatchValidator`
  (an exact KG query, the paper's ``Q``);
* a **learned refinement head**: a small MLP over the transformed blocks of
  the KG-constrained columns, trained to separate valid combinations
  (real rows and combinations enumerated from the knowledge graph) from
  invalid ones (corrupted rows and generated rows the hard check rejects).
  The head provides the *differentiable* path through which the generator
  receives the knowledge signal (equation 3: ``D_C = D_KG + D_M``).
"""

from __future__ import annotations

import numpy as np

from repro.knowledge.reasoner import KGReasoner
from repro.knowledge.validator import BatchValidator
from repro.neural.layers import Dense, LeakyReLU
from repro.neural.losses import BinaryCrossEntropy
from repro.neural.network import Sequential
from repro.neural.optimizers import Adam
from repro.tabular.table import Table, factorize_values
from repro.tabular.transformer import DataTransformer

__all__ = ["KnowledgeGuidedDiscriminator"]

#: Semantic roles whose columns the knowledge graph constrains.
_KG_ROLES = (
    "event_type",
    "protocol",
    "source_ip",
    "destination_ip",
    "source_port",
    "destination_port",
)


class KnowledgeGuidedDiscriminator:
    """Dual (hard + learned) validity discriminator."""

    def __init__(
        self,
        reasoner: KGReasoner,
        transformer: DataTransformer,
        hidden_dims: tuple[int, ...] = (64,),
        learning_rate: float = 2e-3,
        learned_head: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.reasoner = reasoner
        self.validator = BatchValidator(reasoner)
        self.transformer = transformer
        self.learned_head = learned_head
        self.rng = rng if rng is not None else np.random.default_rng()

        schema_names = set(transformer.schema.names)
        self.kg_columns: list[str] = [
            reasoner.field_map[role]
            for role in _KG_ROLES
            if reasoner.field_map.get(role) in schema_names
        ]
        if not self.kg_columns:
            raise ValueError(
                "none of the knowledge-graph roles map to a column of the table schema"
            )
        self._role_by_column: dict[str, str] = {
            reasoner.field_map[role]: role
            for role in _KG_ROLES
            if reasoner.field_map.get(role) in schema_names
        }
        self._event_column = reasoner.field_map["event_type"]
        self._valid_mask_cache: dict[tuple[str, str], np.ndarray | None] = {}
        self._slices: list[slice] = [
            slice(transformer.column_info(name).start, transformer.column_info(name).end)
            for name in self.kg_columns
        ]
        self.input_dim = sum(s.stop - s.start for s in self._slices)

        self.head: Sequential | None = None
        self._optimizer: Adam | None = None
        self._loss = BinaryCrossEntropy(from_logits=True)
        if learned_head:
            layers = []
            width = self.input_dim
            for hidden in hidden_dims:
                layers.append(Dense(width, hidden, rng=self.rng, init="he"))
                layers.append(LeakyReLU(0.2))
                width = hidden
            layers.append(Dense(width, 1, rng=self.rng, init="glorot"))
            self.head = Sequential(layers)
            self._optimizer = Adam(self.head.parameters(), lr=learning_rate, betas=(0.5, 0.9))

    # ------------------------------------------------------------------ #
    # Hard (exact) validity
    # ------------------------------------------------------------------ #
    def hard_scores(self, table: Table) -> np.ndarray:
        """Exact 0/1 validity of decoded records (the KG query ``Q``)."""
        return self.validator.table_scores(table)

    def hard_scores_matrix(self, matrix: np.ndarray, batch_size: int = 0) -> np.ndarray:
        """Exact validity of transformed rows (decoded internally).

        With ``batch_size > 0`` the matrix is decoded and scored in chunks,
        which bounds peak memory when callers estimate validity over large
        generated samples.
        """
        if batch_size <= 0 or len(matrix) <= batch_size:
            return self.hard_scores(self.transformer.inverse_transform(matrix))
        chunks = [
            self.hard_scores(self.transformer.inverse_transform(matrix[start : start + batch_size]))
            for start in range(0, len(matrix), batch_size)
        ]
        return np.concatenate(chunks)

    def validity_rate(self, matrix: np.ndarray, batch_size: int = 512) -> float:
        """Mean exact validity of a transformed batch (scored in chunks).

        This is the one code path shared by the trainer's
        ``_estimate_validity`` and the engine's validity logging callback.
        """
        if len(matrix) == 0:
            return float("nan")
        return float(self.hard_scores_matrix(matrix, batch_size=batch_size).mean())

    # ------------------------------------------------------------------ #
    # Learned refinement head
    # ------------------------------------------------------------------ #
    def _extract(self, matrix: np.ndarray) -> np.ndarray:
        return np.concatenate([matrix[:, s] for s in self._slices], axis=1)

    def _scatter(self, grad_kg: np.ndarray, width: int) -> np.ndarray:
        grad = np.zeros((grad_kg.shape[0], width), dtype=np.float64)
        cursor = 0
        for s in self._slices:
            size = s.stop - s.start
            grad[:, s] = grad_kg[:, cursor : cursor + size]
            cursor += size
        return grad

    def head_logits(self, matrix: np.ndarray, training: bool = True) -> np.ndarray:
        """Learned validity logits for a batch of transformed rows."""
        if self.head is None:
            raise RuntimeError("learned head is disabled")
        return self.head.forward(self._extract(matrix), training=training)

    def head_scores(self, matrix: np.ndarray) -> np.ndarray:
        """Learned validity probabilities in [0, 1]."""
        logits = self.head_logits(matrix, training=False)
        return 1.0 / (1.0 + np.exp(-np.clip(logits[:, 0], -60, 60)))

    # ------------------------------------------------------------------ #
    # Training data for the head
    # ------------------------------------------------------------------ #
    def _corrupt_records(self, records: list[dict]) -> list[dict]:
        """Randomly perturb KG-constrained attributes to manufacture negatives."""
        corrupted: list[dict] = []
        schema = self.transformer.schema
        categorical_kg = [name for name in self.kg_columns if schema.column(name).is_categorical]
        continuous_kg = [name for name in self.kg_columns if schema.column(name).is_continuous]
        for record in records:
            clone = dict(record)
            if categorical_kg and (not continuous_kg or self.rng.uniform() < 0.7):
                column = categorical_kg[self.rng.integers(0, len(categorical_kg))]
                categories = schema.column(column).categories
                clone[column] = categories[self.rng.integers(0, len(categories))]
            elif continuous_kg:
                column = continuous_kg[self.rng.integers(0, len(continuous_kg))]
                spec = schema.column(column)
                low = spec.minimum if spec.minimum is not None else 0.0
                high = spec.maximum if spec.maximum is not None else 65535.0
                clone[column] = float(self.rng.uniform(low, high))
            corrupted.append(clone)
        return corrupted

    def train_step(
        self,
        real_table: Table,
        real_matrix: np.ndarray,
        fake_matrix: np.ndarray,
        negatives: int = 64,
    ) -> float:
        """One optimisation step of the learned head.

        Positives: the real rows (valid by construction of the KG) -- plus
        their exact validity is re-checked so mislabelled rows are dropped.
        Negatives: corrupted copies of real rows that the hard check rejects,
        plus generated rows the hard check rejects.
        """
        if self.head is None or self._optimizer is None:
            return 0.0
        records = real_table.to_records()
        real_valid = self.validator.table_scores(real_table)

        # Manufacture invalid records by corrupting real ones.
        pool = self._corrupt_records(records[: max(negatives, 1)])
        pool_scores = self.validator.record_scores(pool)
        invalid_records = [r for r, s in zip(pool, pool_scores) if s == 0.0]

        inputs = [real_matrix]
        targets = [real_valid[:, None]]
        if invalid_records:
            invalid_table = Table.from_records(self.transformer.schema, invalid_records)
            invalid_matrix = self.transformer.transform(invalid_table, rng=self.rng)
            inputs.append(invalid_matrix)
            targets.append(np.zeros((len(invalid_records), 1)))
        if fake_matrix is not None and len(fake_matrix):
            fake_valid = self.hard_scores_matrix(fake_matrix)
            inputs.append(fake_matrix)
            targets.append(fake_valid[:, None])

        batch = np.concatenate(inputs, axis=0)
        target = np.concatenate(targets, axis=0)
        logits = self.head.forward(self._extract(batch), training=True)
        loss = self._loss.forward(logits, target)
        self.head.zero_grad()
        self.head.backward(self._loss.backward())
        self._optimizer.step()
        return loss

    # ------------------------------------------------------------------ #
    # Valid-set constraint (the paper's direct KG query for condition C)
    # ------------------------------------------------------------------ #
    def _valid_mask(self, column: str, event_name: str) -> np.ndarray | None:
        """Boolean mask of the column's categories that the KG allows for
        ``event_name``, or ``None`` when the KG does not constrain them."""
        key = (column, event_name)
        if key in self._valid_mask_cache:
            return self._valid_mask_cache[key]
        mask: np.ndarray | None = None
        role = self._role_by_column.get(column)
        if (
            role is not None
            and role not in ("event_type", "source_port")
            and self.reasoner.has_event(event_name)
        ):
            try:
                valid = self.reasoner.valid_values(role, event_name)
            except ValueError:
                valid = set()
            if valid:
                categories = list(self.transformer.encoder(column).categories)
                normalised = set(valid)
                for value in list(valid):
                    try:
                        normalised.add(int(float(value)))
                    except (TypeError, ValueError):
                        pass
                flags = []
                for category in categories:
                    hit = category in normalised
                    if not hit:
                        try:
                            hit = int(float(category)) in normalised
                        except (TypeError, ValueError):
                            hit = False
                    flags.append(hit)
                candidate = np.asarray(flags, dtype=bool)
                # An all-true or all-false mask carries no usable signal.
                if candidate.any() and not candidate.all():
                    mask = candidate
        self._valid_mask_cache[key] = mask
        return mask

    def valid_set_loss_and_grad(
        self, fake_matrix: np.ndarray, condition_values
    ) -> tuple[float, np.ndarray]:
        """Penalise generator probability mass on KG-invalid categories.

        Following section III-B-1, the knowledge graph is queried with the
        condition-vector values (in particular the event type) and returns,
        per KG-constrained attribute, the set of valid values.  The loss for
        each constrained one-hot block is ``-log`` of the generated
        probability mass inside the valid set, so the generator is pushed to
        place its mass on combinations the KG deems valid.  Unlike the
        learned refinement head this signal is exact from the first epoch.

        ``condition_values`` is either a list of per-row ``{attribute:
        value}`` dicts or a :class:`~repro.tabular.sampler.ConditionBatch`
        (the trainer's hot path); either way, rows are grouped by event type
        so each (event, column) constraint is evaluated with one batched
        masked sum rather than a Python loop over rows.
        """
        from repro.tabular.sampler import ConditionBatch

        grad = np.zeros_like(fake_matrix)
        if isinstance(condition_values, ConditionBatch):
            if len(condition_values) != fake_matrix.shape[0]:
                raise ValueError("condition_values length does not match the fake batch")
            try:
                events = condition_values.column_values(self._event_column)
            except KeyError:
                events = np.asarray(
                    [values.get(self._event_column) for values in condition_values.values],
                    dtype=object,
                )
        else:
            if len(condition_values) != fake_matrix.shape[0]:
                raise ValueError("condition_values length does not match the fake batch")
            events = np.asarray(
                [values.get(self._event_column) for values in condition_values],
                dtype=object,
            )

        schema = self.transformer.schema
        total_loss = 0.0
        total_terms = 0
        eps = 1e-6
        event_codes, event_names = factorize_values(events)
        # Row partition per event, computed once and shared by every column.
        event_rows = [
            np.nonzero(event_codes == event_id)[0] for event_id in range(len(event_names))
        ]
        for column in self.kg_columns:
            if column == self._event_column or not schema.column(column).is_categorical:
                continue
            info = self.transformer.column_info(column)
            block_slice = slice(info.start, info.end)
            block = np.clip(fake_matrix[:, block_slice], eps, 1.0)
            columns_global = np.arange(info.start, info.end)
            for event_id, event_name in enumerate(event_names):
                if event_name is None:
                    continue
                mask = self._valid_mask(column, str(event_name))
                if mask is None:
                    continue
                rows = event_rows[event_id]
                mass = np.clip(block[rows][:, mask].sum(axis=1), eps, 1.0)
                total_loss += float(-np.log(mass).sum())
                grad[rows[:, None], columns_global[mask][None, :]] += -1.0 / mass[:, None]
                total_terms += len(rows)
        if total_terms == 0:
            return 0.0, grad
        grad /= total_terms
        return total_loss / total_terms, grad

    # ------------------------------------------------------------------ #
    # Generator feedback
    # ------------------------------------------------------------------ #
    def generator_loss_and_grad(self, fake_matrix: np.ndarray) -> tuple[float, np.ndarray]:
        """Non-saturating validity loss and its gradient w.r.t. the fake batch.

        The generator is pushed to produce combinations the learned head
        deems valid; the gradient is scattered back to the full transformed
        width so the trainer can add it to the adversarial gradient.
        """
        if self.head is None:
            return 0.0, np.zeros_like(fake_matrix)
        logits = self.head.forward(self._extract(fake_matrix), training=True)
        target = np.ones_like(logits)
        loss = self._loss.forward(logits, target)
        grad_logits = self._loss.backward()
        self.head.zero_grad()
        grad_kg_input = self.head.backward(grad_logits)
        # Head gradients from this pass must not update the head itself.
        self.head.zero_grad()
        return loss, self._scatter(grad_kg_input, fake_matrix.shape[1])

    # ------------------------------------------------------------------ #
    def combined_scores(self, matrix: np.ndarray) -> np.ndarray:
        """``D_KG`` score per row: exact validity plus the learned probability.

        This is the quantity added to ``D_M`` in equation 3 when reporting
        discriminator scores; the hard part dominates (it is exact), the
        learned part keeps the signal smooth near the decision boundary.
        """
        hard = self.hard_scores_matrix(matrix)
        if self.head is None:
            return hard
        return 0.5 * (hard + self.head_scores(matrix))
