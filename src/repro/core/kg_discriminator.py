"""The knowledge-guided discriminator ``D_KG`` (paper section III-B-1).

``D_KG`` judges whether a generated attribute combination is *valid*
according to the NetworkKG, independently of whether it looks statistically
real.  It has two parts:

* a **hard rule check**: the generated batch is decoded back into records
  and scored 0/1 by the :class:`~repro.knowledge.validator.BatchValidator`
  (an exact KG query, the paper's ``Q``);
* a **learned refinement head**: a small MLP over the transformed blocks of
  the KG-constrained columns, trained to separate valid combinations
  (real rows and combinations enumerated from the knowledge graph) from
  invalid ones (corrupted rows and generated rows the hard check rejects).
  The head provides the *differentiable* path through which the generator
  receives the knowledge signal (equation 3: ``D_C = D_KG + D_M``).
"""

from __future__ import annotations

import numpy as np

from repro.knowledge.reasoner import KGReasoner
from repro.knowledge.validator import BatchValidator
from repro.neural.layers import Dense, LeakyReLU
from repro.neural.losses import BinaryCrossEntropy
from repro.neural.network import Sequential
from repro.neural.optimizers import Adam
from repro.tabular.table import Table, factorize_values
from repro.tabular.transformer import DataTransformer

__all__ = ["KnowledgeGuidedDiscriminator"]

#: Semantic roles whose columns the knowledge graph constrains.
_KG_ROLES = (
    "event_type",
    "protocol",
    "source_ip",
    "destination_ip",
    "source_port",
    "destination_port",
)


class KnowledgeGuidedDiscriminator:
    """Dual (hard + learned) validity discriminator."""

    def __init__(
        self,
        reasoner: KGReasoner,
        transformer: DataTransformer,
        hidden_dims: tuple[int, ...] = (64,),
        learning_rate: float = 2e-3,
        learned_head: bool = True,
        rng: np.random.Generator | None = None,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        self.reasoner = reasoner
        self.validator = BatchValidator(reasoner)
        self.transformer = transformer
        self.learned_head = learned_head
        self.rng = rng if rng is not None else np.random.default_rng()

        schema_names = set(transformer.schema.names)
        self.kg_columns: list[str] = [
            reasoner.field_map[role]
            for role in _KG_ROLES
            if reasoner.field_map.get(role) in schema_names
        ]
        if not self.kg_columns:
            raise ValueError(
                "none of the knowledge-graph roles map to a column of the table schema"
            )
        self._role_by_column: dict[str, str] = {
            reasoner.field_map[role]: role
            for role in _KG_ROLES
            if reasoner.field_map.get(role) in schema_names
        }
        self._event_column = reasoner.field_map["event_type"]
        self._valid_mask_cache: dict[tuple[str, str], np.ndarray | None] = {}
        #: ``(column, event) -> global column indices`` of the valid
        #: categories -- the scatter targets of ``valid_set_loss_and_grad``.
        self._valid_idx_cache: dict[tuple[str, str], np.ndarray | None] = {}
        self._slices: list[slice] = [
            slice(transformer.column_info(name).start, transformer.column_info(name).end)
            for name in self.kg_columns
        ]
        self.input_dim = sum(s.stop - s.start for s in self._slices)

        self.head: Sequential | None = None
        self._optimizer: Adam | None = None
        self._loss = BinaryCrossEntropy(from_logits=True)
        if learned_head:
            layers = []
            width = self.input_dim
            for hidden in hidden_dims:
                layers.append(Dense(width, hidden, rng=self.rng, init="he", dtype=dtype))
                layers.append(LeakyReLU(0.2))
                width = hidden
            layers.append(Dense(width, 1, rng=self.rng, init="glorot", dtype=dtype))
            self.head = Sequential(layers)
            self.head.consolidate()
            self._optimizer = Adam(self.head.parameters(), lr=learning_rate, betas=(0.5, 0.9))

    # ------------------------------------------------------------------ #
    # Hard (exact) validity
    # ------------------------------------------------------------------ #
    def hard_scores(self, table: Table) -> np.ndarray:
        """Exact 0/1 validity of decoded records (the KG query ``Q``)."""
        return self.validator.table_scores(table)

    def _score_plan(self) -> list[tuple]:
        """Per-column decode recipes for the KG-relevant columns only.

        Validity depends solely on the columns named in the reasoner's
        ``field_map``, so scoring a transformed batch does not need the full
        ``inverse_transform`` (which decodes every column and materialises a
        :class:`Table`).  Each recipe decodes one column with the exact
        arithmetic of the transformer's decode plan -- per-block argmax for
        one-hot columns, ``clip(clip(alpha) * 4 * sigma + mu)`` for
        mode-normalised ones -- so the decoded values, and therefore the
        scores, are bit-identical to the full-decode path.
        """
        plan = getattr(self, "_score_plan_cache", None)
        if plan is None:
            from repro.tabular.encoders import MinMaxScaler, ModeSpecificNormalizer

            plan = []
            schema = self.transformer.schema
            for name in dict.fromkeys(self.validator.reasoner.field_map.values()):
                if name not in schema.names:
                    continue
                info = self.transformer.column_info(name)
                encoder = self.transformer.encoder(name)
                spec = schema.column(name)
                if isinstance(encoder, ModeSpecificNormalizer):
                    lo = spec.minimum if spec.minimum is not None else -np.inf
                    hi = spec.maximum if spec.maximum is not None else np.inf
                    plan.append(
                        ("mode", name, info.start, info.end,
                         encoder.gmm.means, encoder.gmm.stds, lo, hi)
                    )
                elif isinstance(encoder, MinMaxScaler):
                    plan.append(("minmax", name, info.start, encoder,
                                 spec.minimum, spec.maximum))
                else:
                    plan.append(("onehot", name, info.start, info.end,
                                 encoder._categories_array))
            self._score_plan_cache = plan
        return plan

    def _validity_tables(self):
        """Precoded validity lookups over the encoders' category lists.

        A transformed row's decoded categorical values always come from the
        fixed per-column category lists, so every (event, category) validity
        decision can be resolved once up front: per membership role a
        ``(n_events, n_categories)`` boolean table, per port column either a
        category table (one-hot ports) or per-event integer bounds
        (mode-normalised source ports).  Scoring a batch is then a handful
        of argmax + table gathers with no per-value hashing.  The tables
        replicate :meth:`KGReasoner.validity_mask` exactly: ``None`` events
        skip all checks, unknown events are invalid, empty constraint sets
        leave a role unconstrained, and unparseable port categories violate
        whenever the row's event is known.  Returns ``None`` when the
        layout does not fit (then scoring falls back to the batched
        reasoner query).
        """
        cached = getattr(self, "_validity_tables_cache", "unset")
        if cached != "unset":
            return cached
        from repro.knowledge.reasoner import _numeric_column
        from repro.tabular.encoders import OneHotEncoder

        reasoner = self.validator.reasoner
        fm = reasoner.field_map
        tr = self.transformer
        names = set(tr.schema.names)
        event_col = fm["event_type"]
        dst_col = fm.get("destination_port")
        src_col = fm.get("source_port")
        usable = event_col in names and isinstance(tr.encoder(event_col), OneHotEncoder)
        if dst_col in names and not isinstance(tr.encoder(dst_col), OneHotEncoder):
            # Continuous destination ports need per-row set membership;
            # leave that to the reasoner's batched path.
            usable = False
        for role in reasoner._MEMBERSHIP_ATTRS:
            col = fm.get(role)
            if col in names and not isinstance(tr.encoder(col), OneHotEncoder):
                usable = False
        if not usable:
            self._validity_tables_cache = None
            return None

        events = list(tr.encoder(event_col).categories)
        n_events = len(events)
        skip = np.zeros(n_events, dtype=bool)
        base = np.ones(n_events, dtype=bool)
        constraints: list = [None] * n_events
        for e, value in enumerate(events):
            if value is None:
                skip[e] = True
                continue
            c = reasoner._constraints.get(value)
            constraints[e] = c
            if c is None:
                base[e] = False

        def port_table(col: str, check) -> tuple[int, int, np.ndarray]:
            cats = np.empty(len(tr.encoder(col).categories), dtype=object)
            cats[:] = list(tr.encoder(col).categories)
            floats, parseable = _numeric_column(cats)
            ints = np.zeros(len(cats), dtype=np.int64)
            ints[parseable] = np.trunc(floats[parseable]).astype(np.int64)
            tbl = np.ones((n_events, len(cats)), dtype=bool)
            for e, c in enumerate(constraints):
                if skip[e] or c is None:
                    continue
                ok = check(c, ints)
                tbl[e] = parseable if ok is None else parseable & ok
            info = tr.column_info(col)
            return col, info.start, info.end, tbl

        member = []
        for role, attr in reasoner._MEMBERSHIP_ATTRS.items():
            col = fm.get(role)
            if col not in names:
                continue
            cats = list(tr.encoder(col).categories)
            tbl = np.ones((n_events, len(cats)), dtype=bool)
            for e, c in enumerate(constraints):
                if skip[e] or c is None:
                    continue
                allowed = getattr(c, attr)
                if not allowed:
                    continue
                tbl[e] = np.fromiter(
                    (v in allowed for v in cats), dtype=bool, count=len(cats)
                )
            info = tr.column_info(col)
            member.append((col, info.start, info.end, tbl))

        def dst_check(c, ints):
            if not c.destination_ports and c.destination_port_range is None:
                return None  # unconstrained: only parseability applies
            ok = np.fromiter(
                (int(p) in c.destination_ports for p in ints),
                dtype=bool,
                count=len(ints),
            )
            if c.destination_port_range is not None:
                low, high = c.destination_port_range
                ok |= (ints >= low) & (ints <= high)
            return ok

        dst = port_table(dst_col, dst_check) if dst_col in names else None

        src = None
        if src_col in names:
            encoder = tr.encoder(src_col)
            if isinstance(encoder, OneHotEncoder):

                def src_check(c, ints):
                    if c.source_port_range is None:
                        return None
                    low, high = c.source_port_range
                    return (ints >= low) & (ints <= high)

                # For range-free events validity_mask applies no source-port
                # check at all, so the table row must be all-True there --
                # port_table's parseable-only default is wrong for them.
                _, start, end, tbl = port_table(src_col, src_check)
                for e, c in enumerate(constraints):
                    if not skip[e] and c is not None and c.source_port_range is None:
                        tbl[e] = True
                src = ("table", src_col, start, end, tbl)
            else:
                info = tr.column_info(src_col)
                spec = tr.schema.column(src_col)
                lo_bound = spec.minimum if spec.minimum is not None else -np.inf
                hi_bound = spec.maximum if spec.maximum is not None else np.inf
                lo = np.full(n_events, np.iinfo(np.int64).min, dtype=np.int64)
                hi = np.full(n_events, np.iinfo(np.int64).max, dtype=np.int64)
                active = np.zeros(n_events, dtype=bool)
                for e, c in enumerate(constraints):
                    if skip[e] or c is None or c.source_port_range is None:
                        continue
                    active[e] = True
                    lo[e], hi[e] = c.source_port_range
                src = (
                    "range", src_col, info.start, info.end,
                    encoder.gmm.means, encoder.gmm.stds,
                    lo_bound, hi_bound, lo, hi, active,
                )

        info_e = tr.column_info(event_col)
        self._validity_tables_cache = (info_e.start, info_e.end, base, member, dst, src)
        return self._validity_tables_cache

    def _record_tables(self):
        """Category-index views of :meth:`_validity_tables` for record dicts.

        Scoring a corrupted-record pool only needs ``{value: category_index}``
        dict lookups into the same precoded tables.  Returns ``None`` when
        the tables are unavailable.
        """
        cached = getattr(self, "_record_tables_cache", "unset")
        if cached != "unset":
            return cached
        tables = self._validity_tables()
        if tables is None:
            self._record_tables_cache = None
            return None
        _, _, base, member, dst, src = tables
        fm = self.validator.reasoner.field_map

        def index_for(col: str) -> dict:
            return {v: i for i, v in enumerate(self.transformer.encoder(col).categories)}

        cat_checks = [(col, index_for(col), tbl) for col, _, _, tbl in member]
        if dst is not None:
            col, _, _, tbl = dst
            cat_checks.append((col, index_for(col), tbl))
        src_range = None
        if src is not None:
            if src[0] == "table":
                _, col, _, _, tbl = src
                cat_checks.append((col, index_for(col), tbl))
            else:
                col, lo, hi, active = src[1], src[8], src[9], src[10]
                src_range = (col, lo, hi, active)
        event_col = fm["event_type"]
        self._record_tables_cache = (
            event_col, index_for(event_col), base, cat_checks, src_range
        )
        return self._record_tables_cache

    def _pool_scores(self, records: list[dict]) -> np.ndarray:
        """Per-record validity of full record dicts, mirroring ``is_valid``.

        Resolves each record against the precoded tables with one dict
        lookup per constrained column.  Any value outside the encoders'
        category lists falls back to the reasoner's per-record query for
        that record, so the scores are always exactly ``is_valid``'s.
        """
        tables = self._record_tables()
        if tables is None:
            return self.validator.record_scores(records)
        event_col, event_index, base, cat_checks, src_range = tables
        reasoner = self.validator.reasoner
        missing = object()
        scores = np.empty(len(records), dtype=np.float64)
        for i, record in enumerate(records):
            event = record.get(event_col)
            if event is None:
                scores[i] = 1.0
                continue
            e = event_index.get(event)
            if e is None:
                scores[i] = 1.0 if reasoner.is_valid(record) else 0.0
                continue
            if not base[e]:
                scores[i] = 0.0
                continue
            ok = True
            fallback = False
            for col, index, tbl in cat_checks:
                value = record.get(col, missing)
                if value is missing:
                    continue
                j = index.get(value)
                if j is None:
                    fallback = True
                    break
                if not tbl[e, j]:
                    ok = False
                    break
            if fallback:
                scores[i] = 1.0 if reasoner.is_valid(record) else 0.0
                continue
            if ok and src_range is not None:
                col, lo, hi, active = src_range
                if active[e] and col in record:
                    try:
                        port = int(float(record[col]))
                    except (TypeError, ValueError):
                        ok = False
                    else:
                        if not lo[e] <= port <= hi[e]:
                            ok = False
            scores[i] = 1.0 if ok else 0.0
        return scores

    def _hard_scores_fast(self, matrix: np.ndarray) -> np.ndarray:
        """Exact validity of transformed rows, decoding KG columns only."""
        tables = self._validity_tables()
        if tables is not None:
            e_start, e_end, base, member, dst, src = tables
            event = np.argmax(matrix[:, e_start:e_end], axis=1)
            valid = base[event]
            for _, start, end, tbl in member:
                valid &= tbl[event, np.argmax(matrix[:, start:end], axis=1)]
            if dst is not None:
                _, start, end, tbl = dst
                valid &= tbl[event, np.argmax(matrix[:, start:end], axis=1)]
            if src is not None:
                if src[0] == "table":
                    _, _, start, end, tbl = src
                    valid &= tbl[event, np.argmax(matrix[:, start:end], axis=1)]
                else:
                    (_, _, start, end, means, stds,
                     lo_bound, hi_bound, lo, hi, active) = src
                    act = active[event]
                    if act.any():
                        modes = np.argmax(matrix[:, start + 1 : end], axis=1)
                        alpha = np.clip(matrix[:, start], -1.0, 1.0)
                        x = np.clip(
                            alpha * 4.0 * stds[modes] + means[modes], lo_bound, hi_bound
                        )
                        finite = np.isfinite(x)
                        ints = np.trunc(np.where(finite, x, 0.0)).astype(np.int64)
                        valid &= ~act | (finite & (ints >= lo[event]) & (ints <= hi[event]))
            return valid.astype(np.float64)

        columns: dict[str, np.ndarray] = {}
        for recipe in self._score_plan():
            kind, name = recipe[0], recipe[1]
            if kind == "onehot":
                _, _, start, end, categories = recipe
                columns[name] = categories[np.argmax(matrix[:, start:end], axis=1)]
            elif kind == "mode":
                _, _, start, end, means, stds, lo, hi = recipe
                modes = np.argmax(matrix[:, start + 1 : end], axis=1)
                alpha = np.clip(matrix[:, start], -1.0, 1.0)
                columns[name] = np.clip(alpha * 4.0 * stds[modes] + means[modes], lo, hi)
            else:
                _, _, start, encoder, minimum, maximum = recipe
                values = encoder.inverse_transform(matrix[:, start])
                if minimum is not None:
                    values = np.maximum(values, minimum)
                if maximum is not None:
                    values = np.minimum(values, maximum)
                columns[name] = values
        return self.validator.reasoner.validity_mask(columns).astype(np.float64)

    def hard_scores_matrix(self, matrix: np.ndarray, batch_size: int = 0) -> np.ndarray:
        """Exact validity of transformed rows (decoded internally).

        Only the KG-relevant columns are decoded (see :meth:`_score_plan`);
        the result is bit-identical to scoring the fully decoded table.
        With ``batch_size > 0`` the matrix is decoded and scored in chunks,
        which bounds peak memory when callers estimate validity over large
        generated samples.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if batch_size <= 0 or len(matrix) <= batch_size:
            return self._hard_scores_fast(matrix)
        chunks = [
            self._hard_scores_fast(matrix[start : start + batch_size])
            for start in range(0, len(matrix), batch_size)
        ]
        return np.concatenate(chunks)

    def validity_rate(self, matrix: np.ndarray, batch_size: int = 512) -> float:
        """Mean exact validity of a transformed batch (scored in chunks).

        This is the one code path shared by the trainer's
        ``_estimate_validity`` and the engine's validity logging callback.
        """
        if len(matrix) == 0:
            return float("nan")
        return float(self.hard_scores_matrix(matrix, batch_size=batch_size).mean())

    # ------------------------------------------------------------------ #
    # Learned refinement head
    # ------------------------------------------------------------------ #
    def _extract(self, matrix: np.ndarray) -> np.ndarray:
        out = np.concatenate([matrix[:, s] for s in self._slices], axis=1)
        if self.head is not None and out.dtype != self.head.dtype:
            # Real rows stay float64 in the transformer; a float32 head
            # rounds them once at its input boundary.
            out = out.astype(self.head.dtype)
        return out

    def _scatter(self, grad_kg: np.ndarray, width: int) -> np.ndarray:
        grad = np.zeros((grad_kg.shape[0], width), dtype=grad_kg.dtype)
        cursor = 0
        for s in self._slices:
            size = s.stop - s.start
            grad[:, s] = grad_kg[:, cursor : cursor + size]
            cursor += size
        return grad

    def head_logits(self, matrix: np.ndarray, training: bool = True) -> np.ndarray:
        """Learned validity logits for a batch of transformed rows."""
        if self.head is None:
            raise RuntimeError("learned head is disabled")
        return self.head.forward(self._extract(matrix), training=training)

    def head_scores(self, matrix: np.ndarray) -> np.ndarray:
        """Learned validity probabilities in [0, 1]."""
        logits = self.head_logits(matrix, training=False)
        return 1.0 / (1.0 + np.exp(-np.clip(logits[:, 0], -60, 60)))

    # ------------------------------------------------------------------ #
    # Training data for the head
    # ------------------------------------------------------------------ #
    def _corrupt_records(self, records: list[dict]) -> list[dict]:
        """Randomly perturb KG-constrained attributes to manufacture negatives."""
        corrupted: list[dict] = []
        schema = self.transformer.schema
        categorical_kg = [name for name in self.kg_columns if schema.column(name).is_categorical]
        continuous_kg = [name for name in self.kg_columns if schema.column(name).is_continuous]
        for record in records:
            clone = dict(record)
            if categorical_kg and (not continuous_kg or self.rng.uniform() < 0.7):
                column = categorical_kg[self.rng.integers(0, len(categorical_kg))]
                categories = schema.column(column).categories
                clone[column] = categories[self.rng.integers(0, len(categories))]
            elif continuous_kg:
                column = continuous_kg[self.rng.integers(0, len(continuous_kg))]
                spec = schema.column(column)
                low = spec.minimum if spec.minimum is not None else 0.0
                high = spec.maximum if spec.maximum is not None else 65535.0
                clone[column] = float(self.rng.uniform(low, high))
            corrupted.append(clone)
        return corrupted

    def train_step(
        self,
        real_table: Table | None,
        real_matrix: np.ndarray,
        fake_matrix: np.ndarray,
        negatives: int = 64,
        real_valid: np.ndarray | None = None,
        real_records: list[dict] | None = None,
    ) -> float:
        """One optimisation step of the learned head.

        Positives: the real rows (valid by construction of the KG) -- plus
        their exact validity is re-checked so mislabelled rows are dropped.
        Negatives: corrupted copies of real rows that the hard check rejects,
        plus generated rows the hard check rejects.

        The exact validity of real rows and their record dicts never change
        across a fit, so callers that repeatedly draw batches from one table
        (the KiNETGAN trainer) pass per-fit cached ``real_valid`` scores and
        ``real_records`` dicts instead of ``real_table``; the validator query
        and the per-row dict materialisation then run once per fit rather
        than once per step, with bit-identical results.
        """
        if self.head is None or self._optimizer is None:
            return 0.0
        if real_valid is None:
            if real_table is None:
                raise ValueError("train_step needs real_table when real_valid is not given")
            real_valid = self.validator.table_scores(real_table)

        # Manufacture invalid records by corrupting real ones.  Only the
        # first ``negatives`` rows are corrupted, so only those are
        # materialised as record dicts.
        if real_records is None:
            if real_table is None:
                raise ValueError("train_step needs real_table when real_records is not given")
            limit = min(real_table.n_rows, max(negatives, 1))
            real_records = [real_table.row(i) for i in range(limit)]
        else:
            real_records = real_records[: max(negatives, 1)]
        pool = self._corrupt_records(real_records)
        pool_scores = self._pool_scores(pool)
        invalid_records = [r for r, s in zip(pool, pool_scores) if s == 0.0]

        inputs = [real_matrix]
        targets = [real_valid[:, None]]
        if invalid_records:
            invalid_table = Table.from_records(self.transformer.schema, invalid_records)
            invalid_matrix = self.transformer.transform(invalid_table, rng=self.rng)
            inputs.append(invalid_matrix)
            targets.append(np.zeros((len(invalid_records), 1)))
        if fake_matrix is not None and len(fake_matrix):
            fake_valid = self.hard_scores_matrix(fake_matrix)
            inputs.append(fake_matrix)
            targets.append(fake_valid[:, None])

        batch = np.concatenate(inputs, axis=0)
        target = np.concatenate(targets, axis=0)
        logits = self.head.forward(self._extract(batch), training=True)
        loss = self._loss.forward(logits, target)
        self.head.zero_grad()
        self.head.backward(self._loss.backward())
        self._optimizer.step()
        return loss

    # ------------------------------------------------------------------ #
    # Valid-set constraint (the paper's direct KG query for condition C)
    # ------------------------------------------------------------------ #
    def _valid_mask(self, column: str, event_name: str) -> np.ndarray | None:
        """Boolean mask of the column's categories that the KG allows for
        ``event_name``, or ``None`` when the KG does not constrain them."""
        key = (column, event_name)
        if key in self._valid_mask_cache:
            return self._valid_mask_cache[key]
        mask: np.ndarray | None = None
        role = self._role_by_column.get(column)
        if (
            role is not None
            and role not in ("event_type", "source_port")
            and self.reasoner.has_event(event_name)
        ):
            try:
                valid = self.reasoner.valid_values(role, event_name)
            except ValueError:
                valid = set()
            if valid:
                categories = list(self.transformer.encoder(column).categories)
                normalised = set(valid)
                for value in list(valid):
                    try:
                        normalised.add(int(float(value)))
                    except (TypeError, ValueError):
                        pass
                flags = []
                for category in categories:
                    hit = category in normalised
                    if not hit:
                        try:
                            hit = int(float(category)) in normalised
                        except (TypeError, ValueError):
                            hit = False
                    flags.append(hit)
                candidate = np.asarray(flags, dtype=bool)
                # An all-true or all-false mask carries no usable signal.
                if candidate.any() and not candidate.all():
                    mask = candidate
        self._valid_mask_cache[key] = mask
        return mask

    def _valid_indices(self, column: str, event_name: str, start: int) -> np.ndarray | None:
        """Global column indices of the KG-valid categories, cached.

        The cached array is exactly ``start + nonzero(_valid_mask(...))``;
        caching it keeps the hot loop of :meth:`valid_set_loss_and_grad`
        free of per-call mask-to-index conversions.
        """
        key = (column, event_name)
        if key in self._valid_idx_cache:
            return self._valid_idx_cache[key]
        mask = self._valid_mask(column, event_name)
        idx = None if mask is None else start + np.nonzero(mask)[0]
        self._valid_idx_cache[key] = idx
        return idx

    def valid_set_loss_and_grad(
        self, fake_matrix: np.ndarray, condition_values
    ) -> tuple[float, np.ndarray]:
        """Penalise generator probability mass on KG-invalid categories.

        Following section III-B-1, the knowledge graph is queried with the
        condition-vector values (in particular the event type) and returns,
        per KG-constrained attribute, the set of valid values.  The loss for
        each constrained one-hot block is ``-log`` of the generated
        probability mass inside the valid set, so the generator is pushed to
        place its mass on combinations the KG deems valid.  Unlike the
        learned refinement head this signal is exact from the first epoch.

        ``condition_values`` is either a list of per-row ``{attribute:
        value}`` dicts or a :class:`~repro.tabular.sampler.ConditionBatch`
        (the trainer's hot path); either way, rows are grouped by event type
        so each (event, column) constraint is evaluated with one batched
        masked sum rather than a Python loop over rows.
        """
        from repro.tabular.sampler import ConditionBatch

        grad = np.zeros_like(fake_matrix)
        if isinstance(condition_values, ConditionBatch):
            if len(condition_values) != fake_matrix.shape[0]:
                raise ValueError("condition_values length does not match the fake batch")
            try:
                events = condition_values.column_values(self._event_column)
            except KeyError:
                events = np.asarray(
                    [values.get(self._event_column) for values in condition_values.values],
                    dtype=object,
                )
        else:
            if len(condition_values) != fake_matrix.shape[0]:
                raise ValueError("condition_values length does not match the fake batch")
            events = np.asarray(
                [values.get(self._event_column) for values in condition_values],
                dtype=object,
            )

        schema = self.transformer.schema
        total_loss = 0.0
        total_terms = 0
        eps = 1e-6
        event_codes, event_names = factorize_values(events)
        # Row partition per event, computed once and shared by every column.
        event_rows = [
            np.nonzero(event_codes == event_id)[0] for event_id in range(len(event_names))
        ]
        for column in self.kg_columns:
            if column == self._event_column or not schema.column(column).is_categorical:
                continue
            info = self.transformer.column_info(column)
            start, end = info.start, info.end
            # One clipped copy of the block per column, shared by every
            # event's row select below (clip is elementwise, so
            # clip-then-select equals select-then-clip bit for bit; the
            # contiguous block makes the per-event row gathers cheap).
            block = np.clip(fake_matrix[:, start:end], eps, 1.0)
            gblock: np.ndarray | None = None
            for event_id, event_name in enumerate(event_names):
                if event_name is None:
                    continue
                # Cached scatter targets; ``None`` means the KG does not
                # constrain this (column, event) pair.
                idx = self._valid_indices(column, str(event_name), start)
                if idx is None:
                    continue
                mask = self._valid_mask(column, str(event_name))
                rows = event_rows[event_id]
                mass = block[rows][:, mask].sum(axis=1)
                np.clip(mass, eps, 1.0, out=mass)
                # Events partition the rows, so each (row, column) cell is
                # written by exactly one event: plain assignment into a
                # per-column buffer replaces the fancy ``+=`` on the full
                # gradient (read-modify-write of a zero is the same write).
                if gblock is None:
                    gblock = np.zeros((fake_matrix.shape[0], end - start), dtype=fake_matrix.dtype)
                gblock[rows[:, None], (idx - start)[None, :]] = -1.0 / mass[:, None]
                np.log(mass, out=mass)
                total_loss += float(-mass.sum())
                total_terms += len(rows)
            if gblock is not None:
                grad[:, start:end] = gblock
        if total_terms == 0:
            return 0.0, grad
        grad /= total_terms
        return total_loss / total_terms, grad

    # ------------------------------------------------------------------ #
    # Generator feedback
    # ------------------------------------------------------------------ #
    def generator_loss_and_grad(self, fake_matrix: np.ndarray) -> tuple[float, np.ndarray]:
        """Non-saturating validity loss and its gradient w.r.t. the fake batch.

        The generator is pushed to produce combinations the learned head
        deems valid; the gradient is scattered back to the full transformed
        width so the trainer can add it to the adversarial gradient.
        """
        if self.head is None:
            return 0.0, np.zeros_like(fake_matrix)
        logits = self.head.forward(self._extract(fake_matrix), training=True)
        target = np.ones_like(logits)
        loss = self._loss.forward(logits, target)
        grad_logits = self._loss.backward()
        self.head.zero_grad()
        grad_kg_input = self.head.backward(grad_logits)
        # Head gradients from this pass must not update the head itself.
        self.head.zero_grad()
        return loss, self._scatter(grad_kg_input, fake_matrix.shape[1])

    # ------------------------------------------------------------------ #
    def combined_scores(self, matrix: np.ndarray) -> np.ndarray:
        """``D_KG`` score per row: exact validity plus the learned probability.

        This is the quantity added to ``D_M`` in equation 3 when reporting
        discriminator scores; the hard part dominates (it is exact), the
        learned part keeps the signal smooth near the decision boundary.
        """
        hard = self.hard_scores_matrix(matrix)
        if self.head is None:
            return hard
        return 0.5 * (hard + self.head_scores(matrix))
