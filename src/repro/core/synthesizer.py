"""The public KiNETGAN synthesizer API."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.base import Synthesizer
from repro.core.config import KiNETGANConfig
from repro.core.trainer import KiNETGANTrainer, TrainingHistory
from repro.engine import sampling_rng
from repro.knowledge.builder import build_network_kg
from repro.knowledge.catalog import DomainCatalog
from repro.knowledge.graph import KnowledgeGraph
from repro.knowledge.reasoner import KGReasoner
from repro.knowledge.validator import BatchValidator, ValidityReport
from repro.tabular.sampler import ConditionSampler
from repro.tabular.table import Table
from repro.tabular.transformer import DataTransformer

__all__ = ["KiNETGAN"]


class KiNETGAN(Synthesizer):
    """Knowledge-infused conditional GAN for network-activity tables.

    Typical use::

        from repro.core import KiNETGAN
        from repro.datasets import load_lab_iot

        bundle = load_lab_iot()
        model = KiNETGAN()
        model.fit(bundle.table, catalog=bundle.catalog,
                  condition_columns=bundle.condition_columns)
        synthetic = model.sample(5000)

    The knowledge source can be given as a :class:`DomainCatalog` (the graph
    is built internally), a prebuilt :class:`KnowledgeGraph`, or a
    :class:`KGReasoner`.  Without any knowledge source the model degrades to
    a plain conditional tabular GAN (this is exactly the ablation studied in
    ``benchmarks/test_ablation_knowledge.py``).
    """

    name = "KiNETGAN"

    def __init__(self, config: KiNETGANConfig | None = None) -> None:
        self.config = config if config is not None else KiNETGANConfig()
        self.transformer: DataTransformer | None = None
        self.sampler: ConditionSampler | None = None
        self.reasoner: KGReasoner | None = None
        self.trainer: KiNETGANTrainer | None = None
        self.history: TrainingHistory | None = None
        self._fitted = False

    # ------------------------------------------------------------------ #
    def fit(
        self,
        table: Table,
        catalog: DomainCatalog | None = None,
        knowledge_graph: KnowledgeGraph | None = None,
        reasoner: KGReasoner | None = None,
        condition_columns: list[str] | None = None,
        field_map: dict[str, str] | None = None,
        **_: object,
    ) -> "KiNETGAN":
        """Fit the model on a real table.

        Exactly one of ``catalog``, ``knowledge_graph`` or ``reasoner`` should
        be supplied to enable the knowledge-guided discriminator; with none of
        them, D_KG is disabled.
        """
        config = self.config
        self.reasoner = self._resolve_reasoner(catalog, knowledge_graph, reasoner, field_map)

        self.transformer = DataTransformer(
            max_modes=config.max_modes,
            continuous_encoding=config.continuous_encoding,
            seed=config.seed,
        ).fit(table)
        self.sampler = ConditionSampler(
            table=table,
            transformer=self.transformer,
            conditional_columns=condition_columns,
            uniform_probability=config.uniform_probability,
        )
        self.trainer = self._build_trainer()
        self.history = self.trainer.fit(table)
        self._fitted = True
        return self

    def _build_trainer(self) -> KiNETGANTrainer:
        """Construct the trainer; baseline subclasses override this hook to
        inject alternative generator / discriminator architectures."""
        assert self.transformer is not None and self.sampler is not None
        return KiNETGANTrainer(
            config=self.config,
            transformer=self.transformer,
            sampler=self.sampler,
            reasoner=self.reasoner,
        )

    @staticmethod
    def _resolve_reasoner(
        catalog: DomainCatalog | None,
        knowledge_graph: KnowledgeGraph | None,
        reasoner: KGReasoner | None,
        field_map: dict[str, str] | None,
    ) -> KGReasoner | None:
        if reasoner is not None:
            return reasoner
        if knowledge_graph is not None:
            return KGReasoner(knowledge_graph, field_map=field_map)
        if catalog is not None:
            graph = build_network_kg(catalog)
            return KGReasoner(graph, field_map=field_map or catalog.field_map)
        return None

    # ------------------------------------------------------------------ #
    def sample(
        self,
        n: int,
        conditions: dict | None = None,
        rng: np.random.Generator | None = None,
    ) -> Table:
        """Sample ``n`` synthetic rows.

        ``conditions`` optionally fixes conditional-attribute values for every
        generated row, e.g. ``{"event_type": "traffic_flooding"}`` to generate
        attack traffic only.
        """
        self._require_fitted(self._fitted)
        if n <= 0:
            raise ValueError("n must be positive")
        assert self.trainer is not None and self.sampler is not None
        assert self.transformer is not None
        rng = rng if rng is not None else sampling_rng(self.config.seed)
        condition_matrix = None
        if conditions is not None:
            vector = self.sampler.vector_from_values(conditions)
            condition_matrix = np.tile(vector, (n, 1))
        matrix = self.trainer.generate_matrix(n, conditions=condition_matrix, rng=rng)
        return self.transformer.inverse_transform(matrix)

    def sample_inputs(
        self,
        n: int,
        conditions: dict | None = None,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The ``(noise, condition_matrix)`` pair ``sample()`` would consume.

        Draws from ``rng`` in exactly the order :meth:`sample` does
        (conditions first, then one normal block -- chunked normal draws from
        a ``Generator`` are stream-identical to a single draw), so a caller
        that runs the generator forward on these inputs, hardens and decodes
        reproduces ``sample(n, conditions, rng)`` bit-for-bit.  This is the
        hook :class:`repro.serve.SamplingService` uses to micro-batch many
        requests into one generator pass.
        """
        self._require_fitted(self._fitted)
        if n <= 0:
            raise ValueError("n must be positive")
        assert self.sampler is not None
        rng = rng if rng is not None else sampling_rng(self.config.seed)
        if conditions is not None:
            vector = self.sampler.vector_from_values(conditions)
            condition_matrix = np.tile(vector, (n, 1))
        else:
            condition_matrix = self.sampler.empirical_conditions(n, rng)
        noise = rng.normal(size=(n, self.config.embedding_dim))
        return noise, condition_matrix

    def generator_forward(self, noise: np.ndarray, conditions: np.ndarray) -> np.ndarray:
        """Raw (soft) generator output for prepared inputs (inference mode)."""
        self._require_fitted(self._fitted)
        assert self.trainer is not None
        return self.trainer.generator.forward(noise, conditions, training=False)

    def decode_matrix(self, matrix: np.ndarray) -> Table:
        """Harden and decode a generated matrix into a typed table."""
        self._require_fitted(self._fitted)
        assert self.transformer is not None
        return self.transformer.inverse_transform(self.transformer.harden(matrix, inplace=True))

    # ------------------------------------------------------------------ #
    # Artifact-state protocol (repro.serve)
    # ------------------------------------------------------------------ #
    def artifact_state(self) -> dict:
        self._require_fitted(self._fitted)
        assert self.transformer is not None and self.sampler is not None
        state = {
            "config": self.config,
            "transformer": self.transformer.artifact_state(),
            "sampler": self.sampler.artifact_state(),
            "reasoner": self.reasoner,
        }
        state.update(self._extra_artifact_state())
        return state

    def _extra_artifact_state(self) -> dict:
        """Subclass hook for extra constructor state (e.g. OCTGAN ode_steps)."""
        return {}

    def _apply_extra_artifact_state(self, state: dict) -> None:
        """Subclass hook: consume :meth:`_extra_artifact_state` entries."""

    def restore_state(self, state: dict) -> None:
        self.config = state["config"]
        self.transformer = DataTransformer.from_artifact_state(state["transformer"])
        self.sampler = ConditionSampler.from_artifact_state(state["sampler"], self.transformer)
        self.reasoner = state["reasoner"]
        self._apply_extra_artifact_state(state)
        # Networks are built freshly initialised here; the artifact loader
        # overwrites their weights from the saved .npz files.
        self.trainer = self._build_trainer()
        self.history = None
        self._fitted = True

    def artifact_networks(self) -> dict:
        self._require_fitted(self._fitted)
        assert self.trainer is not None
        networks = {
            "generator": self.trainer.generator.network,
            "discriminator": self.trainer.discriminator.network,
        }
        kg = self.trainer.kg_discriminator
        if kg is not None and kg.head is not None:
            networks["kg_head"] = kg.head
        return networks

    # ------------------------------------------------------------------ #
    def validity_report(
        self, n: int = 1000, rng: np.random.Generator | None = None
    ) -> ValidityReport:
        """Knowledge-graph validity of freshly sampled data (needs a reasoner)."""
        self._require_fitted(self._fitted)
        if self.reasoner is None:
            raise RuntimeError("no knowledge source was provided at fit time")
        synthetic = self.sample(n, rng=rng)
        return BatchValidator(self.reasoner).report(synthetic)

    def save(self, directory: str | Path) -> None:
        """Persist generator and discriminator weights to ``directory``."""
        self._require_fitted(self._fitted)
        assert self.trainer is not None
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.trainer.generator.network.save(directory / "generator.npz")
        self.trainer.discriminator.network.save(directory / "discriminator.npz")

    def load_weights(self, directory: str | Path) -> None:
        """Restore weights saved by :meth:`save` into a fitted model."""
        self._require_fitted(self._fitted)
        assert self.trainer is not None
        directory = Path(directory)
        self.trainer.generator.network.load(directory / "generator.npz")
        self.trainer.discriminator.network.load(directory / "discriminator.npz")
