"""Condition-vector helpers (paper equations 1 and 2).

The heavy lifting lives in :class:`repro.tabular.sampler.ConditionSampler`,
which owns the one-hot layout of the conditional attributes and the
training-by-sampling logic.  This module adds the small conveniences the
trainer and the examples use on top of it.
"""

from __future__ import annotations

import numpy as np

from repro.tabular.sampler import ConditionSampler

__all__ = ["build_condition_matrix"]


def build_condition_matrix(
    sampler: ConditionSampler, values_list: list[dict]
) -> np.ndarray:
    """Stack condition vectors for a list of ``{attribute: value}`` dicts.

    Each dict may constrain any subset of the conditional attributes;
    unconstrained attributes get an all-zero block (equation 1 with no value
    chosen).  The result has shape ``(len(values_list), condition_dim)``.
    """
    matrix = np.zeros((len(values_list), sampler.condition_dim), dtype=np.float64)
    for i, values in enumerate(values_list):
        matrix[i] = sampler.vector_from_values(values)
    return matrix
