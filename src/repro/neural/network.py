"""The :class:`Sequential` network container."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.neural.arena import ParamArena, consolidation_enabled
from repro.neural.layers import Layer
from repro.neural.workspace import Workspace

__all__ = ["Sequential"]


class Sequential:
    """A plain feed-forward stack of layers with manual backprop.

    The container exposes the same forward / backward / parameters contract
    as individual layers so that sub-networks (e.g. the inner function of an
    ODE block) can be nested.

    Call :meth:`consolidate` once the layer list is final to move parameters
    and gradients into a flat :class:`~repro.neural.arena.ParamArena` and
    attach a shared step :class:`~repro.neural.workspace.Workspace` -- both
    bit-identical fast paths for the training hot loop.
    """

    #: Class-level defaults so legacy pickles and plain containers read None.
    arena: ParamArena | None = None
    workspace: Workspace | None = None

    def __init__(self, layers: list[Layer] | None = None) -> None:
        self.layers: list[Layer] = list(layers) if layers else []

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer and return ``self`` for chaining."""
        self.layers.append(layer)
        return self

    def consolidate(self) -> ParamArena | None:
        """Re-house parameters in a flat arena and bind a step workspace.

        Must be called after the layer list is final (layers added later stay
        on per-tensor storage and break the arena's optimizer fast path, but
        nothing else).  Safe to call repeatedly; a still-intact arena is
        reused.  Returns the arena, or ``None`` when consolidation is
        globally disabled or a layer opts out (the network then keeps the
        ordinary per-tensor representation -- see
        ``Layer.arena_entries``).  Optimizers must be constructed *after*
        this call so they bind the arena views.
        """
        if not consolidation_enabled():
            self.arena = None
            self.workspace = None
            return None
        if self.arena is None or not self.arena.intact:
            self.arena = ParamArena.build(self)
        if self.workspace is None:
            self.workspace = Workspace(default_dtype=self.dtype)
        for layer in self.layers:
            layer.bind_workspace(self.workspace)
        return self.arena

    @property
    def dtype(self) -> np.dtype:
        """The network's floating dtype.

        Derived from the arena when one is intact, otherwise from the first
        parameter; a parameter-less stack (pure activations) reports
        float64, the package default.
        """
        arena = self.arena
        if arena is not None and arena.intact:
            return arena.dtype
        for layer in self.layers:
            for param in layer.params:
                return param.dtype
        return np.dtype(np.float64)

    def unbind_workspace(self) -> None:
        """Detach the shared step workspace from this network and its layers.

        A bound :class:`~repro.neural.workspace.Workspace` is single-stream
        scratch: two concurrent ``forward`` passes through the same network
        would overwrite each other's buffers.  Unbinding drops every layer
        back to the allocating code paths -- bit-identical by the workspace
        contract, just without buffer reuse -- which makes a fitted network
        safe to sample from multiple threads at once.  The parameter arena
        is untouched; call :meth:`consolidate` to re-bind a workspace.
        """
        self.workspace = None
        for layer in self.layers:
            layer.bind_workspace(None)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        ws = self.workspace
        if ws is not None and ws.owns(x):
            # The output escapes the step (losses, samplers, attack scorers
            # and predict paths may hold it across later forwards), so it
            # must not alias a scratch buffer the next forward overwrites.
            # Final outputs are the *small* arrays of the stack (logits,
            # class scores), so this copy costs far less than the per-layer
            # allocations the workspace removes.
            x = x.copy()
        return x

    def __call__(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training=training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate through all layers, accumulating parameter grads."""
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Aligned (parameter, gradient) pairs for optimizer binding."""
        pairs: list[tuple[np.ndarray, np.ndarray]] = []
        for layer in self.layers:
            pairs.extend(zip(layer.params, layer.grads))
        return pairs

    def zero_grad(self) -> None:
        arena = self.arena
        if arena is not None and arena.intact:
            arena.grads.fill(0.0)
            return
        for layer in self.layers:
            layer.zero_grad()

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p, _ in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for key, value in layer.state_dict().items():
                state[f"layers.{i}.{key}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for i, layer in enumerate(self.layers):
            prefix = f"layers.{i}."
            sub = {
                key[len(prefix) :]: value
                for key, value in state.items()
                if key.startswith(prefix)
            }
            layer.load_state_dict(sub)

    def save(self, path: str | Path) -> None:
        """Serialise parameters and buffers to a ``.npz`` file."""
        np.savez(Path(path), **self.state_dict())

    def load(self, path: str | Path) -> None:
        """Restore parameters and buffers from a ``.npz`` file."""
        with np.load(Path(path)) as data:
            self.load_state_dict({key: data[key] for key in data.files})

    def summary(self) -> str:
        """Human-readable layer listing with the total parameter count."""
        lines = [f"Sequential with {len(self.layers)} layers:"]
        for i, layer in enumerate(self.layers):
            count = sum(p.size for p in layer.params)
            lines.append(f"  [{i}] {layer!r} ({count} params)")
        lines.append(f"Total parameters: {self.num_parameters()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Sequential({self.layers!r})"
