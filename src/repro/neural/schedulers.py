"""Learning-rate schedulers for the optimizers in :mod:`repro.neural`.

GAN training on small tabular datasets is sensitive to the learning rate:
too high and the discriminator oscillates, too low and the knowledge signal
takes hundreds of epochs to bite.  These schedulers wrap an
:class:`~repro.neural.optimizers.Optimizer` and update its ``lr`` attribute
in place once per :meth:`step` (conventionally called once per epoch):

* :class:`StepDecay` -- multiply the rate by ``gamma`` every ``step_size`` steps.
* :class:`ExponentialDecay` -- multiply by ``gamma`` every step.
* :class:`CosineAnnealing` -- cosine curve from the initial rate down to
  ``min_lr`` over ``total_steps``.
* :class:`LinearWarmup` -- linear ramp from ``warmup_factor * lr`` to the
  initial rate over ``warmup_steps``, then delegate to an optional inner
  scheduler.
"""

from __future__ import annotations

import math

from repro.neural.optimizers import Optimizer

__all__ = ["Scheduler", "StepDecay", "ExponentialDecay", "CosineAnnealing", "LinearWarmup"]


class Scheduler:
    """Base class: tracks the step count and the optimizer's initial rate."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.initial_lr = float(optimizer.lr)
        self.step_count = 0

    def step(self) -> float:
        """Advance one step and return the new learning rate."""
        self.step_count += 1
        new_lr = self.compute_lr(self.step_count)
        if new_lr <= 0:
            raise ValueError("scheduler produced a non-positive learning rate")
        self.optimizer.lr = new_lr
        return new_lr

    def compute_lr(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def current_lr(self) -> float:
        return float(self.optimizer.lr)


class StepDecay(Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int = 30, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def compute_lr(self, step: int) -> float:
        return self.initial_lr * self.gamma ** (step // self.step_size)


class ExponentialDecay(Scheduler):
    """Multiply the learning rate by ``gamma`` on every step."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.97) -> None:
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        super().__init__(optimizer)
        self.gamma = gamma

    def compute_lr(self, step: int) -> float:
        return self.initial_lr * self.gamma**step


class CosineAnnealing(Scheduler):
    """Cosine decay from the initial rate to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 1e-6) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if min_lr <= 0:
            raise ValueError("min_lr must be positive")
        super().__init__(optimizer)
        if min_lr > self.initial_lr:
            raise ValueError("min_lr must not exceed the optimizer's initial rate")
        self.total_steps = total_steps
        self.min_lr = min_lr

    def compute_lr(self, step: int) -> float:
        progress = min(step, self.total_steps) / self.total_steps
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.initial_lr - self.min_lr) * cosine


class LinearWarmup(Scheduler):
    """Linear warm-up for ``warmup_steps`` steps, then an optional inner schedule.

    The inner scheduler (if any) is stepped only after the warm-up completes,
    so its own step counter starts from the end of the warm-up.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_steps: int = 10,
        warmup_factor: float = 0.1,
        after: Scheduler | None = None,
    ) -> None:
        if warmup_steps <= 0:
            raise ValueError("warmup_steps must be positive")
        if not 0.0 < warmup_factor <= 1.0:
            raise ValueError("warmup_factor must be in (0, 1]")
        super().__init__(optimizer)
        if after is not None and after.optimizer is not optimizer:
            raise ValueError("inner scheduler must wrap the same optimizer")
        self.warmup_steps = warmup_steps
        self.warmup_factor = warmup_factor
        self.after = after

    def compute_lr(self, step: int) -> float:
        if step <= self.warmup_steps:
            start = self.initial_lr * self.warmup_factor
            return start + (self.initial_lr - start) * (step / self.warmup_steps)
        if self.after is None:
            return self.initial_lr
        return self.after.compute_lr(step - self.warmup_steps)
