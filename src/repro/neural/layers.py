"""Neural-network layers with hand-written forward and backward passes.

Every layer follows the same contract:

* ``forward(x, training=True)`` consumes a ``(batch, features)`` array and
  returns the layer output, caching whatever is needed for the backward pass.
* ``backward(grad_output)`` consumes the gradient of the loss with respect to
  the layer output, accumulates parameter gradients into ``layer.grads`` and
  returns the gradient with respect to the layer input.
* ``params`` / ``grads`` expose aligned lists of parameter and gradient
  arrays so optimizers can update them in place.

Gradients *accumulate* across backward calls until :meth:`Layer.zero_grad`
is invoked; this mirrors the PyTorch convention and makes multi-term GAN
losses (e.g. the KiNETGAN condition penalty) straightforward.
"""

from __future__ import annotations

import numpy as np

from repro.neural.initializers import glorot_uniform, he_normal, normal_init, zeros_init

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "GumbelSoftmax",
    "Dropout",
    "BatchNorm",
    "Residual",
]

_INITIALIZERS = {
    "glorot": glorot_uniform,
    "he": he_normal,
    "normal": normal_init,
}


class Layer:
    """Base class for all layers."""

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def params(self) -> list[np.ndarray]:
        """Trainable parameter arrays (possibly empty)."""
        return []

    @property
    def grads(self) -> list[np.ndarray]:
        """Gradient arrays aligned with :attr:`params`."""
        return []

    def zero_grad(self) -> None:
        for g in self.grads:
            g.fill(0.0)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable layer state (parameters plus buffers)."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        for key, value in self.state_dict().items():
            if key not in state:
                raise KeyError(f"missing key {key!r} in state dict")
            value[...] = state[key]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        init: str = "glorot",
        bias: bool = True,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        if init not in _INITIALIZERS:
            raise ValueError(f"unknown init {init!r}; choose from {sorted(_INITIALIZERS)}")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = bias
        self.weight = _INITIALIZERS[init](in_features, out_features, rng)
        self.bias = zeros_init((out_features,)) if bias else None
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias) if bias else None
        self._cache_input: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        self._cache_input = x
        out = x @ self.weight
        if self.use_bias:
            # In-place add: the matmul result is freshly allocated, so this
            # avoids a second full-batch array per layer per step.
            out += self.bias
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError("backward called before forward")
        x = self._cache_input
        self.grad_weight += x.T @ grad_output
        if self.use_bias:
            self.grad_bias += grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    @property
    def params(self) -> list[np.ndarray]:
        if self.use_bias:
            return [self.weight, self.bias]
        return [self.weight]

    @property
    def grads(self) -> list[np.ndarray]:
        if self.use_bias:
            return [self.grad_weight, self.grad_bias]
        return [self.grad_weight]

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {"weight": self.weight}
        if self.use_bias:
            state["bias"] = self.bias
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense({self.in_features}, {self.out_features}, bias={self.use_bias})"


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._mask = x > 0.0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope (GAN discriminator default)."""

    def __init__(self, negative_slope: float = 0.2) -> None:
        if negative_slope < 0:
            raise ValueError("negative_slope must be non-negative")
        self.negative_slope = negative_slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._mask = x > 0.0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * np.where(self._mask, 1.0, self.negative_slope)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LeakyReLU({self.negative_slope})"


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._out**2)


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._out = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._out * (1.0 - self._out)


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class Softmax(Layer):
    """Row-wise softmax with an exact Jacobian-vector-product backward pass."""

    def __init__(self, temperature: float = 1.0) -> None:
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._out = _softmax(x / self.temperature, axis=-1)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        s = self._out
        dot = (grad_output * s).sum(axis=-1, keepdims=True)
        return s * (grad_output - dot) / self.temperature


class GumbelSoftmax(Layer):
    """Gumbel-softmax relaxation for discrete outputs.

    During training the layer adds Gumbel noise and applies a temperature
    softmax, which is what CTGAN-style tabular generators use for one-hot
    column blocks.  The backward pass differentiates through the softmax
    (noise is treated as constant, as in the original straight-through
    estimator's soft variant).  At inference time (``training=False``) noise
    is omitted so sampling is controlled solely by downstream ``argmax`` /
    categorical sampling over the probabilities.
    """

    def __init__(self, temperature: float = 0.2, rng: np.random.Generator | None = None) -> None:
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature
        self.rng = rng if rng is not None else np.random.default_rng()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            uniform = self.rng.uniform(1e-12, 1.0 - 1e-12, size=x.shape)
            gumbel = -np.log(-np.log(uniform))
            logits = (x + gumbel) / self.temperature
        else:
            logits = x / self.temperature
        self._out = _softmax(logits, axis=-1)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        s = self._out
        dot = (grad_output * s).sum(axis=-1, keepdims=True)
        return s * (grad_output - dot) / self.temperature


class Dropout(Layer):
    """Inverted dropout; a no-op at evaluation time."""

    def __init__(self, rate: float = 0.5, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng if rng is not None else np.random.default_rng()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.uniform(size=x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dropout({self.rate})"


class BatchNorm(Layer):
    """Batch normalisation over the feature dimension.

    Keeps running statistics for inference, exactly like the standard
    formulation; the backward pass implements the full batch-norm gradient.
    """

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = np.ones(num_features, dtype=np.float64)
        self.beta = np.zeros(num_features, dtype=np.float64)
        self.grad_gamma = np.zeros_like(self.gamma)
        self.grad_beta = np.zeros_like(self.beta)
        self.running_mean = np.zeros(num_features, dtype=np.float64)
        self.running_var = np.ones(num_features, dtype=np.float64)
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm expected {self.num_features} features, got {x.shape[1]}"
            )
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std, x - mean)
        return self.gamma * x_hat + self.beta

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, _centered = self._cache
        batch = grad_output.shape[0]
        self.grad_gamma += (grad_output * x_hat).sum(axis=0)
        self.grad_beta += grad_output.sum(axis=0)
        dx_hat = grad_output * self.gamma
        # Full batch-norm gradient with respect to the input.
        grad_input = (
            inv_std
            / batch
            * (
                batch * dx_hat
                - dx_hat.sum(axis=0)
                - x_hat * (dx_hat * x_hat).sum(axis=0)
            )
        )
        return grad_input

    @property
    def params(self) -> list[np.ndarray]:
        return [self.gamma, self.beta]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.grad_gamma, self.grad_beta]

    def state_dict(self) -> dict[str, np.ndarray]:
        return {
            "gamma": self.gamma,
            "beta": self.beta,
            "running_mean": self.running_mean,
            "running_var": self.running_var,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchNorm({self.num_features})"


class Residual(Layer):
    """Residual block ``y = concat(x, f(x))`` in the CTGAN style.

    CTGAN's generator uses residual blocks that *concatenate* rather than add,
    growing the representation; the same block is reused by the KiNETGAN
    generator.  ``inner`` is a list of layers applied in order.
    """

    def __init__(self, inner: list[Layer]) -> None:
        if not inner:
            raise ValueError("Residual block needs at least one inner layer")
        self.inner = inner
        self._input_dim: int | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._input_dim = x.shape[1]
        h = x
        for layer in self.inner:
            h = layer.forward(h, training=training)
        return np.concatenate([x, h], axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_dim is None:
            raise RuntimeError("backward called before forward")
        grad_x = grad_output[:, : self._input_dim]
        grad_h = grad_output[:, self._input_dim :]
        for layer in reversed(self.inner):
            grad_h = layer.backward(grad_h)
        return grad_x + grad_h

    @property
    def params(self) -> list[np.ndarray]:
        out: list[np.ndarray] = []
        for layer in self.inner:
            out.extend(layer.params)
        return out

    @property
    def grads(self) -> list[np.ndarray]:
        out: list[np.ndarray] = []
        for layer in self.inner:
            out.extend(layer.grads)
        return out

    def zero_grad(self) -> None:
        for layer in self.inner:
            layer.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.inner):
            for key, value in layer.state_dict().items():
                state[f"inner.{i}.{key}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for i, layer in enumerate(self.inner):
            prefix = f"inner.{i}."
            sub = {
                key[len(prefix) :]: value
                for key, value in state.items()
                if key.startswith(prefix)
            }
            layer.load_state_dict(sub)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Residual({self.inner!r})"
