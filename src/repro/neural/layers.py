"""Neural-network layers with hand-written forward and backward passes.

Every layer follows the same contract:

* ``forward(x, training=True)`` consumes a ``(batch, features)`` array and
  returns the layer output, caching whatever is needed for the backward pass.
* ``backward(grad_output)`` consumes the gradient of the loss with respect to
  the layer output, accumulates parameter gradients into ``layer.grads``,
  returns the gradient with respect to the layer input, and releases the
  cached forward activations (so the final batch of a fit is not pinned in
  memory by resident federated sites or warm serving registries).
* ``params`` / ``grads`` expose aligned lists of parameter and gradient
  arrays so optimizers can update them in place.

Gradients *accumulate* across backward calls until :meth:`Layer.zero_grad`
is invoked; this mirrors the PyTorch convention and makes multi-term GAN
losses (e.g. the KiNETGAN condition penalty) straightforward.

Two optional fast paths, both bit-identical to the plain code:

* **Arena consolidation** (:mod:`repro.neural.arena`): a layer describes its
  state entries through :meth:`Layer.arena_entries` so ``Sequential`` can
  re-house parameters and gradients as views into one flat buffer.
* **Workspace buffers** (:mod:`repro.neural.workspace`): once a workspace is
  bound via :meth:`Layer.bind_workspace`, forward/backward run through
  recycled ``out=`` buffers instead of allocating fresh batch-sized arrays.
"""

from __future__ import annotations

import numpy as np

from repro.neural.initializers import glorot_uniform, he_normal, normal_init, zeros_init

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "GumbelSoftmax",
    "Dropout",
    "BatchNorm",
    "Residual",
]

_INITIALIZERS = {
    "glorot": glorot_uniform,
    "he": he_normal,
    "normal": normal_init,
}

#: All-ones float64 bit pattern; ``bool_mask * _U64_ALL`` builds the word
#: mask the bit-select activation backward passes use.
_U64_ALL = np.uint64(0xFFFFFFFFFFFFFFFF)

#: The float32 analogue for float32 networks.
_U32_ALL = np.uint32(0xFFFFFFFF)


class Layer:
    """Base class for all layers."""

    #: Shared step workspace, bound by ``Sequential.consolidate()``.  A class
    #: attribute so unbound (and un-pickled legacy) instances read ``None``.
    _ws = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def params(self) -> list[np.ndarray]:
        """Trainable parameter arrays (possibly empty)."""
        return []

    @property
    def grads(self) -> list[np.ndarray]:
        """Gradient arrays aligned with :attr:`params`."""
        return []

    def zero_grad(self) -> None:
        for g in self.grads:
            g.fill(0.0)

    def bind_workspace(self, workspace) -> None:
        """Attach a shared step workspace (see :mod:`repro.neural.workspace`)."""
        self._ws = workspace

    def arena_entries(self) -> list[tuple[str, object, str, str | None]] | None:
        """Arena consolidation spec: ``(state_key, owner, attr, grad_attr)``.

        One tuple per :meth:`state_dict` entry; ``grad_attr`` is ``None``
        for non-trainable buffers.  Returning ``None`` is the documented
        opt-out for layers whose state cannot be rebound to arena views --
        it disables consolidation for the enclosing network, which then
        stays on per-tensor storage.  This base implementation opts
        stateless layers in and any stateful layer that has not described
        its attribute bindings out.
        """
        if self.params or self.state_dict():
            return None
        return []

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable layer state (parameters plus buffers)."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`.

        Values are copied into the existing arrays, which keeps arena views
        (and optimizer bindings) intact.
        """
        for key, value in self.state_dict().items():
            if key not in state:
                raise KeyError(f"missing key {key!r} in state dict")
            value[...] = state[key]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        init: str = "glorot",
        bias: bool = True,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        if init not in _INITIALIZERS:
            raise ValueError(f"unknown init {init!r}; choose from {sorted(_INITIALIZERS)}")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = bias
        self.weight = _INITIALIZERS[init](in_features, out_features, rng, dtype=dtype)
        self.bias = zeros_init((out_features,), dtype=dtype) if bias else None
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias) if bias else None
        self._cache_input: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        self._cache_input = x
        ws = self._ws
        if ws is None:
            out = x @ self.weight
        else:
            out = ws.buffer(self, "fwd", (x.shape[0], self.out_features))
            np.dot(x, self.weight, out=out)
        if self.use_bias:
            # In-place add: the matmul result is scratch either way, so this
            # avoids a second full-batch array per layer per step.
            out += self.bias
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError("backward called before forward")
        x = self._cache_input
        ws = self._ws
        if ws is None:
            self.grad_weight += x.T @ grad_output
            if self.use_bias:
                self.grad_bias += grad_output.sum(axis=0)
            grad_input = grad_output @ self.weight.T
        else:
            # np.dot hands BLAS the transposed operands via gemm flags where
            # np.matmul would materialise ``x.T`` / ``weight.T`` copies first;
            # the results are bit-identical (same dgemm call).  add.reduce is
            # what np.sum delegates to, minus the Python dispatch wrapper.
            gw = ws.buffer(self, "gw", self.weight.shape)
            np.dot(x.T, grad_output, out=gw)
            self.grad_weight += gw
            if self.use_bias:
                gb = ws.buffer(self, "gb", self.bias.shape)
                np.add.reduce(grad_output, axis=0, out=gb)
                self.grad_bias += gb
            grad_input = ws.buffer(self, "bwd", (grad_output.shape[0], self.in_features))
            np.dot(grad_output, self.weight.T, out=grad_input)
        self._cache_input = None
        return grad_input

    @property
    def params(self) -> list[np.ndarray]:
        if self.use_bias:
            return [self.weight, self.bias]
        return [self.weight]

    @property
    def grads(self) -> list[np.ndarray]:
        if self.use_bias:
            return [self.grad_weight, self.grad_bias]
        return [self.grad_weight]

    def arena_entries(self) -> list[tuple[str, object, str, str | None]]:
        entries = [("weight", self, "weight", "grad_weight")]
        if self.use_bias:
            entries.append(("bias", self, "bias", "grad_bias"))
        return entries

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {"weight": self.weight}
        if self.use_bias:
            state["bias"] = self.bias
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense({self.in_features}, {self.out_features}, bias={self.use_bias})"


class ReLU(Layer):
    """Rectified linear unit.

    ``maximum(x, 0.0)`` is bit-identical to ``where(x > 0, x, 0.0)`` for all
    non-NaN inputs (numpy's maximum resolves the ``-0.0`` tie to ``+0.0``,
    matching the ``where`` form); branchless, it runs several times faster
    than the masked select.  NaN inputs propagate instead of being zeroed --
    by then training is already broken.
    """

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        ws = self._ws
        if ws is None:
            self._mask = x > 0.0
            return np.maximum(x, 0.0)
        mask = ws.buffer(self, "mask", x.shape, dtype=bool)
        np.greater(x, 0.0, out=mask)
        self._mask = mask
        out = ws.buffer(self, "fwd", x.shape)
        np.maximum(x, 0.0, out=out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        ws = self._ws
        if ws is None:
            grad_input = grad_output * self._mask
        else:
            grad_input = ws.buffer(self, "bwd", grad_output.shape)
            np.multiply(grad_output, self._mask, out=grad_input)
        self._mask = None
        return grad_input


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope (GAN discriminator default).

    For ``0 < slope <= 1`` the forward pass uses the branchless
    ``maximum(slope * x, x)``, which is bit-identical to
    ``where(x > 0, x, slope * x)`` for every input (including ``+-0.0``,
    infinities, denormals and NaN: both operands carry the sign of ``x`` and
    NaN propagates through both forms) while avoiding the much slower masked
    select.  Slopes outside that range keep the ``where`` form: at
    ``slope == 0`` the ``slope * x`` operand turns infinities into NaN that
    ``where`` would have discarded, and ``slope > 1`` flips the comparison.
    """

    def __init__(self, negative_slope: float = 0.2) -> None:
        if negative_slope < 0:
            raise ValueError("negative_slope must be non-negative")
        self.negative_slope = negative_slope
        self._branchless = 0.0 < negative_slope <= 1.0
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        ws = self._ws
        if ws is None:
            self._mask = x > 0.0
            if self._branchless:
                return np.maximum(self.negative_slope * x, x)
            return np.where(self._mask, x, self.negative_slope * x)
        mask = ws.buffer(self, "mask", x.shape, dtype=bool)
        np.greater(x, 0.0, out=mask)
        self._mask = mask
        out = ws.buffer(self, "fwd", x.shape)
        if self._branchless:
            np.multiply(x, self.negative_slope, out=out)
            np.maximum(out, x, out=out)
        else:
            np.multiply(x, self.negative_slope, out=out)
            np.copyto(out, x, where=mask)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        ws = self._ws
        if ws is None:
            # Typed scalars keep the select in the input dtype: python
            # floats would build a float64 factor and upcast float32 grads.
            one = grad_output.dtype.type(1.0)
            slope = grad_output.dtype.type(self.negative_slope)
            grad_input = grad_output * np.where(self._mask, one, slope)
        else:
            grad_input = ws.buffer(self, "bwd", grad_output.shape)
            np.multiply(grad_output, self.negative_slope, out=grad_input)
            if grad_output.flags.c_contiguous and grad_output.dtype.itemsize in (4, 8):
                # IEEE bit-select ``out = b ^ ((a ^ b) & m)`` replaying
                # ``where(mask, grad, slope * grad)`` exactly: ``1.0 * g``
                # is bitwise ``g``, so selecting grad's bits over the
                # positive positions matches the reference for every value
                # (signed zeros and NaN included), while the vectorized
                # integer ops replace copyto's masked scalar loop, which is
                # ~5x slower on this hot path.  Word width follows the
                # floating dtype: uint64 lanes for float64, uint32 for
                # float32.
                wide = grad_output.dtype.itemsize == 8
                utype = np.uint64 if wide else np.uint32
                m_all = _U64_ALL if wide else _U32_ALL
                mbits = ws.buffer(self, "mbits", grad_output.shape, dtype=utype)
                np.multiply(self._mask, m_all, out=mbits)
                sel = ws.buffer(self, "sel", grad_output.shape, dtype=utype)
                bits = grad_input.view(utype)
                np.bitwise_xor(grad_output.view(utype), bits, out=sel)
                sel &= mbits
                bits ^= sel
            else:
                np.copyto(grad_input, grad_output, where=self._mask)
        self._mask = None
        return grad_input

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LeakyReLU({self.negative_slope})"


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        ws = self._ws
        if ws is None:
            self._out = np.tanh(x)
        else:
            out = ws.buffer(self, "fwd", x.shape)
            np.tanh(x, out=out)
            self._out = out
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        ws = self._ws
        if ws is None:
            grad_input = grad_output * (1.0 - self._out**2)
        else:
            grad_input = ws.buffer(self, "bwd", grad_output.shape)
            np.multiply(self._out, self._out, out=grad_input)
            np.subtract(1.0, grad_input, out=grad_input)
            np.multiply(grad_output, grad_input, out=grad_input)
        self._out = None
        return grad_input


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        ws = self._ws
        if ws is None:
            self._out = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        else:
            out = ws.buffer(self, "fwd", x.shape)
            np.clip(x, -60.0, 60.0, out=out)
            np.negative(out, out=out)
            np.exp(out, out=out)
            np.add(out, 1.0, out=out)
            np.divide(1.0, out, out=out)
            self._out = out
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        ws = self._ws
        if ws is None:
            grad_input = grad_output * self._out * (1.0 - self._out)
        else:
            grad_input = ws.buffer(self, "bwd", grad_output.shape)
            np.multiply(grad_output, self._out, out=grad_input)
            one_minus = ws.buffer(self, "bwd2", grad_output.shape)
            np.subtract(1.0, self._out, out=one_minus)
            np.multiply(grad_input, one_minus, out=grad_input)
        self._out = None
        return grad_input


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class Softmax(Layer):
    """Row-wise softmax with an exact Jacobian-vector-product backward pass."""

    def __init__(self, temperature: float = 1.0) -> None:
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._out = _softmax(x / self.temperature, axis=-1)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        s = self._out
        dot = (grad_output * s).sum(axis=-1, keepdims=True)
        self._out = None
        return s * (grad_output - dot) / self.temperature


class GumbelSoftmax(Layer):
    """Gumbel-softmax relaxation for discrete outputs.

    During training the layer adds Gumbel noise and applies a temperature
    softmax, which is what CTGAN-style tabular generators use for one-hot
    column blocks.  The backward pass differentiates through the softmax
    (noise is treated as constant, as in the original straight-through
    estimator's soft variant).  At inference time (``training=False``) noise
    is omitted so sampling is controlled solely by downstream ``argmax`` /
    categorical sampling over the probabilities.
    """

    def __init__(self, temperature: float = 0.2, rng: np.random.Generator | None = None) -> None:
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature
        self.rng = rng if rng is not None else np.random.default_rng()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            uniform = self.rng.uniform(1e-12, 1.0 - 1e-12, size=x.shape)
            gumbel = -np.log(-np.log(uniform))
            if x.dtype != np.float64:
                # The noise draw stays float64 (one shared rng stream), then
                # rounds once so the logits keep the network dtype.
                gumbel = gumbel.astype(x.dtype)
            logits = (x + gumbel) / self.temperature
        else:
            logits = x / self.temperature
        self._out = _softmax(logits, axis=-1)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        s = self._out
        dot = (grad_output * s).sum(axis=-1, keepdims=True)
        self._out = None
        return s * (grad_output - dot) / self.temperature


class Dropout(Layer):
    """Inverted dropout; a no-op at evaluation time."""

    def __init__(self, rate: float = 0.5, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng if rng is not None else np.random.default_rng()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        # The typed ``keep`` scalar keeps the threshold comparison and the
        # inverted-mask division in the input dtype: a python float would
        # promote ``bool / keep`` to float64 and upcast float32 batches.
        # For float64 inputs it is bit-identical to the python-float form.
        keep = x.dtype.type(1.0 - self.rate)
        ws = self._ws
        if ws is None:
            if x.dtype == np.float64:
                uniform = self.rng.uniform(size=x.shape)
            else:
                # Per-dtype stream: float32 draws consume the rng stream
                # differently from float64 ones, so each dtype has its own
                # (internally consistent) seeded history.
                uniform = self.rng.random(size=x.shape, dtype=x.dtype)
            self._mask = (uniform < keep) / keep
            return x * self._mask
        # Same rng draw and elementwise ops as the reference, staged through
        # recycled buffers.  ``Generator.random(out=...)`` consumes the
        # stream identically to ``uniform(size=...)`` (float64) and to
        # ``random(size=..., dtype=float32)`` (float32) and returns the
        # same bits, so the draw itself recycles a buffer too.
        uniform = ws.buffer(self, "uniform", x.shape, dtype=x.dtype)
        self.rng.random(out=uniform, dtype=uniform.dtype)
        kept = ws.buffer(self, "kept", x.shape, dtype=bool)
        np.less(uniform, keep, out=kept)
        mask = ws.buffer(self, "mask", x.shape, dtype=x.dtype)
        np.divide(kept, keep, out=mask)
        self._mask = mask
        out = ws.buffer(self, "fwd", x.shape, dtype=x.dtype)
        np.multiply(x, mask, out=out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        ws = self._ws
        if ws is None:
            grad_input = grad_output * self._mask
        else:
            grad_input = ws.buffer(self, "bwd", grad_output.shape)
            np.multiply(grad_output, self._mask, out=grad_input)
        self._mask = None
        return grad_input

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dropout({self.rate})"


class BatchNorm(Layer):
    """Batch normalisation over the feature dimension.

    Keeps running statistics for inference, exactly like the standard
    formulation; the backward pass implements the full batch-norm gradient.
    The running statistics are updated *in place* so they can live inside a
    parameter arena as non-trainable buffer spans.
    """

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.9,
        eps: float = 1e-5,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = np.ones(num_features, dtype=dtype)
        self.beta = np.zeros(num_features, dtype=dtype)
        self.grad_gamma = np.zeros_like(self.gamma)
        self.grad_beta = np.zeros_like(self.beta)
        self.running_mean = np.zeros(num_features, dtype=dtype)
        self.running_var = np.ones(num_features, dtype=dtype)
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def _update_running(self, buffer: np.ndarray, batch_stat: np.ndarray) -> None:
        # In-place form of ``m * buffer + (1 - m) * stat``, same op order.
        np.multiply(buffer, self.momentum, out=buffer)
        np.add(buffer, (1 - self.momentum) * batch_stat, out=buffer)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.shape[1] != self.num_features:
            raise ValueError(f"BatchNorm expected {self.num_features} features, got {x.shape[1]}")
        ws = self._ws
        if training:
            if ws is None:
                mean = x.mean(axis=0)
                var = x.var(axis=0)
            else:
                # np.mean / np.var replayed through recycled buffers: both
                # reduce with the same pairwise ``add.reduce`` and divide by
                # the row count, so the values are bit-identical while the
                # two full-batch temporaries ``x.var`` materialises are
                # replaced by one persistent scratch buffer.
                batch = x.shape[0]
                mean = ws.buffer(self, "mean", (self.num_features,))
                np.add.reduce(x, axis=0, out=mean)
                np.divide(mean, batch, out=mean)
                centered = ws.buffer(self, "center", x.shape)
                np.subtract(x, mean, out=centered)
                np.multiply(centered, centered, out=centered)
                var = ws.buffer(self, "var", (self.num_features,))
                np.add.reduce(centered, axis=0, out=var)
                np.divide(var, batch, out=var)
            self._update_running(self.running_mean, mean)
            self._update_running(self.running_var, var)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        if ws is None:
            x_hat = (x - mean) * inv_std
            out = self.gamma * x_hat + self.beta
        else:
            x_hat = ws.buffer(self, "xhat", x.shape)
            np.subtract(x, mean, out=x_hat)
            np.multiply(x_hat, inv_std, out=x_hat)
            out = ws.buffer(self, "fwd", x.shape)
            np.multiply(self.gamma, x_hat, out=out)
            np.add(out, self.beta, out=out)
        self._cache = (x_hat, inv_std)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std = self._cache
        batch = grad_output.shape[0]
        ws = self._ws
        if ws is None:
            self.grad_gamma += (grad_output * x_hat).sum(axis=0)
            self.grad_beta += grad_output.sum(axis=0)
            dx_hat = grad_output * self.gamma
            # Full batch-norm gradient with respect to the input.
            grad_input = (
                inv_std
                / batch
                * (batch * dx_hat - dx_hat.sum(axis=0) - x_hat * (dx_hat * x_hat).sum(axis=0))
            )
        else:
            scratch = ws.buffer(self, "bwd_a", grad_output.shape)
            np.multiply(grad_output, x_hat, out=scratch)
            self.grad_gamma += scratch.sum(axis=0)
            self.grad_beta += grad_output.sum(axis=0)
            dx_hat = ws.buffer(self, "bwd_b", grad_output.shape)
            np.multiply(grad_output, self.gamma, out=dx_hat)
            # Same expression as above, evaluated into the two buffers in the
            # original operand order.
            scale = inv_std / batch
            dx_hat_sum = dx_hat.sum(axis=0)
            np.multiply(dx_hat, x_hat, out=scratch)
            dot = scratch.sum(axis=0)
            np.multiply(dx_hat, batch, out=dx_hat)
            np.subtract(dx_hat, dx_hat_sum, out=dx_hat)
            np.multiply(x_hat, dot, out=scratch)
            np.subtract(dx_hat, scratch, out=dx_hat)
            np.multiply(scale, dx_hat, out=dx_hat)
            grad_input = dx_hat
        self._cache = None
        return grad_input

    @property
    def params(self) -> list[np.ndarray]:
        return [self.gamma, self.beta]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.grad_gamma, self.grad_beta]

    def arena_entries(self) -> list[tuple[str, object, str, str | None]]:
        return [
            ("gamma", self, "gamma", "grad_gamma"),
            ("beta", self, "beta", "grad_beta"),
            ("running_mean", self, "running_mean", None),
            ("running_var", self, "running_var", None),
        ]

    def state_dict(self) -> dict[str, np.ndarray]:
        return {
            "gamma": self.gamma,
            "beta": self.beta,
            "running_mean": self.running_mean,
            "running_var": self.running_var,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchNorm({self.num_features})"


class Residual(Layer):
    """Residual block ``y = concat(x, f(x))`` in the CTGAN style.

    CTGAN's generator uses residual blocks that *concatenate* rather than add,
    growing the representation; the same block is reused by the KiNETGAN
    generator.  ``inner`` is a list of layers applied in order.
    """

    def __init__(self, inner: list[Layer]) -> None:
        if not inner:
            raise ValueError("Residual block needs at least one inner layer")
        self.inner = inner
        self._input_dim: int | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._input_dim = x.shape[1]
        h = x
        for layer in self.inner:
            h = layer.forward(h, training=training)
        ws = self._ws
        if ws is None:
            return np.concatenate([x, h], axis=1)
        out = ws.buffer(self, "fwd", (x.shape[0], x.shape[1] + h.shape[1]))
        np.concatenate([x, h], axis=1, out=out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_dim is None:
            raise RuntimeError("backward called before forward")
        grad_x = grad_output[:, : self._input_dim]
        grad_h = grad_output[:, self._input_dim :]
        for layer in reversed(self.inner):
            grad_h = layer.backward(grad_h)
        ws = self._ws
        if ws is None:
            return grad_x + grad_h
        grad_input = ws.buffer(self, "bwd", grad_x.shape)
        np.add(grad_x, grad_h, out=grad_input)
        return grad_input

    @property
    def params(self) -> list[np.ndarray]:
        out: list[np.ndarray] = []
        for layer in self.inner:
            out.extend(layer.params)
        return out

    @property
    def grads(self) -> list[np.ndarray]:
        out: list[np.ndarray] = []
        for layer in self.inner:
            out.extend(layer.grads)
        return out

    def zero_grad(self) -> None:
        for layer in self.inner:
            layer.zero_grad()

    def bind_workspace(self, workspace) -> None:
        self._ws = workspace
        for layer in self.inner:
            layer.bind_workspace(workspace)

    def arena_entries(self) -> list[tuple[str, object, str, str | None]] | None:
        entries: list[tuple[str, object, str, str | None]] = []
        for i, layer in enumerate(self.inner):
            sub = layer.arena_entries()
            if sub is None:
                return None
            entries.extend(
                (f"inner.{i}.{key}", owner, attr, grad_attr) for key, owner, attr, grad_attr in sub
            )
        return entries

    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.inner):
            for key, value in layer.state_dict().items():
                state[f"inner.{i}.{key}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for i, layer in enumerate(self.inner):
            prefix = f"inner.{i}."
            sub = {
                key[len(prefix) :]: value for key, value in state.items() if key.startswith(prefix)
            }
            layer.load_state_dict(sub)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Residual({self.inner!r})"
