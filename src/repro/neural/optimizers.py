"""Gradient-descent optimizers.

An optimizer is bound to a list of ``(param, grad)`` array pairs (typically
``Sequential.parameters()``) and updates the parameter arrays *in place* on
every :meth:`Optimizer.step`.  State (momentum buffers, Adam moments) is
keyed by position, so the bound parameter list must not change between steps.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "RMSprop", "Adam"]


class Optimizer:
    """Base optimizer bound to parameter/gradient pairs."""

    def __init__(self, parameters: list[tuple[np.ndarray, np.ndarray]], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        self.lr = lr
        for param, grad in self.parameters:
            if param.shape != grad.shape:
                raise ValueError("parameter and gradient shapes must match")

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset all bound gradient buffers to zero."""
        for _param, grad in self.parameters:
            grad.fill(0.0)

    # ------------------------------------------------------------------ #
    # Optimizer state is positionally keyed (like the buffers themselves),
    # so it can be shipped across processes and restored onto another
    # optimizer bound to the same parameter list -- the federated runtime
    # round-trips it as part of a site's per-round delta.
    # ------------------------------------------------------------------ #
    def _state_buffers(self) -> dict[str, list[np.ndarray]]:
        """The per-parameter state buffer lists, keyed by buffer name."""
        return {}

    def state_dict(self) -> dict:
        """A picklable snapshot of the optimizer's mutable state."""
        return {
            name: [np.array(buffer, copy=True) for buffer in buffers]
            for name, buffers in self._state_buffers().items()
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        Buffers are copied into the existing arrays, so the binding to the
        optimizer's parameter list is preserved.
        """
        for name, buffers in self._state_buffers().items():
            if name not in state:
                raise KeyError(f"missing optimizer state {name!r}")
            if len(state[name]) != len(buffers):
                raise ValueError(f"optimizer state {name!r} has the wrong length")
            for buffer, value in zip(buffers, state[name]):
                np.copyto(buffer, value)


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: list[tuple[np.ndarray, np.ndarray]],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p) for p, _ in self.parameters]

    def _state_buffers(self) -> dict[str, list[np.ndarray]]:
        return {"velocity": self._velocity}

    def step(self) -> None:
        for (param, grad), vel in zip(self.parameters, self._velocity):
            update = grad
            if self.weight_decay:
                update = update + self.weight_decay * param
            if self.momentum:
                vel *= self.momentum
                vel += update
                update = vel
            param -= self.lr * update


class RMSprop(Optimizer):
    """RMSprop with an exponentially decayed squared-gradient average."""

    def __init__(
        self,
        parameters: list[tuple[np.ndarray, np.ndarray]],
        lr: float = 0.001,
        rho: float = 0.9,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 < rho < 1.0:
            raise ValueError("rho must be in (0, 1)")
        self.rho = rho
        self.eps = eps
        self._square_avg = [np.zeros_like(p) for p, _ in self.parameters]

    def _state_buffers(self) -> dict[str, list[np.ndarray]]:
        return {"square_avg": self._square_avg}

    def step(self) -> None:
        for (param, grad), avg in zip(self.parameters, self._square_avg):
            avg *= self.rho
            avg += (1.0 - self.rho) * grad**2
            param -= self.lr * grad / (np.sqrt(avg) + self.eps)


class Adam(Optimizer):
    """Adam with bias-corrected first and second moments.

    The GAN-standard betas ``(0.5, 0.9)`` are used by the synthesizers in
    this package; the defaults here follow the original Adam paper.
    """

    def __init__(
        self,
        parameters: list[tuple[np.ndarray, np.ndarray]],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p) for p, _ in self.parameters]
        self._v = [np.zeros_like(p) for p, _ in self.parameters]
        self._t = 0

    def _state_buffers(self) -> dict[str, list[np.ndarray]]:
        return {"m": self._m, "v": self._v}

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["t"] = self._t
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        if "t" not in state:
            raise KeyError("missing optimizer state 't'")
        self._t = int(state["t"])

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for (param, grad), m, v in zip(self.parameters, self._m, self._v):
            g = grad
            if self.weight_decay:
                g = g + self.weight_decay * param
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g**2
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
