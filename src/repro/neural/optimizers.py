"""Gradient-descent optimizers.

An optimizer is bound to a list of ``(param, grad)`` array pairs (typically
``Sequential.parameters()``) and updates the parameter arrays *in place* on
every :meth:`Optimizer.step`.  State (momentum buffers, Adam moments) is
keyed by position, so the bound parameter list must not change between steps.

When the bound parameters are exactly the views of one
:class:`~repro.neural.arena.ParamArena` (i.e. the network was consolidated
before the optimizer was built), ``step`` runs a *fused* kernel: one
vectorized in-place pass over the flat parameter/gradient/moment buffers
through preallocated scratch, so the update costs O(1) numpy dispatches and
zero temporaries regardless of how many tensors the network has.  The fused
kernels replay the per-tensor element ops in the same order and dtype, so
results are bit-identical; the per-tensor loop remains for unbound
optimizers and as the fallback whenever the arena views were detached (e.g.
by pickling a resident federated site).

Arena gap regions (non-trainable buffers such as BatchNorm running
statistics) always carry zero gradients and zero moments, so full-buffer
fused updates leave them bitwise unchanged -- except under weight decay,
which would inject ``wd * buffer`` there; those configurations fall back to
the per-tensor loop unless the arena has no gaps (``exact_cover``).
"""

from __future__ import annotations

import numpy as np

from repro.neural.arena import find_arena

__all__ = ["Optimizer", "SGD", "RMSprop", "Adam"]


class Optimizer:
    """Base optimizer bound to parameter/gradient pairs."""

    def __init__(self, parameters: list[tuple[np.ndarray, np.ndarray]], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        self.lr = lr
        for param, grad in self.parameters:
            if param.shape != grad.shape:
                raise ValueError("parameter and gradient shapes must match")
        self._arena = find_arena(self.parameters)
        self._scratch: tuple[np.ndarray, np.ndarray] | None = None

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset all bound gradient buffers to zero."""
        if self._fused_ready():
            self._arena.grads.fill(0.0)
            return
        for _param, grad in self.parameters:
            grad.fill(0.0)

    # ------------------------------------------------------------------ #
    # Fused (arena) machinery
    # ------------------------------------------------------------------ #
    def _fused_ready(self) -> bool:
        """Whether the fused flat-buffer kernels may run this step."""
        arena = self._arena
        if arena is None:
            return False
        if arena.intact:
            return True
        # Pickling detached the views from the arena buffers; the per-tensor
        # path stays correct on the detached arrays, so drop the binding.
        self._arena = None
        return False

    def _zeros_like_params(self) -> tuple[list[np.ndarray], np.ndarray | None]:
        """Per-parameter zero buffers for optimizer state.

        Arena-bound optimizers allocate one flat buffer and return views of
        it (second element), so fused kernels can update all moments in one
        pass while ``state_dict`` keeps its positional per-tensor layout.
        """
        arena = self._arena
        if arena is not None:
            flat = np.zeros(arena.size, dtype=arena.data.dtype)
            return arena.views_into(flat), flat
        return [np.zeros_like(p) for p, _ in self.parameters], None

    def _scratch_buffers(self) -> tuple[np.ndarray, np.ndarray]:
        if self._scratch is None:
            size = self._arena.size
            dtype = self._arena.data.dtype
            self._scratch = (
                np.empty(size, dtype=dtype),
                np.empty(size, dtype=dtype),
            )
        return self._scratch

    # ------------------------------------------------------------------ #
    # Optimizer state is positionally keyed (like the buffers themselves),
    # so it can be shipped across processes and restored onto another
    # optimizer bound to the same parameter list -- the federated runtime
    # round-trips it as part of a site's per-round delta.
    # ------------------------------------------------------------------ #
    def _state_buffers(self) -> dict[str, list[np.ndarray]]:
        """The per-parameter state buffer lists, keyed by buffer name."""
        return {}

    def state_dict(self) -> dict:
        """A picklable snapshot of the optimizer's mutable state."""
        return {
            name: [np.array(buffer, copy=True) for buffer in buffers]
            for name, buffers in self._state_buffers().items()
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        Buffers are copied into the existing arrays, so the binding to the
        optimizer's parameter list is preserved.
        """
        for name, buffers in self._state_buffers().items():
            if name not in state:
                raise KeyError(f"missing optimizer state {name!r}")
            if len(state[name]) != len(buffers):
                raise ValueError(f"optimizer state {name!r} has the wrong length")
            for buffer, value in zip(buffers, state[name]):
                np.copyto(buffer, value)


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: list[tuple[np.ndarray, np.ndarray]],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity, self._velocity_flat = self._zeros_like_params()

    def _state_buffers(self) -> dict[str, list[np.ndarray]]:
        return {"velocity": self._velocity}

    def step(self) -> None:
        if self._fused_ready() and (not self.weight_decay or self._arena.exact_cover):
            self._fused_step()
            return
        for (param, grad), vel in zip(self.parameters, self._velocity):
            update = grad
            if self.weight_decay:
                update = update + self.weight_decay * param
            if self.momentum:
                vel *= self.momentum
                vel += update
                update = vel
            param -= self.lr * update

    def _fused_step(self) -> None:
        arena = self._arena
        param, grad = arena.data, arena.grads
        scratch, _ = self._scratch_buffers()
        update = grad
        if self.weight_decay:
            np.multiply(param, self.weight_decay, out=scratch)
            np.add(grad, scratch, out=scratch)
            update = scratch
        if self.momentum:
            vel = self._velocity_flat
            np.multiply(vel, self.momentum, out=vel)
            np.add(vel, update, out=vel)
            update = vel
        np.multiply(update, self.lr, out=scratch)
        np.subtract(param, scratch, out=param)


class RMSprop(Optimizer):
    """RMSprop with an exponentially decayed squared-gradient average."""

    def __init__(
        self,
        parameters: list[tuple[np.ndarray, np.ndarray]],
        lr: float = 0.001,
        rho: float = 0.9,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 < rho < 1.0:
            raise ValueError("rho must be in (0, 1)")
        self.rho = rho
        self.eps = eps
        self._square_avg, self._square_avg_flat = self._zeros_like_params()

    def _state_buffers(self) -> dict[str, list[np.ndarray]]:
        return {"square_avg": self._square_avg}

    def step(self) -> None:
        if self._fused_ready():
            self._fused_step()
            return
        for (param, grad), avg in zip(self.parameters, self._square_avg):
            avg *= self.rho
            avg += (1.0 - self.rho) * grad**2
            param -= self.lr * grad / (np.sqrt(avg) + self.eps)

    def _fused_step(self) -> None:
        arena = self._arena
        param, grad = arena.data, arena.grads
        s1, s2 = self._scratch_buffers()
        avg = self._square_avg_flat
        np.multiply(avg, self.rho, out=avg)
        np.multiply(grad, grad, out=s1)
        np.multiply(s1, 1.0 - self.rho, out=s1)
        np.add(avg, s1, out=avg)
        np.multiply(grad, self.lr, out=s1)
        np.sqrt(avg, out=s2)
        np.add(s2, self.eps, out=s2)
        np.divide(s1, s2, out=s1)
        np.subtract(param, s1, out=param)


class Adam(Optimizer):
    """Adam with bias-corrected first and second moments.

    The GAN-standard betas ``(0.5, 0.9)`` are used by the synthesizers in
    this package; the defaults here follow the original Adam paper.
    """

    def __init__(
        self,
        parameters: list[tuple[np.ndarray, np.ndarray]],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m, self._m_flat = self._zeros_like_params()
        self._v, self._v_flat = self._zeros_like_params()
        self._t = 0

    def _state_buffers(self) -> dict[str, list[np.ndarray]]:
        return {"m": self._m, "v": self._v}

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["t"] = self._t
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        if "t" not in state:
            raise KeyError("missing optimizer state 't'")
        self._t = int(state["t"])

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        if self._fused_ready() and (not self.weight_decay or self._arena.exact_cover):
            self._fused_step(bias1, bias2)
            return
        for (param, grad), m, v in zip(self.parameters, self._m, self._v):
            g = grad
            if self.weight_decay:
                g = g + self.weight_decay * param
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g**2
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _fused_step(self, bias1: float, bias2: float) -> None:
        arena = self._arena
        param = arena.data
        m, v = self._m_flat, self._v_flat
        s1, s2 = self._scratch_buffers()
        g = arena.grads
        if self.weight_decay:
            np.multiply(param, self.weight_decay, out=s1)
            np.add(arena.grads, s1, out=s1)
            g = s1
        np.multiply(m, self.beta1, out=m)
        np.multiply(g, 1.0 - self.beta1, out=s2)
        np.add(m, s2, out=m)
        np.multiply(v, self.beta2, out=v)
        np.multiply(g, g, out=s2)
        np.multiply(s2, 1.0 - self.beta2, out=s2)
        np.add(v, s2, out=v)
        np.divide(m, bias1, out=s2)
        np.multiply(s2, self.lr, out=s2)
        np.divide(v, bias2, out=s1)
        np.sqrt(s1, out=s1)
        np.add(s1, self.eps, out=s1)
        np.divide(s2, s1, out=s2)
        np.subtract(param, s2, out=param)
