"""Contiguous parameter/gradient arenas for :class:`~repro.neural.network.Sequential`.

A :class:`ParamArena` re-houses every parameter *and* persistent buffer of a
network in one flat buffer (``data``) with an aligned flat gradient buffer
(``grads``), both in the network's floating dtype (float64 by default,
float32 for a float32-built network).  Layer attributes (``weight``,
``grad_weight``, ...) are rebound to views into those buffers, so

* optimizers can update the whole network with a handful of vectorized
  in-place passes over ``data``/``grads`` instead of a Python loop over
  tensors (see :mod:`repro.neural.optimizers`),
* ``Sequential.zero_grad`` becomes a single ``fill(0.0)``, and
* the federated :class:`~repro.federated.parameters.StateCodec` can encode /
  decode an arena-backed state with one ``np.copyto`` because entries are
  laid out in the codec's sorted-key order.

Layout
------
Entries are sorted by their full state-dict key (``layers.3.weight`` ...),
exactly matching ``StateCodec``'s ``sorted(template)`` layout.  Non-trainable
buffers (BatchNorm running statistics) live in ``data`` between trainable
spans; the corresponding *gap* regions of ``grads`` and of any optimizer
moment buffer are never written and stay zero, which keeps fused full-buffer
optimizer updates bit-identical to the per-tensor path (``x - 0.0 * anything``
is a bitwise no-op).  Fused updates that would touch the gaps with non-zero
values (weight decay) fall back to the per-tensor path unless
:attr:`ParamArena.exact_cover` holds.

Opting out
----------
A layer participates by implementing ``Layer.arena_entries()`` (see
:mod:`repro.neural.layers`).  Returning ``None`` is the documented opt-out
for layers whose parameters cannot be view-rebound (e.g. parameters that are
themselves views, non-floating or mixed-dtype state, or storage shared with
another object); one opted-out layer disables consolidation for the whole
network, which then keeps the ordinary per-tensor representation.  All
entries must share one floating dtype (float32 or float64): a mixed-dtype
network cannot be packed into a single flat buffer and stays per-tensor.

Pickling
--------
Numpy views do not survive pickling as views: each one unpickles as its own
standalone array.  Every fast path therefore re-checks
:attr:`ParamArena.intact` (an O(1) base-chain test) and falls back to the
per-tensor code, which stays correct on the detached buffers.
"""

from __future__ import annotations

import contextlib
import weakref
from collections.abc import Iterator

import numpy as np

__all__ = [
    "ParamArena",
    "find_arena",
    "consolidation_enabled",
    "disable_consolidation",
]

#: Live arenas keyed by ``id(arena.data)`` so optimizers can recover the
#: arena behind a parameter list without holding a reference themselves.
_ARENAS: "weakref.WeakValueDictionary[int, ParamArena]" = weakref.WeakValueDictionary()

_ENABLED = True


def consolidation_enabled() -> bool:
    """Whether :meth:`Sequential.consolidate` currently builds arenas."""
    return _ENABLED


@contextlib.contextmanager
def disable_consolidation() -> Iterator[None]:
    """Context manager forcing the legacy per-tensor representation.

    Inside the context, ``Sequential.consolidate()`` is a no-op that leaves
    the network on ordinary per-tensor storage -- the reference path the
    arena must stay bit-identical to.  Used by the parity tests and the
    before/after training benchmark.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def _root(array: np.ndarray) -> np.ndarray:
    """The owning ndarray at the bottom of a view's ``base`` chain.

    Stops at the last ndarray: un-pickled arrays can be backed by a foreign
    buffer object (memoryview, mmap) that has no ``base`` of its own.
    """
    while isinstance(array.base, np.ndarray):
        array = array.base
    return array


class ParamArena:
    """Flat parameter/gradient storage backing one ``Sequential``.

    Build with :meth:`ParamArena.build`; the constructor only records an
    already-computed layout.
    """

    def __init__(
        self,
        data: np.ndarray,
        grads: np.ndarray,
        spans: dict[str, tuple[int, int, tuple[int, ...], bool]],
        pairs: list[tuple[np.ndarray, np.ndarray]],
        pair_spans: list[tuple[int, int, tuple[int, ...]]],
    ) -> None:
        self.data = data
        self.grads = grads
        #: ``key -> (start, end, shape, trainable)`` in sorted-key order.
        self.spans = spans
        #: The network's ``(param_view, grad_view)`` pairs in parameter order.
        self.pairs = pairs
        #: ``(start, end, shape)`` aligned with :attr:`pairs`.
        self.pair_spans = pair_spans
        self.size = int(data.size)
        trainable = sum(end - start for start, end, _shape, is_param in spans.values() if is_param)
        #: True when trainable spans cover the whole buffer (no gap regions),
        #: i.e. fused updates may touch every element with non-zero values.
        self.exact_cover = trainable == self.size
        _ARENAS[id(self.data)] = self

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, network) -> "ParamArena | None":
        """Consolidate ``network`` (a ``Sequential``) into a fresh arena.

        Returns ``None`` -- leaving the network untouched -- when any layer
        opts out, exposes non-floating or mixed-dtype state, or reports
        entries inconsistent with its ``params``/``state_dict`` contract.
        """
        entries: list[tuple[str, object, str, str | None]] = []
        for i, layer in enumerate(network.layers):
            sub = layer.arena_entries()
            if sub is None:
                return None
            entries.extend(
                (f"layers.{i}.{key}", owner, attr, grad_attr)
                for key, owner, attr, grad_attr in sub
            )
        if not entries:
            return None

        values: dict[str, np.ndarray] = {}
        dtype: np.dtype | None = None
        for key, owner, attr, _grad_attr in entries:
            value = getattr(owner, attr)
            if not isinstance(value, np.ndarray) or value.dtype not in (
                np.float64,
                np.float32,
            ):
                return None
            if dtype is None:
                dtype = value.dtype
            elif value.dtype != dtype:
                return None  # mixed dtypes cannot share one flat buffer
            values[key] = value
        state = network.state_dict()
        if sorted(values) != sorted(state):
            return None
        # The trainable entries must be exactly the network's parameter list
        # (same arrays), otherwise the rebinding below would desynchronise
        # ``parameters()`` from the arena.
        entry_params = sorted(
            id(values[key]) for key, _owner, _attr, grad_attr in entries if grad_attr is not None
        )
        if entry_params != sorted(id(p) for p, _g in network.parameters()):
            return None

        entries.sort(key=lambda entry: entry[0])  # StateCodec's sorted-key order
        total = sum(values[key].size for key, _owner, _attr, _grad_attr in entries)
        data = np.empty(total, dtype=dtype)
        grads = np.zeros(total, dtype=dtype)
        spans: dict[str, tuple[int, int, tuple[int, ...], bool]] = {}
        span_by_param: dict[int, tuple[int, int, tuple[int, ...]]] = {}
        cursor = 0
        for key, owner, attr, grad_attr in entries:
            value = values[key]
            start, end = cursor, cursor + value.size
            cursor = end
            view = data[start:end].reshape(value.shape)
            np.copyto(view, value)
            setattr(owner, attr, view)
            spans[key] = (start, end, value.shape, grad_attr is not None)
            if grad_attr is not None:
                grad_view = grads[start:end].reshape(value.shape)
                np.copyto(grad_view, getattr(owner, grad_attr))
                setattr(owner, grad_attr, grad_view)
                span_by_param[id(view)] = (start, end, value.shape)

        pairs = network.parameters()
        pair_spans = [span_by_param[id(param)] for param, _grad in pairs]
        return cls(data, grads, spans, pairs, pair_spans)

    # ------------------------------------------------------------------ #
    @property
    def dtype(self) -> np.dtype:
        """The shared floating dtype of ``data``/``grads``."""
        return self.data.dtype

    @property
    def intact(self) -> bool:
        """Whether the rebound views still alias this arena's buffers.

        Pickling a network detaches every view into a standalone array; this
        check is what gates all fused fast paths.
        """
        if not self.pairs:
            return False
        param, grad = self.pairs[0]
        return _root(param) is self.data and _root(grad) is self.grads

    def views_into(self, flat: np.ndarray) -> list[np.ndarray]:
        """Per-parameter views of ``flat`` aligned with :attr:`pairs`.

        Used by optimizers to keep moment buffers flat while still exposing
        the positional per-tensor lists that ``state_dict`` round-trips.
        """
        if flat.shape != (self.size,):
            raise ValueError(f"expected a ({self.size},) buffer, got shape {flat.shape}")
        return [flat[start:end].reshape(shape) for start, end, shape in self.pair_spans]


def find_arena(parameters: list[tuple[np.ndarray, np.ndarray]]) -> ParamArena | None:
    """The arena whose pairs are exactly ``parameters``, if any.

    Requires identity (``is``) agreement pair by pair, so a concatenation of
    two networks' parameter lists -- or a stale list from before a
    re-consolidation -- never matches.
    """
    if not parameters:
        return None
    arena = _ARENAS.get(id(_root(parameters[0][0])))
    if arena is None or len(arena.pairs) != len(parameters):
        return None
    for (param, grad), (arena_param, arena_grad) in zip(parameters, arena.pairs):
        if param is not arena_param or grad is not arena_grad:
            return None
    return arena
