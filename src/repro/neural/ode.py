"""A fixed-step neural ODE block.

The OCTGAN baseline (Kim et al., WWW 2021) replaces parts of the CTGAN
generator / discriminator with neural-ODE layers.  This module provides a
small, explicit-Euler ODE block: the hidden state is integrated through a
learned vector field ``f(h, t)`` for a fixed number of steps, and the
backward pass simply back-propagates through the unrolled steps (discretise-
then-optimise), which is exact for the discretisation we use.
"""

from __future__ import annotations

import numpy as np

from repro.neural.layers import Dense, Layer, Tanh
from repro.neural.network import Sequential

__all__ = ["ODEBlock"]


class ODEBlock(Layer):
    """Explicit-Euler neural ODE layer ``h(1) = h(0) + sum_k dt * f([h_k, t_k])``.

    The vector field is a two-layer tanh MLP over the concatenation of the
    current state and the scalar time, matching the lightweight ODE functions
    used in OCT-GAN.
    """

    def __init__(
        self,
        dim: int,
        hidden_dim: int = 64,
        num_steps: int = 4,
        rng: np.random.Generator | None = None,
    ) -> None:
        if dim <= 0 or hidden_dim <= 0:
            raise ValueError("dim and hidden_dim must be positive")
        if num_steps < 1:
            raise ValueError("num_steps must be at least 1")
        rng = rng if rng is not None else np.random.default_rng()
        self.dim = dim
        self.num_steps = num_steps
        self.dt = 1.0 / num_steps
        self.field = Sequential(
            [
                Dense(dim + 1, hidden_dim, rng=rng, init="he"),
                Tanh(),
                Dense(hidden_dim, dim, rng=rng, init="glorot"),
            ]
        )
        self._trajectory: list[np.ndarray] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.shape[1] != self.dim:
            raise ValueError(f"ODEBlock expected {self.dim} features, got {x.shape[1]}")
        h = x
        self._trajectory = [h]
        self._training = training
        for step in range(self.num_steps):
            t = np.full((h.shape[0], 1), step * self.dt)
            dh = self.field.forward(np.concatenate([h, t], axis=1), training=training)
            h = h + self.dt * dh
            self._trajectory.append(h)
        return h

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._trajectory is None:
            raise RuntimeError("backward called before forward")
        grad_h = grad_output
        # Walk the unrolled Euler steps in reverse.  Each step needs its own
        # forward re-evaluation of the field so that cached activations match
        # the step being differentiated (the Sequential only caches the most
        # recent forward pass).
        for step in reversed(range(self.num_steps)):
            h_prev = self._trajectory[step]
            t = np.full((h_prev.shape[0], 1), step * self.dt)
            self.field.forward(np.concatenate([h_prev, t], axis=1), training=self._training)
            grad_field_out = self.dt * grad_h
            grad_field_in = self.field.backward(grad_field_out)
            grad_h = grad_h + grad_field_in[:, : self.dim]
        self._trajectory = None
        return grad_h

    @property
    def params(self) -> list[np.ndarray]:
        return [p for p, _ in self.field.parameters()]

    @property
    def grads(self) -> list[np.ndarray]:
        return [g for _, g in self.field.parameters()]

    def zero_grad(self) -> None:
        self.field.zero_grad()

    def bind_workspace(self, workspace) -> None:
        self._ws = workspace
        for layer in self.field.layers:
            layer.bind_workspace(workspace)

    def arena_entries(self) -> list[tuple[str, object, str, str | None]] | None:
        entries: list[tuple[str, object, str, str | None]] = []
        for i, layer in enumerate(self.field.layers):
            sub = layer.arena_entries()
            if sub is None:
                return None
            entries.extend(
                (f"field.layers.{i}.{key}", owner, attr, grad_attr)
                for key, owner, attr, grad_attr in sub
            )
        return entries

    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"field.{key}": value for key, value in self.field.state_dict().items()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self.field.load_state_dict(
            {
                key[len("field.") :]: value
                for key, value in state.items()
                if key.startswith("field.")
            }
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ODEBlock(dim={self.dim}, steps={self.num_steps})"
