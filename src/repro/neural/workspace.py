"""Reusable step buffers for the neural hot path.

A :class:`Workspace` is attached to every layer of a ``Sequential`` by
``Sequential.consolidate()`` and caches full-batch scratch arrays keyed by
``(layer, tag, shape)``.  Layers use it to run their forward/backward passes
with ``out=`` ufunc calls into recycled buffers instead of allocating fresh
batch-sized arrays on every step, which is where most of the training-loop
allocation churn comes from.

Rules for layers using a workspace buffer:

* a buffer's contents are only valid between the ``forward`` that fills it
  and the matching ``backward`` -- the next forward pass through the layer
  reuses it;
* arrays that escape the training step must not stay workspace-backed:
  ``Sequential.forward`` copies a workspace-owned final output before
  returning it (see :meth:`Workspace.owns`), so callers -- samplers, attack
  scorers, predict paths -- always receive an array the next forward cannot
  overwrite;
* every buffered computation must replay the exact elementwise operations of
  the allocating code path so results stay bit-identical.

Buffers are keyed by batch shape, so a fit with a ragged final batch simply
keeps one extra set of buffers for that shape.  Workspaces pickle empty:
buffer contents are scratch and the ``id(layer)`` keys would be stale in the
receiving process anyway.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Cache of reusable scratch arrays keyed by ``(layer, tag, shape)``.

    ``default_dtype`` is the dtype a layer gets when it asks for a buffer
    without one -- ``Sequential.consolidate()`` sets it to the network's
    parameter dtype, so float32 networks get float32 scratch without each
    layer having to thread a dtype through every ``buffer()`` call.
    Explicit dtypes (bool masks, uint64 bit-select scratch) still win.
    """

    def __init__(self, default_dtype: np.dtype | type = np.float64) -> None:
        self._buffers: dict[tuple[int, str, tuple[int, ...], str], np.ndarray] = {}
        self._buffer_ids: set[int] = set()
        self.default_dtype = np.dtype(default_dtype)

    def buffer(
        self,
        owner: object,
        tag: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type | None = None,
    ) -> np.ndarray:
        """The cached buffer for ``(owner, tag, shape)``, allocated on first use.

        Contents are undefined on return; callers must fully overwrite it.
        """
        # The network dtype dominates the training hot path; skip the
        # np.dtype() construction for it (buffer() runs hundreds of times
        # per step, so per-call overhead is the budget here).
        if dtype is None:
            dtype = self.default_dtype
            char = dtype.char
        else:
            char = "d" if dtype is np.float64 else np.dtype(dtype).char
        key = (id(owner), tag, shape, char)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
            self._buffer_ids.add(id(buf))
        return buf

    def owns(self, array: np.ndarray) -> bool:
        """Whether ``array`` is (a view of) one of this workspace's buffers.

        ``Sequential.forward`` uses this to hand callers an owned copy of any
        workspace-backed output: network outputs escape the step (samplers,
        attack scorers and predict paths hold them across later forwards),
        so they must never alias a buffer the next forward will overwrite.
        """
        return id(array) in self._buffer_ids or id(array.base) in self._buffer_ids

    def clear(self) -> None:
        """Drop every cached buffer."""
        self._buffers.clear()
        self._buffer_ids.clear()

    def nbytes(self) -> int:
        """Total bytes currently held (introspection / tests)."""
        return sum(buf.nbytes for buf in self._buffers.values())

    # Scratch contents never travel: a pickled workspace arrives empty and
    # refills on first use in the receiving process.
    def __getstate__(self) -> dict:
        return {"default_dtype": self.default_dtype.str}

    def __setstate__(self, state: dict) -> None:
        self._buffers = {}
        self._buffer_ids = set()
        self.default_dtype = np.dtype(state.get("default_dtype", np.float64))
