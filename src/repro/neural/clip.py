"""Gradient clipping and noising utilities.

These helpers support the differentially-private baselines (PATEGAN-style
noisy aggregation and DP-SGD-style clipping) as well as ordinary training
stabilisation for the Wasserstein critics.
"""

from __future__ import annotations

import numpy as np

__all__ = ["clip_gradient_norm", "clip_gradient_value", "add_gaussian_noise"]


def clip_gradient_norm(
    parameters: list[tuple[np.ndarray, np.ndarray]], max_norm: float
) -> float:
    """Clip the global L2 norm of all gradients in place.

    Returns the pre-clipping global norm, mirroring
    ``torch.nn.utils.clip_grad_norm_``.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for _param, grad in parameters:
        total += float((grad**2).sum())
    total_norm = float(np.sqrt(total))
    if total_norm > max_norm and total_norm > 0:
        scale = max_norm / total_norm
        for _param, grad in parameters:
            grad *= scale
    return total_norm


def clip_gradient_value(
    parameters: list[tuple[np.ndarray, np.ndarray]], clip_value: float
) -> None:
    """Clip every gradient element to ``[-clip_value, clip_value]`` in place."""
    if clip_value <= 0:
        raise ValueError("clip_value must be positive")
    for _param, grad in parameters:
        np.clip(grad, -clip_value, clip_value, out=grad)


def add_gaussian_noise(
    parameters: list[tuple[np.ndarray, np.ndarray]],
    noise_multiplier: float,
    sensitivity: float,
    rng: np.random.Generator,
) -> None:
    """Add calibrated Gaussian noise to every gradient in place.

    ``noise_multiplier * sensitivity`` is the standard deviation, which is
    the standard DP-SGD calibration when gradients have been clipped to an
    L2 norm of ``sensitivity``.
    """
    if noise_multiplier < 0 or sensitivity < 0:
        raise ValueError("noise_multiplier and sensitivity must be non-negative")
    std = noise_multiplier * sensitivity
    if std == 0:
        return
    for _param, grad in parameters:
        grad += rng.normal(0.0, std, size=grad.shape)
