"""A small, from-scratch neural-network framework used by every generative
model in this reproduction.

The execution environment does not provide PyTorch, so the GAN / VAE models
are implemented on top of this package.  It offers the usual building blocks:

* :mod:`repro.neural.layers` -- dense layers, activations, batch-norm,
  dropout, residual blocks and a straight-through Gumbel-softmax.
* :mod:`repro.neural.losses` -- binary/softmax cross entropy, MSE, Wasserstein
  and hinge GAN criteria and the Gaussian KL divergence used by the TVAE.
* :mod:`repro.neural.optimizers` -- SGD (with momentum), RMSprop and Adam.
* :mod:`repro.neural.network` -- a ``Sequential`` container with manual
  forward / backward passes and ``.npz`` serialisation.
* :mod:`repro.neural.ode` -- a fixed-step ODE block used by the OCTGAN
  baseline.
* :mod:`repro.neural.clip` -- gradient clipping and Gaussian noising helpers
  (used for the differentially-private baselines).

Everything works on plain ``numpy.ndarray`` batches of shape
``(batch, features)``; backward passes are hand-written per layer.
"""

from repro.neural.initializers import (
    glorot_uniform,
    he_normal,
    normal_init,
    zeros_init,
)
from repro.neural.layers import (
    BatchNorm,
    Dense,
    Dropout,
    GumbelSoftmax,
    Layer,
    LeakyReLU,
    ReLU,
    Residual,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.neural.losses import (
    BinaryCrossEntropy,
    CrossEntropy,
    GaussianKLDivergence,
    HingeGANLoss,
    Loss,
    MeanSquaredError,
    WassersteinLoss,
)
from repro.neural.network import Sequential
from repro.neural.optimizers import SGD, Adam, Optimizer, RMSprop
from repro.neural.schedulers import (
    CosineAnnealing,
    ExponentialDecay,
    LinearWarmup,
    Scheduler,
    StepDecay,
)
from repro.neural.clip import add_gaussian_noise, clip_gradient_norm, clip_gradient_value
from repro.neural.ode import ODEBlock

__all__ = [
    "glorot_uniform",
    "he_normal",
    "normal_init",
    "zeros_init",
    "Layer",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "GumbelSoftmax",
    "Dropout",
    "BatchNorm",
    "Residual",
    "Loss",
    "BinaryCrossEntropy",
    "CrossEntropy",
    "MeanSquaredError",
    "WassersteinLoss",
    "HingeGANLoss",
    "GaussianKLDivergence",
    "Sequential",
    "Optimizer",
    "SGD",
    "RMSprop",
    "Adam",
    "Scheduler",
    "StepDecay",
    "ExponentialDecay",
    "CosineAnnealing",
    "LinearWarmup",
    "clip_gradient_norm",
    "clip_gradient_value",
    "add_gaussian_noise",
    "ODEBlock",
]
