"""Weight initialisation schemes.

All initialisers take an explicit :class:`numpy.random.Generator` so that
model construction is reproducible end to end; no global random state is
touched anywhere in :mod:`repro.neural`.

Every initialiser draws in float64 and rounds to the requested ``dtype``
at the end.  Drawing at full precision keeps the rng stream identical
across dtypes, so a float32 model's initial weights are exactly the
float64 model's weights rounded once -- the per-dtype determinism
contract (``docs/precision.md``) starts here.
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "normal_init", "zeros_init"]


def glorot_uniform(
    fan_in: int,
    fan_out: int,
    rng: np.random.Generator,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Glorot / Xavier uniform initialisation.

    Samples from ``U(-limit, limit)`` with ``limit = sqrt(6 / (fan_in + fan_out))``.
    Appropriate for tanh / sigmoid activations and the default for GAN
    generators in this package.
    """
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out)).astype(dtype)


def he_normal(
    fan_in: int,
    fan_out: int,
    rng: np.random.Generator,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """He normal initialisation, suited to ReLU-family activations."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out)).astype(dtype)


def normal_init(
    fan_in: int,
    fan_out: int,
    rng: np.random.Generator,
    std: float = 0.02,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Plain Gaussian initialisation with a small standard deviation.

    This is the initialisation used by the original DCGAN/TableGAN papers.
    """
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    return rng.normal(0.0, std, size=(fan_in, fan_out)).astype(dtype)


def zeros_init(shape: tuple[int, ...], dtype: np.dtype | type = np.float64) -> np.ndarray:
    """All-zero initialisation (biases, batch-norm shift)."""
    return np.zeros(shape, dtype=dtype)
