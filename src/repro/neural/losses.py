"""Loss functions for the generative models and classifiers.

Each loss exposes

* ``forward(prediction, target)`` returning a scalar mean loss, and
* ``backward()`` returning the gradient of that mean loss with respect to
  the prediction array passed to the last ``forward`` call.

The GAN criteria (:class:`BinaryCrossEntropy` on logits,
:class:`WassersteinLoss`, :class:`HingeGANLoss`) follow the standard
formulations; :class:`GaussianKLDivergence` implements the closed-form KL
term of the TVAE baseline.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Loss",
    "BinaryCrossEntropy",
    "CrossEntropy",
    "MeanSquaredError",
    "WassersteinLoss",
    "HingeGANLoss",
    "GaussianKLDivergence",
]

_EPS = 1e-12


class Loss:
    """Base class for losses."""

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.forward(prediction, target)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


class BinaryCrossEntropy(Loss):
    """Binary cross entropy.

    With ``from_logits=True`` (the default, and what the GAN discriminators
    use) the prediction is a raw score and the numerically stable
    log-sum-exp formulation is applied.  With ``from_logits=False`` the
    prediction is interpreted as a probability, which is what the KiNETGAN
    condition-vector penalty uses on the generator's softmax outputs.

    The logits path recycles internal scratch buffers keyed by batch shape
    (same elementwise ops via ``out=``, so values are bit-identical): this
    loss runs three times per KiNETGAN step, and without reuse it is one of
    the larger per-step allocators.  The returned gradient aliases such a
    buffer and is only valid until the next ``backward`` call with the same
    shape -- the trainer consumes it immediately.
    """

    def __init__(self, from_logits: bool = True) -> None:
        self.from_logits = from_logits
        self._cache: tuple[np.ndarray, np.ndarray] | None = None
        self._scratch: dict[tuple[str, tuple[int, ...], str], np.ndarray] = {}

    def _buffer(self, tag: str, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        key = (tag, shape, dtype.char)
        buf = self._scratch.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._scratch[key] = buf
        return buf

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        # The loss follows the network dtype so its gradient feeds straight
        # back into a float32 backward pass without an upcast; anything that
        # is not a supported floating dtype is coerced to float64 as before.
        prediction = np.asarray(prediction)
        if prediction.dtype not in (np.float64, np.float32):
            prediction = prediction.astype(np.float64)
        target = np.asarray(target, dtype=prediction.dtype)
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} != target shape {target.shape}"
            )
        self._cache = (prediction, target)
        if self.from_logits:
            # log(1 + exp(-|x|)) + max(x, 0) - x*t  (stable BCE-with-logits),
            # evaluated term by term into two recycled buffers.
            loss = self._buffer("loss", prediction.shape, prediction.dtype)
            np.maximum(prediction, 0, out=loss)
            term = self._buffer("term", prediction.shape, prediction.dtype)
            np.multiply(prediction, target, out=term)
            np.subtract(loss, term, out=loss)
            np.abs(prediction, out=term)
            np.negative(term, out=term)
            np.exp(term, out=term)
            np.log1p(term, out=term)
            np.add(loss, term, out=loss)
        else:
            p = np.clip(prediction, _EPS, 1.0 - _EPS)
            loss = -(target * np.log(p) + (1.0 - target) * np.log(1.0 - p))
        return float(loss.mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        prediction, target = self._cache
        n = prediction.size
        if self.from_logits:
            # (stable_sigmoid(prediction) - target) / n via the shared buffer.
            grad = self._buffer("grad", prediction.shape, prediction.dtype)
            np.clip(prediction, -60.0, 60.0, out=grad)
            np.negative(grad, out=grad)
            np.exp(grad, out=grad)
            np.add(grad, 1.0, out=grad)
            np.divide(1.0, grad, out=grad)
            np.subtract(grad, target, out=grad)
            np.divide(grad, n, out=grad)
        else:
            p = np.clip(prediction, _EPS, 1.0 - _EPS)
            grad = (p - target) / (p * (1.0 - p)) / n
        self._cache = None
        return grad


class CrossEntropy(Loss):
    """Softmax cross entropy over logits with integer or one-hot targets.

    The log-sum-exp runs in float64 regardless of the logits' dtype (the
    scalar loss is an accuracy-sensitive reduction); the gradient is handed
    back in the logits' own dtype so float32 networks keep a float32
    backward pass.
    """

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None
        self._grad_dtype: np.dtype = np.dtype(np.float64)

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        logits_dtype = np.asarray(prediction).dtype
        self._grad_dtype = (
            logits_dtype if logits_dtype.kind == "f" else np.dtype(np.float64)
        )
        prediction = np.asarray(prediction, dtype=np.float64)
        if prediction.ndim != 2:
            raise ValueError("CrossEntropy expects (batch, classes) logits")
        target = np.asarray(target)
        if target.ndim == 1:
            one_hot = np.zeros_like(prediction)
            one_hot[np.arange(len(target)), target.astype(int)] = 1.0
            target = one_hot
        if target.shape != prediction.shape:
            raise ValueError("target shape does not match logits shape")
        shifted = prediction - prediction.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        self._cache = (np.exp(log_probs), target)
        return float(-(target * log_probs).sum(axis=1).mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, target = self._cache
        batch = probs.shape[0]
        return ((probs - target) / batch).astype(self._grad_dtype, copy=False)


class MeanSquaredError(Loss):
    """Mean squared error over all elements."""

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError("prediction and target shapes differ")
        self._cache = (prediction, target)
        return float(((prediction - target) ** 2).mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        prediction, target = self._cache
        return 2.0 * (prediction - target) / prediction.size


class WassersteinLoss(Loss):
    """Wasserstein critic loss.

    ``target`` is +1 for samples whose score should be maximised (real for
    the critic, fake for the generator step) and -1 for samples whose score
    should be minimised.  The loss is ``mean(-target * prediction)``.
    """

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError("prediction and target shapes differ")
        self._cache = (prediction, target)
        return float((-target * prediction).mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        prediction, target = self._cache
        return -target / prediction.size


class HingeGANLoss(Loss):
    """Hinge GAN loss for the discriminator, ``mean(relu(1 - target*score))``."""

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError("prediction and target shapes differ")
        margin = 1.0 - target * prediction
        self._cache = (prediction, target)
        self._active = margin > 0
        return float(np.maximum(margin, 0.0).mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        prediction, target = self._cache
        grad = np.where(self._active, -target, 0.0)
        return grad / prediction.size


class GaussianKLDivergence(Loss):
    """KL( N(mu, sigma^2) || N(0, 1) ) summed over latent dims, averaged over batch.

    ``forward`` takes the concatenation ``[mu, log_var]`` along the feature
    axis as the prediction (target is ignored and may be ``None``); the
    backward pass returns the gradient with respect to that concatenation.
    """

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, prediction: np.ndarray, target: np.ndarray | None = None) -> float:
        prediction = np.asarray(prediction, dtype=np.float64)
        if prediction.shape[1] % 2 != 0:
            raise ValueError("expected concatenated [mu, log_var] with even width")
        half = prediction.shape[1] // 2
        mu = prediction[:, :half]
        log_var = prediction[:, half:]
        self._cache = (mu, log_var)
        kl = 0.5 * (np.exp(log_var) + mu**2 - 1.0 - log_var)
        return float(kl.sum(axis=1).mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        mu, log_var = self._cache
        batch = mu.shape[0]
        grad_mu = mu / batch
        grad_log_var = 0.5 * (np.exp(log_var) - 1.0) / batch
        return np.concatenate([grad_mu, grad_log_var], axis=1)
