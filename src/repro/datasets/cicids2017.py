"""Synthetic generator for the CIC-IDS-2017 flow-based intrusion dataset.

CIC-IDS-2017 (Sharafaldin et al.) records five days of benign and attack
traffic as ~2.8 million bidirectional flows with about 80 CICFlowMeter
features.  The raw CSVs cannot be downloaded offline, so this module
generates a stand-in that preserves what the KiNETGAN experiments exercise:

* a flow schema with the destination port, protocol, per-direction packet /
  byte counts, duration, inter-arrival statistics and TCP-flag counts,
* the published attack families (DoS Hulk, PortScan, DDoS, brute-force
  against FTP/SSH, slow DoS variants, botnet and web attacks) with benign
  traffic dominating heavily,
* attack-to-port/protocol rules (FTP-Patator targets 21/tcp, SSH-Patator
  22/tcp, the web DoS family 80/tcp, ...) that the knowledge graph encodes
  and the knowledge-guided discriminator enforces,
* per-class continuous profiles so downstream detectors can separate the
  classes, mirroring the near-perfect accuracies reported on the real data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import DatasetBundle
from repro.knowledge.catalog import AttackSpec, DomainCatalog, EventSpec
from repro.tabular.schema import ColumnSpec, TableSchema
from repro.tabular.table import Table

__all__ = [
    "CICIDS_CLASSES",
    "CICIDS_FIELD_MAP",
    "CICIDS2017Generator",
    "cicids2017_catalog",
    "cicids2017_schema",
    "load_cicids2017",
]

#: The traffic class plays the event-type role; the KG constrains which
#: destination ports and protocols each class may use.
CICIDS_FIELD_MAP: dict[str, str] = {
    "event_type": "traffic_class",
    "protocol": "protocol",
    "source_ip": "src_ip",          # not in the reduced flow schema
    "destination_ip": "dst_ip",     # not in the reduced flow schema
    "source_port": "src_port",
    "destination_port": "dst_port",
    "label": "traffic_class",
}

#: Class mix, roughly following the published flow counts (benign ~80 %).
CICIDS_CLASSES: dict[str, float] = {
    "BENIGN": 0.803,
    "DoS Hulk": 0.082,
    "PortScan": 0.056,
    "DDoS": 0.045,
    "DoS GoldenEye": 0.0036,
    "FTP-Patator": 0.0028,
    "SSH-Patator": 0.0021,
    "DoS slowloris": 0.0020,
    "DoS Slowhttptest": 0.0019,
    "Bot": 0.0007,
    "Web Attack": 0.0008,
    "Infiltration": 0.0001,
}

_PROTOCOLS = ("TCP", "UDP")

#: Ports benign traffic uses, with rough weights.
_BENIGN_PORTS: dict[int, float] = {
    443: 0.42, 80: 0.28, 53: 0.18, 22: 0.02, 21: 0.01, 8080: 0.03, 3389: 0.02,
    123: 0.02, 465: 0.02,
}

#: Attack class -> (allowed destination ports, allowed protocols).
_ATTACK_RULES: dict[str, tuple[tuple[int, ...], tuple[str, ...]]] = {
    "DoS Hulk": ((80,), ("TCP",)),
    "DoS GoldenEye": ((80,), ("TCP",)),
    "DoS slowloris": ((80,), ("TCP",)),
    "DoS Slowhttptest": ((80,), ("TCP",)),
    "DDoS": ((80,), ("TCP",)),
    "FTP-Patator": ((21,), ("TCP",)),
    "SSH-Patator": ((22,), ("TCP",)),
    "PortScan": ((21, 22, 23, 25, 53, 80, 110, 139, 443, 445, 3389, 8080), ("TCP",)),
    "Bot": ((8080, 80, 443), ("TCP",)),
    "Web Attack": ((80,), ("TCP",)),
    "Infiltration": ((444, 80, 443), ("TCP",)),
}

#: Per-class continuous profiles:
#: (duration log-mean [us], fwd packets mean, bwd packets mean,
#:  fwd bytes/packet mean, flow rate factor, syn flag share)
_CLASS_PROFILES: dict[str, tuple[float, float, float, float, float, float]] = {
    "BENIGN": (13.0, 9.0, 10.0, 250.0, 1.0, 0.1),
    "DoS Hulk": (11.0, 6.0, 4.0, 60.0, 40.0, 0.4),
    "PortScan": (8.0, 2.0, 1.0, 20.0, 5.0, 0.9),
    "DDoS": (12.5, 5.0, 4.0, 500.0, 60.0, 0.5),
    "DoS GoldenEye": (12.0, 7.0, 5.0, 90.0, 25.0, 0.4),
    "FTP-Patator": (12.2, 8.0, 8.0, 30.0, 3.0, 0.2),
    "SSH-Patator": (12.6, 12.0, 12.0, 80.0, 3.0, 0.2),
    "DoS slowloris": (15.5, 5.0, 3.0, 40.0, 0.2, 0.3),
    "DoS Slowhttptest": (15.2, 5.0, 3.0, 45.0, 0.2, 0.3),
    "Bot": (12.8, 6.0, 6.0, 120.0, 1.5, 0.2),
    "Web Attack": (13.2, 9.0, 9.0, 300.0, 2.0, 0.2),
    "Infiltration": (13.5, 10.0, 12.0, 350.0, 1.2, 0.2),
}

_ALL_DST_PORTS = tuple(sorted(
    set(_BENIGN_PORTS)
    | {port for ports, _ in _ATTACK_RULES.values() for port in ports}
))


def cicids2017_schema() -> TableSchema:
    """Reduced CICFlowMeter schema (the columns most CICIDS papers keep)."""
    return TableSchema(
        [
            ColumnSpec("dst_port", "categorical", categories=_ALL_DST_PORTS),
            ColumnSpec("protocol", "categorical", categories=_PROTOCOLS),
            ColumnSpec("flow_duration", "continuous", minimum=1.0, maximum=1.2e8),
            ColumnSpec("total_fwd_packets", "continuous", minimum=1.0, maximum=20_000.0),
            ColumnSpec("total_bwd_packets", "continuous", minimum=0.0, maximum=20_000.0),
            ColumnSpec("fwd_packet_length_mean", "continuous", minimum=0.0, maximum=3000.0),
            ColumnSpec("bwd_packet_length_mean", "continuous", minimum=0.0, maximum=3000.0),
            ColumnSpec("flow_bytes_per_s", "continuous", minimum=0.0, maximum=1.0e8),
            ColumnSpec("flow_packets_per_s", "continuous", minimum=0.0, maximum=1.0e6),
            ColumnSpec("flow_iat_mean", "continuous", minimum=0.0, maximum=1.0e8),
            ColumnSpec("fwd_iat_mean", "continuous", minimum=0.0, maximum=1.0e8),
            ColumnSpec("syn_flag_count", "continuous", minimum=0.0, maximum=100.0),
            ColumnSpec("ack_flag_count", "continuous", minimum=0.0, maximum=20_000.0),
            ColumnSpec("rst_flag_count", "continuous", minimum=0.0, maximum=100.0),
            ColumnSpec("average_packet_size", "continuous", minimum=0.0, maximum=3000.0),
            ColumnSpec("active_mean", "continuous", minimum=0.0, maximum=1.0e8),
            ColumnSpec("idle_mean", "continuous", minimum=0.0, maximum=1.0e8),
            ColumnSpec(
                "traffic_class", "categorical", categories=tuple(CICIDS_CLASSES), sensitive=True
            ),
        ]
    )


def cicids2017_catalog() -> DomainCatalog:
    """Domain catalog with the attack-to-port/protocol rules of CIC-IDS-2017."""
    benign = EventSpec(
        name="BENIGN",
        kind="benign",
        protocols=_PROTOCOLS,
        destination_ports=tuple(sorted(_BENIGN_PORTS)),
        description="Benign enterprise traffic mix of the Monday--Friday captures",
    )
    attacks = [
        AttackSpec(
            name=name,
            cve="",
            event=EventSpec(
                name=name,
                kind="attack",
                protocols=protocols,
                destination_ports=ports,
                description=f"CIC-IDS-2017 attack class {name!r}",
            ),
            description=f"CIC-IDS-2017 attack class {name!r}",
        )
        for name, (ports, protocols) in _ATTACK_RULES.items()
    ]
    return DomainCatalog(
        name="cicids2017",
        devices=[],
        events=[benign],
        attacks=attacks,
        domains={},
        field_map=dict(CICIDS_FIELD_MAP),
    )


@dataclass
class CICIDS2017Generator:
    """Generates CIC-IDS-2017-like flow records."""

    seed: int = 31

    def __post_init__(self) -> None:
        self.schema = cicids2017_schema()
        self.catalog = cicids2017_catalog()
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------ #
    def generate(self, n_records: int = 20_000) -> Table:
        """Generate ``n_records`` flows following the published class mix."""
        if n_records <= 0:
            raise ValueError("n_records must be positive")
        classes = list(CICIDS_CLASSES)
        weights = np.asarray([CICIDS_CLASSES[c] for c in classes])
        counts = np.maximum(self._rng.multinomial(n_records, weights / weights.sum()), 2)
        records: list[dict] = []
        for label, count in zip(classes, counts):
            for _ in range(int(count)):
                records.append(self._generate_record(label))
        self._rng.shuffle(records)
        return Table.from_records(self.schema, records[:n_records])

    # ------------------------------------------------------------------ #
    def _generate_record(self, label: str) -> dict:
        rng = self._rng
        if label == "BENIGN":
            ports = list(_BENIGN_PORTS)
            port_weights = np.asarray([_BENIGN_PORTS[p] for p in ports])
            dst_port = int(ports[rng.choice(len(ports), p=port_weights / port_weights.sum())])
            protocol = "UDP" if dst_port in (53, 123) else "TCP"
        else:
            ports, protocols = _ATTACK_RULES[label]
            dst_port = int(ports[rng.integers(0, len(ports))])
            protocol = protocols[rng.integers(0, len(protocols))]

        (log_duration, fwd_mean, bwd_mean, fwd_size, rate_factor, syn_share) = (
            _CLASS_PROFILES[label]
        )
        duration = float(np.clip(rng.lognormal(log_duration, 1.0), 1.0, 1.2e8))
        fwd_packets = float(np.clip(rng.poisson(fwd_mean) + 1, 1, 20_000))
        bwd_packets = float(np.clip(rng.poisson(bwd_mean), 0, 20_000))
        fwd_length = float(np.clip(rng.lognormal(np.log(max(fwd_size, 1.0)), 0.5), 0, 3000))
        bwd_length = float(np.clip(rng.lognormal(np.log(max(fwd_size * 1.4, 1.0)), 0.6), 0, 3000))
        total_packets = fwd_packets + bwd_packets
        total_bytes = fwd_packets * fwd_length + bwd_packets * bwd_length
        seconds = max(duration / 1.0e6, 1e-6)
        flow_bytes_per_s = float(np.clip(total_bytes / seconds * rate_factor, 0, 1.0e8))
        flow_packets_per_s = float(np.clip(total_packets / seconds * rate_factor, 0, 1.0e6))
        iat_mean = float(np.clip(duration / max(total_packets, 1.0), 0, 1.0e8))
        syn_flags = float(np.clip(rng.binomial(int(fwd_packets), syn_share), 0, 100))

        return {
            "dst_port": dst_port,
            "protocol": protocol,
            "flow_duration": duration,
            "total_fwd_packets": fwd_packets,
            "total_bwd_packets": bwd_packets,
            "fwd_packet_length_mean": fwd_length,
            "bwd_packet_length_mean": bwd_length if bwd_packets > 0 else 0.0,
            "flow_bytes_per_s": flow_bytes_per_s,
            "flow_packets_per_s": flow_packets_per_s,
            "flow_iat_mean": iat_mean,
            "fwd_iat_mean": float(np.clip(duration / max(fwd_packets, 1.0), 0, 1.0e8)),
            "syn_flag_count": syn_flags,
            "ack_flag_count": float(np.clip(total_packets * (0.8 if protocol == "TCP" else 0.0), 0, 20_000)),
            "rst_flag_count": float(rng.poisson(2.0)) if label == "PortScan" else float(rng.poisson(0.1)),
            "average_packet_size": float(np.clip(total_bytes / max(total_packets, 1.0), 0, 3000)),
            "active_mean": float(np.clip(rng.lognormal(10.0, 1.5), 0, 1.0e8)),
            "idle_mean": float(np.clip(rng.lognormal(12.0, 1.8), 0, 1.0e8)),
            "traffic_class": label,
        }


def load_cicids2017(n_records: int = 20_000, seed: int = 31) -> DatasetBundle:
    """Load the CIC-IDS-2017 stand-in as a :class:`DatasetBundle`.

    The real corpus has ~2.8M flows over five capture days; the default
    20,000-flow sample keeps the CPU-only experiments tractable while keeping
    every attack family represented.
    """
    generator = CICIDS2017Generator(seed=seed)
    table = generator.generate(n_records=n_records)
    return DatasetBundle(
        name="cicids2017",
        table=table,
        schema=generator.schema,
        catalog=generator.catalog,
        label_column="traffic_class",
        condition_columns=["traffic_class", "protocol"],
        description=(
            "Synthetic stand-in for CIC-IDS-2017: CICFlowMeter-style flow "
            "features, published attack families and imbalance, and "
            "attack-to-port/protocol rules encoded as knowledge-graph "
            "constraints; generated offline because the original CSVs are "
            "unavailable."
        ),
    )
