"""Datasets used by the reproduction.

The paper evaluates on (1) a privately collected lab IoT capture and (2) the
UNSW-NB15 dataset.  Neither is available in this offline environment, so this
subpackage provides faithful synthetic stand-ins (see DESIGN.md section 2 for
the substitution rationale):

* :mod:`repro.datasets.lab_iot` -- a parametric simulator of the paper's lab
  network (Blink camera, smart plug, motion sensor, tag manager) producing
  Wireshark-style flow records with benign events and injected attacks,
  including the CVE-1999-0003 port-range example from the paper.
* :mod:`repro.datasets.unsw_nb15` -- a generator reproducing the UNSW-NB15
  schema (flow / basic / content / time feature groups, nine attack families
  plus normal traffic) and its protocol/service/port co-occurrence rules.
* :mod:`repro.datasets.nsl_kdd` -- the NSL-KDD benchmark (41 features, five
  class groups) as an additional public-NIDS stand-in.
* :mod:`repro.datasets.cicids2017` -- CIC-IDS-2017 flow records with the
  published attack families and attack-to-port rules.
* :mod:`repro.datasets.registry` -- ``load_dataset(name)`` convenience entry
  point returning a :class:`~repro.datasets.base.DatasetBundle`.

Every dataset publishes a :class:`~repro.knowledge.catalog.DomainCatalog`, so
the knowledge-graph pipeline works identically on all of them.
"""

from repro.datasets.base import DatasetBundle
from repro.datasets.cicids2017 import (
    CICIDS2017Generator,
    cicids2017_catalog,
    cicids2017_schema,
    load_cicids2017,
)
from repro.datasets.lab_iot import (
    LabIoTSimulator,
    lab_iot_catalog,
    lab_iot_schema,
    load_lab_iot,
)
from repro.datasets.nsl_kdd import (
    NSLKDDGenerator,
    load_nsl_kdd,
    nsl_kdd_catalog,
    nsl_kdd_schema,
)
from repro.datasets.unsw_nb15 import (
    UNSWNB15Generator,
    load_unsw_nb15,
    unsw_nb15_catalog,
    unsw_nb15_schema,
)
from repro.datasets.registry import available_datasets, load_dataset

__all__ = [
    "DatasetBundle",
    "LabIoTSimulator",
    "lab_iot_catalog",
    "lab_iot_schema",
    "load_lab_iot",
    "UNSWNB15Generator",
    "unsw_nb15_catalog",
    "unsw_nb15_schema",
    "load_unsw_nb15",
    "NSLKDDGenerator",
    "nsl_kdd_catalog",
    "nsl_kdd_schema",
    "load_nsl_kdd",
    "CICIDS2017Generator",
    "cicids2017_catalog",
    "cicids2017_schema",
    "load_cicids2017",
    "load_dataset",
    "available_datasets",
]
