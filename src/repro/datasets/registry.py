"""Named dataset registry."""

from __future__ import annotations

from repro.datasets.base import DatasetBundle
from repro.datasets.cicids2017 import load_cicids2017
from repro.datasets.lab_iot import load_lab_iot
from repro.datasets.nsl_kdd import load_nsl_kdd
from repro.datasets.unsw_nb15 import load_unsw_nb15

__all__ = ["available_datasets", "load_dataset"]

_LOADERS = {
    "lab_iot": load_lab_iot,
    "unsw_nb15": load_unsw_nb15,
    "nsl_kdd": load_nsl_kdd,
    "cicids2017": load_cicids2017,
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_LOADERS)


def load_dataset(name: str, **kwargs) -> DatasetBundle:
    """Load a dataset by registry name.

    Parameters are forwarded to the underlying loader (``n_records``,
    ``seed`` and, for UNSW-NB15, ``reduced``).
    """
    if name not in _LOADERS:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    return _LOADERS[name](**kwargs)
