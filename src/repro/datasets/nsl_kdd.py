"""Synthetic generator for the NSL-KDD intrusion-detection benchmark.

NSL-KDD (Tavallaee et al., 2009) is the cleaned-up successor of KDD'99 and,
next to UNSW-NB15, the most common public benchmark for ML-based NIDS.  The
original corpus cannot be downloaded in this offline environment, so this
module generates a statistically faithful stand-in with

* the published 41-feature schema (`duration`, `protocol_type`, `service`,
  `flag`, byte counts, content features, time-based and host-based traffic
  rates) plus the attack label,
* the five-class label grouping used by most papers (`normal`, `dos`,
  `probe`, `r2l`, `u2r`) with the published heavy imbalance (U2R is a few
  hundredths of a percent),
* service/protocol/flag co-occurrence rules (HTTP runs over TCP, SNMP over
  UDP, ICMP traffic carries the ``ecr_i``-style services, ...) which become
  knowledge-graph constraints exactly as for the other datasets,
* per-class continuous profiles so the classes are separable downstream
  (smurf-style DoS floods have huge counts and zero duration, R2L sessions
  are long with few connections, and so on).

The ``reduced=True`` default keeps the 18 columns most GAN papers use;
``reduced=False`` emits all 41 features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import DatasetBundle
from repro.knowledge.catalog import DomainCatalog, EventSpec
from repro.tabular.schema import ColumnSpec, TableSchema
from repro.tabular.table import Table

__all__ = [
    "NSL_KDD_CLASSES",
    "NSL_KDD_FIELD_MAP",
    "NSLKDDGenerator",
    "nsl_kdd_catalog",
    "nsl_kdd_schema",
    "load_nsl_kdd",
]

#: The knowledge machinery's roles: the application-layer service plays the
#: "event type" role and is constrained to its admissible protocols.
NSL_KDD_FIELD_MAP: dict[str, str] = {
    "event_type": "service",
    "protocol": "protocol_type",
    "source_ip": "src_ip",          # not present in the schema (no IPs in NSL-KDD)
    "destination_ip": "dst_ip",     # not present in the schema
    "source_port": "src_port",      # not present in the schema
    "destination_port": "dst_port",  # not present in the schema
    "label": "label",
}

#: Five-class grouping with approximately the KDDTrain+ proportions.
NSL_KDD_CLASSES: dict[str, float] = {
    "normal": 0.534,
    "dos": 0.366,
    "probe": 0.093,
    "r2l": 0.0066,
    "u2r": 0.0004,
}

_PROTOCOLS = ("tcp", "udp", "icmp")

#: Connection-status flags and which protocols may produce them.
_FLAGS = ("SF", "S0", "REJ", "RSTR", "RSTO", "SH", "S1", "S2", "S3", "OTH")
_PROTO_FLAGS: dict[str, tuple[str, ...]] = {
    "tcp": ("SF", "S0", "REJ", "RSTR", "RSTO", "SH", "S1", "S2", "S3", "OTH"),
    "udp": ("SF",),
    "icmp": ("SF",),
}

#: Service -> allowed protocols (the KG constraint) and a rough benign share.
_SERVICE_RULES: dict[str, tuple[str, ...]] = {
    "http": ("tcp",),
    "smtp": ("tcp",),
    "ftp": ("tcp",),
    "ftp_data": ("tcp",),
    "telnet": ("tcp",),
    "ssh": ("tcp",),
    "pop_3": ("tcp",),
    "imap4": ("tcp",),
    "domain_u": ("udp",),
    "ntp_u": ("udp",),
    "snmp": ("udp",),
    "ecr_i": ("icmp",),
    "eco_i": ("icmp",),
    "urp_i": ("icmp",),
    "private": ("tcp", "udp"),
    "other": ("tcp", "udp", "icmp"),
    "finger": ("tcp",),
    "auth": ("tcp",),
    "irc": ("tcp",),
    "x11": ("tcp",),
}

#: Service mixture per class (weights, renormalised at sampling time).
_CLASS_SERVICES: dict[str, dict[str, float]] = {
    "normal": {"http": 0.40, "smtp": 0.10, "domain_u": 0.15, "ftp_data": 0.07,
               "other": 0.08, "private": 0.08, "telnet": 0.03, "ftp": 0.03,
               "pop_3": 0.02, "ntp_u": 0.02, "ssh": 0.01, "finger": 0.01},
    "dos": {"ecr_i": 0.45, "private": 0.30, "http": 0.20, "other": 0.05},
    "probe": {"private": 0.35, "eco_i": 0.20, "ecr_i": 0.10, "http": 0.15,
              "other": 0.15, "urp_i": 0.05},
    "r2l": {"ftp": 0.25, "ftp_data": 0.15, "http": 0.20, "telnet": 0.15,
            "imap4": 0.10, "pop_3": 0.05, "other": 0.10},
    "u2r": {"telnet": 0.40, "ftp_data": 0.20, "http": 0.20, "other": 0.20},
}

#: Per-class continuous profiles:
#: (duration log-mean, src_bytes log-mean, dst_bytes log-mean,
#:  count mean, srv_count mean, serror_rate, same_srv_rate)
_CLASS_PROFILES: dict[str, tuple[float, float, float, float, float, float, float]] = {
    "normal": (1.5, 5.5, 6.5, 8.0, 9.0, 0.02, 0.95),
    "dos": (0.0, 6.8, 0.5, 350.0, 350.0, 0.75, 0.98),
    "probe": (0.2, 1.5, 0.8, 120.0, 15.0, 0.35, 0.25),
    "r2l": (3.2, 5.8, 7.0, 2.0, 2.0, 0.01, 0.90),
    "u2r": (3.8, 5.2, 6.8, 1.5, 1.5, 0.01, 0.85),
}

_REDUCED_COLUMNS = [
    "duration", "protocol_type", "service", "flag", "src_bytes", "dst_bytes",
    "logged_in", "count", "srv_count", "serror_rate", "rerror_rate",
    "same_srv_rate", "diff_srv_rate", "dst_host_count", "dst_host_srv_count",
    "dst_host_same_srv_rate", "dst_host_serror_rate", "label",
]

_CONTENT_COLUMNS = [
    ("hot", 0.0, 30.0),
    ("num_failed_logins", 0.0, 5.0),
    ("num_compromised", 0.0, 10.0),
    ("root_shell", 0.0, 1.0),
    ("su_attempted", 0.0, 2.0),
    ("num_root", 0.0, 10.0),
    ("num_file_creations", 0.0, 10.0),
    ("num_shells", 0.0, 2.0),
    ("num_access_files", 0.0, 5.0),
    ("num_outbound_cmds", 0.0, 0.0),
]


def nsl_kdd_schema(reduced: bool = True) -> TableSchema:
    """The NSL-KDD schema (41 features + label, or the 18-column reduced view)."""
    columns = [
        ColumnSpec("duration", "continuous", minimum=0.0, maximum=60_000.0),
        ColumnSpec("protocol_type", "categorical", categories=_PROTOCOLS),
        ColumnSpec("service", "categorical", categories=tuple(_SERVICE_RULES)),
        ColumnSpec("flag", "categorical", categories=_FLAGS),
        ColumnSpec("src_bytes", "continuous", minimum=0.0, maximum=1.0e9),
        ColumnSpec("dst_bytes", "continuous", minimum=0.0, maximum=1.0e9),
        ColumnSpec("land", "categorical", categories=(0, 1)),
        ColumnSpec("wrong_fragment", "continuous", minimum=0.0, maximum=3.0),
        ColumnSpec("urgent", "continuous", minimum=0.0, maximum=3.0),
    ]
    columns += [
        ColumnSpec(name, "continuous", minimum=low, maximum=high)
        for name, low, high in _CONTENT_COLUMNS
    ]
    columns += [
        ColumnSpec("is_host_login", "categorical", categories=(0, 1)),
        ColumnSpec("is_guest_login", "categorical", categories=(0, 1)),
        ColumnSpec("logged_in", "categorical", categories=(0, 1)),
        ColumnSpec("count", "continuous", minimum=0.0, maximum=511.0),
        ColumnSpec("srv_count", "continuous", minimum=0.0, maximum=511.0),
        ColumnSpec("serror_rate", "continuous", minimum=0.0, maximum=1.0),
        ColumnSpec("srv_serror_rate", "continuous", minimum=0.0, maximum=1.0),
        ColumnSpec("rerror_rate", "continuous", minimum=0.0, maximum=1.0),
        ColumnSpec("srv_rerror_rate", "continuous", minimum=0.0, maximum=1.0),
        ColumnSpec("same_srv_rate", "continuous", minimum=0.0, maximum=1.0),
        ColumnSpec("diff_srv_rate", "continuous", minimum=0.0, maximum=1.0),
        ColumnSpec("srv_diff_host_rate", "continuous", minimum=0.0, maximum=1.0),
        ColumnSpec("dst_host_count", "continuous", minimum=0.0, maximum=255.0),
        ColumnSpec("dst_host_srv_count", "continuous", minimum=0.0, maximum=255.0),
        ColumnSpec("dst_host_same_srv_rate", "continuous", minimum=0.0, maximum=1.0),
        ColumnSpec("dst_host_diff_srv_rate", "continuous", minimum=0.0, maximum=1.0),
        ColumnSpec("dst_host_same_src_port_rate", "continuous", minimum=0.0, maximum=1.0),
        ColumnSpec("dst_host_srv_diff_host_rate", "continuous", minimum=0.0, maximum=1.0),
        ColumnSpec("dst_host_serror_rate", "continuous", minimum=0.0, maximum=1.0),
        ColumnSpec("dst_host_srv_serror_rate", "continuous", minimum=0.0, maximum=1.0),
        ColumnSpec("dst_host_rerror_rate", "continuous", minimum=0.0, maximum=1.0),
        ColumnSpec("dst_host_srv_rerror_rate", "continuous", minimum=0.0, maximum=1.0),
        ColumnSpec("label", "categorical", categories=tuple(NSL_KDD_CLASSES), sensitive=True),
    ]
    schema = TableSchema(columns)
    if not reduced:
        return schema
    return schema.subset(_REDUCED_COLUMNS)


def nsl_kdd_catalog() -> DomainCatalog:
    """Domain catalog encoding the service/protocol rules of NSL-KDD."""
    events = [
        EventSpec(
            name=service,
            kind="benign",
            protocols=protocols,
            description=f"NSL-KDD service {service!r}",
        )
        for service, protocols in _SERVICE_RULES.items()
    ]
    return DomainCatalog(
        name="nsl_kdd",
        devices=[],
        events=events,
        attacks=[],
        domains={},
        field_map=dict(NSL_KDD_FIELD_MAP),
    )


@dataclass
class NSLKDDGenerator:
    """Generates NSL-KDD-like connection records."""

    seed: int = 23
    reduced: bool = True

    def __post_init__(self) -> None:
        self.schema = nsl_kdd_schema(reduced=self.reduced)
        self.catalog = nsl_kdd_catalog()
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------ #
    def generate(self, n_records: int = 25_000) -> Table:
        """Generate ``n_records`` rows following the published class mix."""
        if n_records <= 0:
            raise ValueError("n_records must be positive")
        classes = list(NSL_KDD_CLASSES)
        weights = np.asarray([NSL_KDD_CLASSES[c] for c in classes])
        counts = self._rng.multinomial(n_records, weights / weights.sum())
        # Keep every class represented so stratified splits are well defined.
        counts = np.maximum(counts, 2)
        records: list[dict] = []
        for label, count in zip(classes, counts):
            for _ in range(int(count)):
                records.append(self._generate_record(label))
        self._rng.shuffle(records)
        records = records[:n_records]
        if self.reduced:
            records = [{k: record[k] for k in _REDUCED_COLUMNS} for record in records]
        return Table.from_records(self.schema, records)

    # ------------------------------------------------------------------ #
    def _generate_record(self, label: str) -> dict:
        rng = self._rng
        service_mix = _CLASS_SERVICES[label]
        services = list(service_mix)
        weights = np.asarray([service_mix[s] for s in services])
        service = services[rng.choice(len(services), p=weights / weights.sum())]
        protocols = _SERVICE_RULES[service]
        protocol = protocols[rng.integers(0, len(protocols))]

        (log_duration, log_src, log_dst, count_mean, srv_count_mean,
         serror, same_srv) = _CLASS_PROFILES[label]

        # Flags: attacks that flood or scan mostly leave half-open (S0) or
        # rejected (REJ) connections; benign traffic completes normally (SF).
        allowed_flags = _PROTO_FLAGS[protocol]
        if label in ("dos", "probe") and protocol == "tcp" and rng.uniform() < 0.7:
            flag = "S0" if rng.uniform() < 0.6 else "REJ"
        else:
            flag = "SF" if rng.uniform() < 0.85 or len(allowed_flags) == 1 else (
                allowed_flags[rng.integers(0, len(allowed_flags))]
            )

        duration = float(np.clip(rng.lognormal(log_duration, 1.2), 0.0, 60_000.0))
        if label == "dos":
            duration = float(np.clip(rng.exponential(0.5), 0.0, 10.0))
        src_bytes = float(np.clip(rng.lognormal(log_src, 1.0), 0.0, 1.0e9))
        dst_bytes = float(np.clip(rng.lognormal(log_dst, 1.3), 0.0, 1.0e9))
        count = float(np.clip(rng.poisson(count_mean), 0, 511))
        srv_count = float(np.clip(rng.poisson(srv_count_mean), 0, 511))
        serror_rate = float(np.clip(rng.normal(serror, 0.08), 0.0, 1.0))
        rerror_rate = float(np.clip(rng.normal(0.05 if label != "probe" else 0.3, 0.05), 0.0, 1.0))
        same_srv_rate = float(np.clip(rng.normal(same_srv, 0.08), 0.0, 1.0))
        diff_srv_rate = float(np.clip(1.0 - same_srv_rate + rng.normal(0.0, 0.05), 0.0, 1.0))
        logged_in = 1 if (label in ("normal", "r2l", "u2r") and rng.uniform() < 0.7) else 0

        record = {
            "duration": duration,
            "protocol_type": protocol,
            "service": service,
            "flag": flag,
            "src_bytes": src_bytes,
            "dst_bytes": dst_bytes,
            "logged_in": logged_in,
            "count": count,
            "srv_count": srv_count,
            "serror_rate": serror_rate,
            "rerror_rate": rerror_rate,
            "same_srv_rate": same_srv_rate,
            "diff_srv_rate": diff_srv_rate,
            "dst_host_count": float(np.clip(rng.poisson(count_mean * 0.6) + 1, 1, 255)),
            "dst_host_srv_count": float(np.clip(rng.poisson(srv_count_mean * 0.5) + 1, 1, 255)),
            "dst_host_same_srv_rate": float(np.clip(rng.normal(same_srv, 0.1), 0.0, 1.0)),
            "dst_host_serror_rate": float(np.clip(rng.normal(serror, 0.1), 0.0, 1.0)),
            "label": label,
        }
        if self.reduced:
            return record

        compromised = label in ("r2l", "u2r")
        record.update(
            {
                "land": 1 if (label == "dos" and rng.uniform() < 0.01) else 0,
                "wrong_fragment": float(rng.integers(0, 3)) if label == "dos" else 0.0,
                "urgent": 0.0,
                "hot": float(rng.poisson(3.0)) if compromised else float(rng.poisson(0.1)),
                "num_failed_logins": float(rng.poisson(1.5)) if label == "r2l" else 0.0,
                "num_compromised": float(rng.poisson(2.0)) if compromised else 0.0,
                "root_shell": 1.0 if (label == "u2r" and rng.uniform() < 0.6) else 0.0,
                "su_attempted": float(rng.integers(0, 2)) if label == "u2r" else 0.0,
                "num_root": float(rng.poisson(2.5)) if label == "u2r" else 0.0,
                "num_file_creations": float(rng.poisson(1.5)) if compromised else 0.0,
                "num_shells": 1.0 if (label == "u2r" and rng.uniform() < 0.4) else 0.0,
                "num_access_files": float(rng.poisson(0.8)) if compromised else 0.0,
                "num_outbound_cmds": 0.0,
                "is_host_login": 0,
                "is_guest_login": 1 if (label == "r2l" and rng.uniform() < 0.3) else 0,
                "srv_serror_rate": float(np.clip(rng.normal(serror, 0.08), 0.0, 1.0)),
                "srv_rerror_rate": float(np.clip(rng.normal(0.05, 0.05), 0.0, 1.0)),
                "srv_diff_host_rate": float(np.clip(rng.normal(0.1, 0.08), 0.0, 1.0)),
                "dst_host_diff_srv_rate": float(np.clip(rng.normal(1.0 - same_srv, 0.1), 0.0, 1.0)),
                "dst_host_same_src_port_rate": float(np.clip(rng.normal(0.5, 0.2), 0.0, 1.0)),
                "dst_host_srv_diff_host_rate": float(np.clip(rng.normal(0.1, 0.08), 0.0, 1.0)),
                "dst_host_srv_serror_rate": float(np.clip(rng.normal(serror, 0.1), 0.0, 1.0)),
                "dst_host_rerror_rate": float(np.clip(rng.normal(0.05, 0.05), 0.0, 1.0)),
                "dst_host_srv_rerror_rate": float(np.clip(rng.normal(0.05, 0.05), 0.0, 1.0)),
            }
        )
        return record


def load_nsl_kdd(n_records: int = 25_000, seed: int = 23, reduced: bool = True) -> DatasetBundle:
    """Load the NSL-KDD stand-in as a :class:`DatasetBundle`.

    The real KDDTrain+ split has 125,973 records; the default 25,000-row
    sample keeps CPU-only experiments tractable while preserving the class mix.
    """
    generator = NSLKDDGenerator(seed=seed, reduced=reduced)
    table = generator.generate(n_records=n_records)
    return DatasetBundle(
        name="nsl_kdd",
        table=table,
        schema=generator.schema,
        catalog=generator.catalog,
        label_column="label",
        condition_columns=["service", "protocol_type", "label"],
        description=(
            "Synthetic stand-in for NSL-KDD: published 41-feature schema, "
            "five-class label grouping with the original imbalance, and "
            "service/protocol/flag co-occurrence rules used as knowledge-graph "
            "constraints; generated offline because the original files are "
            "unavailable."
        ),
    )
