"""Synthetic generator for the UNSW-NB15 network intrusion dataset.

The real UNSW-NB15 corpus (2,540,044 flow records, 49 attributes spanning
flow, basic, content, time and generated feature groups, nine attack
families plus normal traffic) cannot be downloaded in this offline
environment.  This module generates a statistically faithful stand-in:

* the full 49-column schema with the published feature names and types,
* the published attack-category imbalance (Normal ~87 %, Generic ~8.5 %,
  Exploits ~1.8 %, ... Worms ~0.007 %),
* protocol / service / destination-port / state co-occurrence rules (HTTP is
  TCP on 80/8080, DNS is UDP or TCP on 53, and so on), which is exactly the
  kind of domain constraint the paper's knowledge graph encodes,
* per-category continuous feature profiles so that attack classes are
  separable by a downstream classifier (as they are in the real data).

A reduced 14-column schema (``reduced=True``, the default for the GAN
experiments) keeps the generative-model benchmarks tractable on CPU while
preserving every column the knowledge graph constrains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import DatasetBundle
from repro.knowledge.catalog import DomainCatalog, EventSpec
from repro.tabular.schema import ColumnSpec, TableSchema
from repro.tabular.table import Table

__all__ = [
    "ATTACK_CATEGORIES",
    "UNSW_FIELD_MAP",
    "UNSWNB15Generator",
    "unsw_nb15_catalog",
    "unsw_nb15_schema",
    "load_unsw_nb15",
]

#: Field map for the knowledge machinery: the "event type" role is played by
#: the application-layer service, whose protocol/port combinations the
#: knowledge graph constrains.
UNSW_FIELD_MAP: dict[str, str] = {
    "event_type": "service",
    "protocol": "proto",
    "source_ip": "srcip",
    "destination_ip": "dstip",
    "source_port": "sport",
    "destination_port": "dsport",
    "label": "attack_cat",
}

#: Attack categories with (approximately) the published proportions of the
#: full 2.54M-record corpus.
ATTACK_CATEGORIES: dict[str, float] = {
    "Normal": 0.8735,
    "Generic": 0.0848,
    "Exploits": 0.0175,
    "Fuzzers": 0.0095,
    "DoS": 0.0064,
    "Reconnaissance": 0.0055,
    "Analysis": 0.0011,
    "Backdoors": 0.0009,
    "Shellcode": 0.0006,
    "Worms": 0.0002,
}

_SRC_IPS = (
    "59.166.0.1", "59.166.0.2", "59.166.0.3", "59.166.0.4",
    "175.45.176.1", "175.45.176.2", "175.45.176.3",
)
_DST_IPS = (
    "149.171.126.1", "149.171.126.2", "149.171.126.3", "149.171.126.4",
    "149.171.126.5", "149.171.126.6",
)

#: Service -> (allowed protocols, allowed destination ports).
_SERVICE_RULES: dict[str, tuple[tuple[str, ...], tuple[int, ...]]] = {
    "http": (("tcp",), (80, 8080)),
    "ssl": (("tcp",), (443,)),
    "dns": (("udp", "tcp"), (53,)),
    "smtp": (("tcp",), (25,)),
    "ftp": (("tcp",), (21,)),
    "ftp-data": (("tcp",), (20,)),
    "ssh": (("tcp",), (22,)),
    "pop3": (("tcp",), (110,)),
    "snmp": (("udp",), (161,)),
    "radius": (("udp",), (1812,)),
    "irc": (("tcp",), (6667,)),
    "dhcp": (("udp",), (67, 68)),
    "-": (("tcp", "udp", "icmp"), (0, 1024, 5190, 6881, 31337, 49152, 111, 514)),
}

_PROTOCOLS = ("tcp", "udp", "icmp")
_STATES = ("FIN", "CON", "INT", "REQ", "RST", "CLO")

#: Per-protocol admissible connection states (a second KG-style constraint).
_PROTO_STATES: dict[str, tuple[str, ...]] = {
    "tcp": ("FIN", "CON", "REQ", "RST", "CLO"),
    "udp": ("CON", "INT", "REQ"),
    "icmp": ("INT", "CLO"),
}

#: Service mixture per attack category (service name -> weight).
_CATEGORY_SERVICES: dict[str, dict[str, float]] = {
    "Normal": {"http": 0.28, "ssl": 0.18, "dns": 0.30, "smtp": 0.07, "ftp": 0.03,
               "ftp-data": 0.02, "ssh": 0.04, "pop3": 0.03, "-": 0.05},
    "Generic": {"dns": 0.55, "http": 0.15, "smtp": 0.10, "-": 0.20},
    "Exploits": {"http": 0.45, "ftp": 0.10, "smtp": 0.12, "-": 0.33},
    "Fuzzers": {"http": 0.35, "dns": 0.15, "-": 0.50},
    "DoS": {"http": 0.40, "dns": 0.20, "-": 0.40},
    "Reconnaissance": {"http": 0.25, "dns": 0.25, "snmp": 0.15, "-": 0.35},
    "Analysis": {"http": 0.50, "-": 0.50},
    "Backdoors": {"ssh": 0.25, "irc": 0.20, "-": 0.55},
    "Shellcode": {"http": 0.30, "-": 0.70},
    "Worms": {"http": 0.45, "smtp": 0.25, "-": 0.30},
}

#: Per-category continuous profiles:
#: (duration log-mean, sbytes log-mean, dbytes log-mean, spkts mean, sttl mean)
_CATEGORY_PROFILES: dict[str, tuple[float, float, float, float, float]] = {
    "Normal": (0.0, 6.5, 7.5, 12.0, 62.0),
    "Generic": (-3.0, 4.7, 3.2, 2.0, 254.0),
    "Exploits": (0.5, 6.9, 5.5, 14.0, 62.0),
    "Fuzzers": (1.2, 7.4, 4.0, 20.0, 62.0),
    "DoS": (0.2, 6.8, 3.5, 16.0, 254.0),
    "Reconnaissance": (-2.0, 4.3, 3.0, 3.0, 254.0),
    "Analysis": (-1.0, 5.0, 2.5, 4.0, 254.0),
    "Backdoors": (0.8, 5.8, 5.2, 9.0, 62.0),
    "Shellcode": (-1.5, 4.9, 3.4, 4.0, 62.0),
    "Worms": (0.6, 6.2, 5.8, 11.0, 62.0),
}

_REDUCED_COLUMNS = [
    "proto", "service", "state", "dsport", "dur", "sbytes", "dbytes", "sttl",
    "dttl", "spkts", "dpkts", "smeansz", "dmeansz", "attack_cat",
]

_ALL_DSPORTS = tuple(sorted({port for _, ports in _SERVICE_RULES.values() for port in ports}))


def unsw_nb15_schema(reduced: bool = True) -> TableSchema:
    """The UNSW-NB15 schema: 49 columns, or the 14-column reduced view."""
    categories = tuple(ATTACK_CATEGORIES)
    columns = [
        ColumnSpec("srcip", "categorical", categories=_SRC_IPS),
        ColumnSpec("sport", "continuous", minimum=1, maximum=65535),
        ColumnSpec("dstip", "categorical", categories=_DST_IPS),
        ColumnSpec("dsport", "categorical", categories=_ALL_DSPORTS),
        ColumnSpec("proto", "categorical", categories=_PROTOCOLS),
        ColumnSpec("state", "categorical", categories=_STATES),
        ColumnSpec("dur", "continuous", minimum=0.0, maximum=3600.0),
        ColumnSpec("sbytes", "continuous", minimum=0.0, maximum=1.0e7),
        ColumnSpec("dbytes", "continuous", minimum=0.0, maximum=1.0e7),
        ColumnSpec("sttl", "continuous", minimum=0.0, maximum=255.0),
        ColumnSpec("dttl", "continuous", minimum=0.0, maximum=255.0),
        ColumnSpec("sloss", "continuous", minimum=0.0, maximum=5000.0),
        ColumnSpec("dloss", "continuous", minimum=0.0, maximum=5000.0),
        ColumnSpec("service", "categorical", categories=tuple(_SERVICE_RULES)),
        ColumnSpec("sload", "continuous", minimum=0.0, maximum=1.0e9),
        ColumnSpec("dload", "continuous", minimum=0.0, maximum=1.0e9),
        ColumnSpec("spkts", "continuous", minimum=0.0, maximum=10000.0),
        ColumnSpec("dpkts", "continuous", minimum=0.0, maximum=10000.0),
        ColumnSpec("swin", "continuous", minimum=0.0, maximum=255.0),
        ColumnSpec("dwin", "continuous", minimum=0.0, maximum=255.0),
        ColumnSpec("stcpb", "continuous", minimum=0.0, maximum=4.3e9),
        ColumnSpec("dtcpb", "continuous", minimum=0.0, maximum=4.3e9),
        ColumnSpec("smeansz", "continuous", minimum=0.0, maximum=1500.0),
        ColumnSpec("dmeansz", "continuous", minimum=0.0, maximum=1500.0),
        ColumnSpec("trans_depth", "continuous", minimum=0.0, maximum=20.0),
        ColumnSpec("res_bdy_len", "continuous", minimum=0.0, maximum=1.0e6),
        ColumnSpec("sjit", "continuous", minimum=0.0, maximum=1.0e5),
        ColumnSpec("djit", "continuous", minimum=0.0, maximum=1.0e5),
        ColumnSpec("stime", "continuous", minimum=1.4e9, maximum=1.5e9),
        ColumnSpec("ltime", "continuous", minimum=1.4e9, maximum=1.5e9),
        ColumnSpec("sintpkt", "continuous", minimum=0.0, maximum=1.0e4),
        ColumnSpec("dintpkt", "continuous", minimum=0.0, maximum=1.0e4),
        ColumnSpec("tcprtt", "continuous", minimum=0.0, maximum=10.0),
        ColumnSpec("synack", "continuous", minimum=0.0, maximum=10.0),
        ColumnSpec("ackdat", "continuous", minimum=0.0, maximum=10.0),
        ColumnSpec("is_sm_ips_ports", "categorical", categories=(0, 1)),
        ColumnSpec("ct_state_ttl", "continuous", minimum=0.0, maximum=10.0),
        ColumnSpec("ct_flw_http_mthd", "continuous", minimum=0.0, maximum=30.0),
        ColumnSpec("is_ftp_login", "categorical", categories=(0, 1)),
        ColumnSpec("ct_ftp_cmd", "continuous", minimum=0.0, maximum=10.0),
        ColumnSpec("ct_srv_src", "continuous", minimum=0.0, maximum=60.0),
        ColumnSpec("ct_srv_dst", "continuous", minimum=0.0, maximum=60.0),
        ColumnSpec("ct_dst_ltm", "continuous", minimum=0.0, maximum=60.0),
        ColumnSpec("ct_src_ltm", "continuous", minimum=0.0, maximum=60.0),
        ColumnSpec("ct_src_dport_ltm", "continuous", minimum=0.0, maximum=60.0),
        ColumnSpec("ct_dst_sport_ltm", "continuous", minimum=0.0, maximum=60.0),
        ColumnSpec("ct_dst_src_ltm", "continuous", minimum=0.0, maximum=60.0),
        ColumnSpec("attack_cat", "categorical", categories=categories, sensitive=True),
        ColumnSpec("label", "categorical", categories=(0, 1)),
    ]
    schema = TableSchema(columns)
    if not reduced:
        return schema
    return schema.subset(_REDUCED_COLUMNS)


def unsw_nb15_catalog() -> DomainCatalog:
    """Domain catalog encoding the service/protocol/port rules of UNSW-NB15."""
    events = [
        EventSpec(
            name=service,
            kind="benign",
            protocols=protocols,
            destination_ports=ports,
            source_port_range=(1, 65535),
            description=f"UNSW-NB15 service {service!r}",
        )
        for service, (protocols, ports) in _SERVICE_RULES.items()
    ]
    return DomainCatalog(
        name="unsw_nb15",
        devices=[],
        events=events,
        attacks=[],
        domains={},
        field_map=dict(UNSW_FIELD_MAP),
    )


@dataclass
class UNSWNB15Generator:
    """Generates UNSW-NB15-like flow records."""

    seed: int = 11
    reduced: bool = True

    def __post_init__(self) -> None:
        self.schema = unsw_nb15_schema(reduced=self.reduced)
        self.catalog = unsw_nb15_catalog()
        self._rng = np.random.default_rng(self.seed)

    def generate(self, n_records: int = 20_000) -> Table:
        """Generate ``n_records`` rows following the published category mix."""
        if n_records <= 0:
            raise ValueError("n_records must be positive")
        categories = list(ATTACK_CATEGORIES)
        weights = np.asarray([ATTACK_CATEGORIES[c] for c in categories])
        weights = weights / weights.sum()
        counts = self._rng.multinomial(n_records, weights)
        # Guarantee at least a couple of examples of every class so that
        # stratified splits and per-class metrics are well defined even for
        # small samples.
        for i in range(len(counts)):
            if counts[i] < 2:
                counts[i] = 2
        records: list[dict] = []
        for category, count in zip(categories, counts):
            for _ in range(int(count)):
                records.append(self._generate_record(category))
        self._rng.shuffle(records)
        records = records[:n_records] if len(records) > n_records else records
        if self.reduced:
            records = [{k: record[k] for k in _REDUCED_COLUMNS} for record in records]
        return Table.from_records(self.schema, records)

    # ------------------------------------------------------------------ #
    def _generate_record(self, category: str) -> dict:
        rng = self._rng
        service_mix = _CATEGORY_SERVICES[category]
        services = list(service_mix)
        service_weights = np.asarray([service_mix[s] for s in services])
        service = services[rng.choice(len(services), p=service_weights / service_weights.sum())]
        protocols, ports = _SERVICE_RULES[service]
        proto = protocols[rng.integers(0, len(protocols))]
        state = _PROTO_STATES[proto][rng.integers(0, len(_PROTO_STATES[proto]))]
        dsport = int(ports[rng.integers(0, len(ports))])

        log_dur, log_sbytes, log_dbytes, spkts_mean, sttl_mean = _CATEGORY_PROFILES[category]
        dur = float(np.clip(rng.lognormal(log_dur, 1.0), 0.0, 3600.0))
        sbytes = float(np.clip(rng.lognormal(log_sbytes, 1.0), 0.0, 1.0e7))
        dbytes = float(np.clip(rng.lognormal(log_dbytes, 1.2), 0.0, 1.0e7))
        spkts = float(np.clip(rng.poisson(spkts_mean) + 1, 1, 10_000))
        dpkts = float(np.clip(rng.poisson(max(spkts_mean * 0.8, 1.0)) + (1 if dbytes > 0 else 0), 0, 10_000))
        sttl = float(np.clip(rng.normal(sttl_mean, 4.0), 0, 255))
        dttl = float(np.clip(rng.normal(sttl_mean * 0.5 + 30.0, 6.0), 0, 255))
        smeansz = float(np.clip(sbytes / max(spkts, 1.0), 0, 1500))
        dmeansz = float(np.clip(dbytes / max(dpkts, 1.0), 0, 1500))

        record = {
            "proto": proto,
            "service": service,
            "state": state,
            "dsport": dsport,
            "dur": dur,
            "sbytes": sbytes,
            "dbytes": dbytes,
            "sttl": sttl,
            "dttl": dttl,
            "spkts": spkts,
            "dpkts": dpkts,
            "smeansz": smeansz,
            "dmeansz": dmeansz,
            "attack_cat": category,
        }
        if self.reduced:
            return record

        is_tcp = proto == "tcp"
        swin = 255.0 if is_tcp else 0.0
        stime = float(rng.uniform(1.42e9, 1.43e9))
        record.update(
            {
                "srcip": _SRC_IPS[rng.integers(0, len(_SRC_IPS))],
                "sport": float(rng.integers(1024, 65536)),
                "dstip": _DST_IPS[rng.integers(0, len(_DST_IPS))],
                "sloss": float(rng.poisson(1.0) if is_tcp else 0.0),
                "dloss": float(rng.poisson(0.6) if is_tcp else 0.0),
                "sload": float(np.clip(sbytes * 8.0 / max(dur, 1e-3), 0, 1.0e9)),
                "dload": float(np.clip(dbytes * 8.0 / max(dur, 1e-3), 0, 1.0e9)),
                "swin": swin,
                "dwin": swin,
                "stcpb": float(rng.uniform(0, 4.2e9)) if is_tcp else 0.0,
                "dtcpb": float(rng.uniform(0, 4.2e9)) if is_tcp else 0.0,
                "trans_depth": float(rng.integers(0, 3)) if service == "http" else 0.0,
                "res_bdy_len": float(rng.lognormal(5.0, 1.5)) if service == "http" else 0.0,
                "sjit": float(np.clip(rng.lognormal(2.0, 1.5), 0, 1.0e5)),
                "djit": float(np.clip(rng.lognormal(1.5, 1.5), 0, 1.0e5)),
                "stime": stime,
                "ltime": stime + dur,
                "sintpkt": float(np.clip(dur * 1000.0 / max(spkts, 1.0), 0, 1.0e4)),
                "dintpkt": float(np.clip(dur * 1000.0 / max(dpkts, 1.0), 0, 1.0e4)),
                "tcprtt": float(np.clip(rng.lognormal(-3.0, 1.0), 0, 10)) if is_tcp else 0.0,
                "synack": float(np.clip(rng.lognormal(-3.5, 1.0), 0, 10)) if is_tcp else 0.0,
                "ackdat": float(np.clip(rng.lognormal(-3.8, 1.0), 0, 10)) if is_tcp else 0.0,
                "is_sm_ips_ports": 0,
                "ct_state_ttl": float(rng.integers(0, 7)),
                "ct_flw_http_mthd": float(rng.integers(0, 5)) if service == "http" else 0.0,
                "is_ftp_login": 1 if service == "ftp" and rng.uniform() < 0.5 else 0,
                "ct_ftp_cmd": float(rng.integers(0, 4)) if service == "ftp" else 0.0,
                "ct_srv_src": float(rng.integers(1, 40)),
                "ct_srv_dst": float(rng.integers(1, 40)),
                "ct_dst_ltm": float(rng.integers(1, 40)),
                "ct_src_ltm": float(rng.integers(1, 40)),
                "ct_src_dport_ltm": float(rng.integers(1, 40)),
                "ct_dst_sport_ltm": float(rng.integers(1, 40)),
                "ct_dst_src_ltm": float(rng.integers(1, 40)),
                "label": 0 if category == "Normal" else 1,
            }
        )
        return record


def load_unsw_nb15(
    n_records: int = 20_000, seed: int = 11, reduced: bool = True
) -> DatasetBundle:
    """Load the UNSW-NB15 stand-in as a :class:`DatasetBundle`.

    The full corpus has 2,540,044 records; the default 20,000-row sample keeps
    the CPU-only GAN benchmarks tractable while preserving the category mix.
    """
    generator = UNSWNB15Generator(seed=seed, reduced=reduced)
    table = generator.generate(n_records=n_records)
    return DatasetBundle(
        name="unsw_nb15",
        table=table,
        schema=generator.schema,
        catalog=generator.catalog,
        label_column="attack_cat",
        condition_columns=["service", "proto", "attack_cat"],
        description=(
            "Synthetic stand-in for UNSW-NB15: published schema, attack-category "
            "imbalance and service/protocol/port co-occurrence rules; generated "
            "offline because the original CSVs are unavailable."
        ),
    )
