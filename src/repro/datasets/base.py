"""Common dataset bundle returned by every loader."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.knowledge.catalog import DomainCatalog
from repro.tabular.schema import TableSchema
from repro.tabular.table import Table

__all__ = ["DatasetBundle"]


@dataclass
class DatasetBundle:
    """A dataset plus everything the pipeline needs to use it.

    Attributes
    ----------
    name:
        Registry name of the dataset.
    table:
        The generated records.
    schema:
        Column schema of ``table``.
    catalog:
        Domain catalog describing devices, events and attacks; the
        knowledge-graph builder consumes this.
    label_column:
        The column downstream NIDS classifiers predict.
    condition_columns:
        Discrete attributes used for the KiNETGAN condition vector.
    description:
        Human-readable provenance note (including the simulation caveat).
    """

    name: str
    table: Table
    schema: TableSchema
    catalog: DomainCatalog
    label_column: str
    condition_columns: list[str] = field(default_factory=list)
    description: str = ""

    @property
    def n_records(self) -> int:
        return self.table.n_rows

    def summary(self) -> str:
        """One-paragraph description used by the examples."""
        label_dist = self.table.class_distribution(self.label_column)
        parts = [
            f"Dataset {self.name!r}: {self.n_records} records, "
            f"{len(self.schema)} columns "
            f"({len(self.schema.categorical_names)} categorical, "
            f"{len(self.schema.continuous_names)} continuous).",
            "Label distribution: "
            + ", ".join(f"{value}={share:.3f}" for value, share in label_dist.items())
            + ".",
        ]
        if self.description:
            parts.append(self.description)
        return "\n".join(parts)
