"""Simulator for the paper's lab-collected IoT network capture.

The paper (section IV-B-1) collects 14,520 Wireshark flow records from a
small lab network containing a Blink camera, a smart plug, a motion sensor
and a tag manager, observes events such as motion detection, lamp activation
and tag-manager interactions, and injects attacks such as traffic flooding.
The raw capture is private, so this module simulates the same environment:

* the same device fleet with fixed LAN addresses,
* benign event types whose (protocol, destination, port) combinations follow
  fixed cloud-endpoint rules,
* attack event types -- traffic flooding, a port scan and an exploit of
  CVE-1999-0003 whose valid destination ports lie in 32771..34000 (the
  paper's running example for knowledge-guided validity).

Because the generating rules are explicit, the
:class:`~repro.knowledge.catalog.DomainCatalog` returned by
:func:`lab_iot_catalog` is exact ground truth: a record violates the
knowledge graph if and only if it violates the simulator's rules, which is
what makes the knowledge-guided discriminator evaluable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import DatasetBundle
from repro.knowledge.catalog import AttackSpec, DeviceSpec, DomainCatalog, EventSpec
from repro.tabular.schema import ColumnSpec, TableSchema
from repro.tabular.table import Table

__all__ = [
    "LAB_DEVICES",
    "LAB_DOMAINS",
    "LabIoTSimulator",
    "lab_iot_catalog",
    "lab_iot_schema",
    "load_lab_iot",
]

# --------------------------------------------------------------------------- #
# Static environment description
# --------------------------------------------------------------------------- #
LAB_DEVICES: list[DeviceSpec] = [
    DeviceSpec("blink_camera", "192.168.1.10", kind="camera",
               description="Blink security camera"),
    DeviceSpec("smart_plug", "192.168.1.11", kind="plug",
               description="Wi-Fi smart plug driving a lamp"),
    DeviceSpec("motion_sensor", "192.168.1.12", kind="sensor",
               description="PIR motion sensor"),
    DeviceSpec("tag_manager", "192.168.1.13", kind="hub",
               description="BLE tag manager gateway"),
    DeviceSpec("home_hub", "192.168.1.1", kind="router",
               description="Home router / controller"),
    DeviceSpec("attacker_box", "192.168.1.66", kind="attacker",
               description="Compromised host used to launch attacks"),
]

LAB_DOMAINS: dict[str, str] = {
    "blink.cloud.amazonaws.com": "34.201.12.5",
    "plug.vendor-cloud.com": "52.94.100.7",
    "sensor.iot-backend.net": "18.210.45.3",
    "tagmanager.service.io": "104.18.6.9",
    "pool.ntp.org": "129.6.15.28",
    "dns.google": "8.8.8.8",
}

_DEVICE_IP = {device.name: device.ip for device in LAB_DEVICES}

# Ports the attack events may target (kept as explicit categories so the
# destination-port column stays low-cardinality and the knowledge constraint
# is still range-based and meaningful).
_CVE_PORTS = tuple(range(32771, 32791)) + (33000, 33500, 34000)
_FLOOD_PORTS = (80, 443, 8883, 9999, 53, 123)
_SCAN_PORTS = (21, 22, 23, 25, 80, 110, 139, 443, 445, 3389, 8080)

_BENIGN_EVENTS: list[EventSpec] = [
    EventSpec(
        name="motion_detected",
        kind="benign",
        protocols=("TCP",),
        source_devices=("motion_sensor",),
        destination_domains=("sensor.iot-backend.net",),
        destination_ports=(443, 8883),
        source_port_range=(49152, 65535),
        description="Motion sensor reports a motion event to its cloud backend",
    ),
    EventSpec(
        name="camera_stream_upload",
        kind="benign",
        protocols=("TCP",),
        source_devices=("blink_camera",),
        destination_domains=("blink.cloud.amazonaws.com",),
        destination_ports=(443,),
        source_port_range=(49152, 65535),
        description="Blink camera uploads a motion clip",
    ),
    EventSpec(
        name="lamp_activation",
        kind="benign",
        protocols=("TCP",),
        source_devices=("home_hub",),
        destination_ips=("192.168.1.11",),
        destination_ports=(9999,),
        source_port_range=(49152, 65535),
        description="Hub sends a local turn-on command to the smart plug",
    ),
    EventSpec(
        name="plug_telemetry",
        kind="benign",
        protocols=("TCP",),
        source_devices=("smart_plug",),
        destination_domains=("plug.vendor-cloud.com",),
        destination_ports=(443, 8883),
        source_port_range=(49152, 65535),
        description="Smart plug reports power telemetry to the vendor cloud",
    ),
    EventSpec(
        name="tag_manager_sync",
        kind="benign",
        protocols=("TCP",),
        source_devices=("tag_manager",),
        destination_domains=("tagmanager.service.io",),
        destination_ports=(443, 8080),
        source_port_range=(49152, 65535),
        description="Tag manager synchronises tag inventory",
    ),
    EventSpec(
        name="ntp_sync",
        kind="benign",
        protocols=("UDP",),
        source_devices=("blink_camera", "smart_plug", "motion_sensor", "tag_manager"),
        destination_domains=("pool.ntp.org",),
        destination_ports=(123,),
        source_port_range=(49152, 65535),
        description="Periodic NTP clock synchronisation",
    ),
    EventSpec(
        name="dns_lookup",
        kind="benign",
        protocols=("UDP",),
        source_devices=("blink_camera", "smart_plug", "motion_sensor", "tag_manager", "home_hub"),
        destination_domains=("dns.google",),
        destination_ports=(53,),
        source_port_range=(49152, 65535),
        description="DNS resolution of a cloud endpoint",
    ),
]

_ATTACK_SPECS: list[AttackSpec] = [
    AttackSpec(
        name="traffic_flooding",
        cve="CVE-2018-17066",
        event=EventSpec(
            name="traffic_flooding",
            kind="attack",
            protocols=("UDP", "TCP"),
            source_devices=("attacker_box",),
            destination_ips=("192.168.1.10", "192.168.1.11", "192.168.1.12", "192.168.1.13"),
            destination_ports=_FLOOD_PORTS,
            source_port_range=(1024, 65535),
            description="Volumetric flood against a lab device",
        ),
        description="Traffic flooding attack simulated in the lab (paper section IV-B-1)",
    ),
    AttackSpec(
        name="port_scan",
        cve="CVE-1999-0454",
        event=EventSpec(
            name="port_scan",
            kind="attack",
            protocols=("TCP",),
            source_devices=("attacker_box",),
            destination_ips=("192.168.1.10", "192.168.1.11", "192.168.1.12", "192.168.1.13"),
            destination_ports=_SCAN_PORTS,
            source_port_range=(1024, 65535),
            description="Reconnaissance scan across well-known service ports",
        ),
        description="TCP port scan against lab devices",
    ),
    AttackSpec(
        name="cve_1999_0003",
        cve="CVE-1999-0003",
        event=EventSpec(
            name="cve_1999_0003",
            kind="attack",
            protocols=("TCP",),
            source_devices=("attacker_box",),
            destination_ips=("192.168.1.10", "192.168.1.13"),
            destination_ports=_CVE_PORTS,
            destination_port_range=(32771, 34000),
            source_port_range=(1024, 65535),
            description="ToolTalk RPC exploit; valid ports lie in 32771..34000",
        ),
        description="The paper's running example: CVE-1999-0003 with port range 32771-34000",
    ),
]

#: Relative frequency of each event type in the simulated capture.  Benign
#: traffic dominates heavily, mirroring the class imbalance the paper calls
#: out as a core difficulty.
_EVENT_WEIGHTS: dict[str, float] = {
    "dns_lookup": 0.22,
    "ntp_sync": 0.14,
    "motion_detected": 0.16,
    "camera_stream_upload": 0.12,
    "plug_telemetry": 0.12,
    "tag_manager_sync": 0.08,
    "lamp_activation": 0.06,
    "traffic_flooding": 0.055,
    "port_scan": 0.035,
    "cve_1999_0003": 0.01,
}

#: Per-event continuous feature profiles: (packets mean, bytes-per-packet
#: mean, duration-ms log-mean).  Drawn from log-normal distributions.
_EVENT_PROFILES: dict[str, tuple[float, float, float]] = {
    "dns_lookup": (2.0, 80.0, 2.5),
    "ntp_sync": (2.0, 90.0, 2.0),
    "motion_detected": (12.0, 220.0, 5.0),
    "camera_stream_upload": (420.0, 950.0, 8.3),
    "plug_telemetry": (9.0, 180.0, 4.4),
    "tag_manager_sync": (25.0, 300.0, 5.6),
    "lamp_activation": (6.0, 120.0, 3.0),
    "traffic_flooding": (2500.0, 600.0, 8.8),
    "port_scan": (1.0, 60.0, 1.2),
    "cve_1999_0003": (18.0, 260.0, 5.2),
}

#: Mapping from event type to the NIDS label used in the evaluation.
EVENT_LABELS: dict[str, str] = {
    **{spec.name: "normal" for spec in _BENIGN_EVENTS},
    "traffic_flooding": "flooding",
    "port_scan": "port_scan",
    "cve_1999_0003": "exploit",
}

_ALL_DST_PORTS = tuple(sorted({
    port
    for spec in _BENIGN_EVENTS + [attack.event for attack in _ATTACK_SPECS]
    for port in spec.destination_ports
}))

_ALL_DST_IPS = tuple(sorted({
    ip
    for spec in _BENIGN_EVENTS + [attack.event for attack in _ATTACK_SPECS]
    for ip in spec.destination_ips
} | set(LAB_DOMAINS.values())))

_ALL_SRC_IPS = tuple(sorted(_DEVICE_IP.values()))


def lab_iot_catalog() -> DomainCatalog:
    """The ground-truth domain catalog of the simulated lab network."""
    return DomainCatalog(
        name="lab_iot",
        devices=list(LAB_DEVICES),
        events=list(_BENIGN_EVENTS),
        attacks=list(_ATTACK_SPECS),
        domains=dict(LAB_DOMAINS),
    )


def lab_iot_schema() -> TableSchema:
    """Schema of the simulated capture (mirrors the paper's collected fields)."""
    event_names = tuple(_EVENT_WEIGHTS)
    labels = tuple(dict.fromkeys(EVENT_LABELS.values()))
    return TableSchema(
        [
            ColumnSpec("event_type", "categorical", categories=event_names),
            ColumnSpec("protocol", "categorical", categories=("TCP", "UDP")),
            ColumnSpec("src_ip", "categorical", categories=_ALL_SRC_IPS),
            ColumnSpec("dst_ip", "categorical", categories=_ALL_DST_IPS),
            ColumnSpec("dst_port", "categorical", categories=_ALL_DST_PORTS),
            ColumnSpec("src_port", "continuous", minimum=1024, maximum=65535),
            ColumnSpec("packet_count", "continuous", minimum=1, maximum=100000),
            ColumnSpec("byte_count", "continuous", minimum=40, maximum=5.0e7),
            ColumnSpec("duration_ms", "continuous", minimum=0.1, maximum=600000),
            ColumnSpec("label", "categorical", categories=labels, sensitive=True),
        ]
    )


@dataclass
class LabIoTSimulator:
    """Generates flow records for the simulated lab network.

    Parameters
    ----------
    seed:
        Seed of the internal random generator; the default capture
        (``load_lab_iot()``) is fully reproducible.
    """

    seed: int = 7

    def __post_init__(self) -> None:
        self.catalog = lab_iot_catalog()
        self.schema = lab_iot_schema()
        self._rng = np.random.default_rng(self.seed)
        self._events = {spec.name: spec for spec in self.catalog.all_events()}

    # ------------------------------------------------------------------ #
    def generate(self, n_records: int = 14_520) -> Table:
        """Generate ``n_records`` flow records following the event mix."""
        if n_records <= 0:
            raise ValueError("n_records must be positive")
        names = list(_EVENT_WEIGHTS)
        weights = np.asarray([_EVENT_WEIGHTS[name] for name in names])
        weights = weights / weights.sum()
        counts = self._rng.multinomial(n_records, weights)
        records: list[dict] = []
        for name, count in zip(names, counts):
            for _ in range(int(count)):
                records.append(self._generate_event(name))
        self._rng.shuffle(records)
        return Table.from_records(self.schema, records)

    def generate_event_batch(self, event_name: str, count: int) -> Table:
        """Generate ``count`` records of a single event type (used by tests)."""
        if event_name not in self._events:
            raise KeyError(f"unknown event {event_name!r}")
        records = [self._generate_event(event_name) for _ in range(count)]
        return Table.from_records(self.schema, records)

    # ------------------------------------------------------------------ #
    def _generate_event(self, event_name: str) -> dict:
        rng = self._rng
        spec = self._events[event_name]
        protocol = spec.protocols[rng.integers(0, len(spec.protocols))]
        source_device = spec.source_devices[rng.integers(0, len(spec.source_devices))]
        src_ip = _DEVICE_IP[source_device]
        destination_ips = self.catalog.destination_ips_for(event_name)
        dst_ip = destination_ips[rng.integers(0, len(destination_ips))]
        dst_port = int(spec.destination_ports[rng.integers(0, len(spec.destination_ports))])
        low, high = spec.source_port_range if spec.source_port_range else (1024, 65535)
        src_port = float(rng.integers(low, high + 1))

        packets_mean, bytes_per_packet, log_duration = _EVENT_PROFILES[event_name]
        packet_count = float(
            np.clip(rng.lognormal(np.log(packets_mean), 0.6), 1, 100_000)
        )
        byte_count = float(
            np.clip(packet_count * rng.lognormal(np.log(bytes_per_packet), 0.4), 40, 5.0e7)
        )
        duration_ms = float(np.clip(rng.lognormal(log_duration, 0.8), 0.1, 600_000))

        return {
            "event_type": event_name,
            "protocol": protocol,
            "src_ip": src_ip,
            "dst_ip": dst_ip,
            "dst_port": dst_port,
            "src_port": src_port,
            "packet_count": packet_count,
            "byte_count": byte_count,
            "duration_ms": duration_ms,
            "label": EVENT_LABELS[event_name],
        }


def load_lab_iot(n_records: int = 14_520, seed: int = 7) -> DatasetBundle:
    """Load the simulated lab IoT capture as a :class:`DatasetBundle`.

    The default size matches the 14,520 records reported in the paper.
    """
    simulator = LabIoTSimulator(seed=seed)
    table = simulator.generate(n_records=n_records)
    return DatasetBundle(
        name="lab_iot",
        table=table,
        schema=simulator.schema,
        catalog=simulator.catalog,
        label_column="label",
        condition_columns=["event_type", "protocol", "label"],
        description=(
            "Simulated stand-in for the paper's private lab capture: same device "
            "fleet, event types, attack types and record count; generating rules "
            "double as knowledge-graph ground truth."
        ),
    )
