"""Boosted ensemble classifiers (gradient boosting and AdaBoost).

Both are implemented from scratch on numpy, matching the textbook
algorithms:

* :class:`GradientBoostingClassifier` -- multinomial gradient boosting with
  small regression trees fitted to the softmax residuals (Friedman's
  gradient tree boosting, one tree per class per stage).
* :class:`AdaBoostClassifier` -- the multi-class SAMME algorithm over
  shallow decision trees, with example weights realised by weighted
  resampling so the existing :class:`DecisionTreeClassifier` can be reused
  unchanged.

They register as ``"gradient_boosting"`` and ``"adaboost"`` in the NIDS
classifier registry and slot into the TSTR utility evaluation like every
other model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nids.decision_tree import DecisionTreeClassifier

__all__ = ["GradientBoostingClassifier", "AdaBoostClassifier"]


@dataclass
class _RegressionNode:
    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    left: "_RegressionNode | None" = None
    right: "_RegressionNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _RegressionTree:
    """A small CART regression tree (variance-reduction splits)."""

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        max_thresholds: int = 12,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_thresholds = max_thresholds
        self.rng = rng if rng is not None else np.random.default_rng()
        self._root: _RegressionNode | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_RegressionTree":
        self._root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _RegressionNode:
        node = _RegressionNode(value=float(y.mean()) if len(y) else 0.0)
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf or np.allclose(y, y[0]):
            return node
        best_gain, best_feature, best_threshold = 0.0, -1, 0.0
        base_var = float(np.var(y)) * len(y)
        for feature in range(X.shape[1]):
            column = X[:, feature]
            unique = np.unique(column)
            if len(unique) <= 1:
                continue
            if len(unique) > self.max_thresholds:
                quantiles = np.linspace(0.05, 0.95, self.max_thresholds)
                candidates = np.unique(np.quantile(column, quantiles))
            else:
                candidates = (unique[:-1] + unique[1:]) / 2.0
            for threshold in candidates:
                left = column <= threshold
                n_left = int(left.sum())
                n_right = len(y) - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                gain = base_var - (
                    float(np.var(y[left])) * n_left + float(np.var(y[~left])) * n_right
                )
                if gain > best_gain:
                    best_gain, best_feature, best_threshold = gain, feature, float(threshold)
        if best_feature < 0:
            return node
        mask = X[:, best_feature] <= best_threshold
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree used before fit()")
        out = np.empty(len(X), dtype=np.float64)
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


class GradientBoostingClassifier:
    """Multinomial gradient tree boosting (softmax deviance loss)."""

    def __init__(
        self,
        n_estimators: int = 40,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_estimators <= 0 or learning_rate <= 0:
            raise ValueError("n_estimators and learning_rate must be positive")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self.n_classes = 0
        self._base_scores: np.ndarray | None = None
        self._stages: list[list[_RegressionTree]] = []

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=int)
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        rng = np.random.default_rng(self.seed)
        self.n_classes = int(y.max()) + 1
        one_hot = np.zeros((len(y), self.n_classes))
        one_hot[np.arange(len(y)), y] = 1.0

        priors = np.clip(one_hot.mean(axis=0), 1e-6, 1.0)
        self._base_scores = np.log(priors)
        scores = np.tile(self._base_scores, (len(y), 1))
        self._stages = []

        for _ in range(self.n_estimators):
            probabilities = self._softmax(scores)
            residuals = one_hot - probabilities
            stage: list[_RegressionTree] = []
            if self.subsample < 1.0:
                subset = rng.choice(
                    len(y), size=max(2 * self.min_samples_leaf, int(self.subsample * len(y))),
                    replace=False,
                )
            else:
                subset = np.arange(len(y))
            for k in range(self.n_classes):
                tree = _RegressionTree(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    rng=rng,
                )
                tree.fit(X[subset], residuals[subset, k])
                scores[:, k] += self.learning_rate * tree.predict(X)
                stage.append(tree)
            self._stages.append(stage)
        return self

    @staticmethod
    def _softmax(scores: np.ndarray) -> np.ndarray:
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self._base_scores is None:
            raise RuntimeError("classifier used before fit()")
        X = np.asarray(X, dtype=np.float64)
        scores = np.tile(self._base_scores, (len(X), 1))
        for stage in self._stages:
            for k, tree in enumerate(stage):
                scores[:, k] += self.learning_rate * tree.predict(X)
        return scores

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self._softmax(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.decision_function(X).argmax(axis=1)


class AdaBoostClassifier:
    """Multi-class AdaBoost (SAMME) over shallow decision trees."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 2,
        learning_rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_estimators <= 0 or learning_rate <= 0:
            raise ValueError("n_estimators and learning_rate must be positive")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.seed = seed
        self.n_classes = 0
        self._estimators: list[DecisionTreeClassifier] = []
        self._alphas: list[float] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "AdaBoostClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=int)
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        rng = np.random.default_rng(self.seed)
        self.n_classes = int(y.max()) + 1
        weights = np.full(len(y), 1.0 / len(y))
        self._estimators, self._alphas = [], []

        for round_index in range(self.n_estimators):
            # Example weights are realised by weighted resampling so the
            # unweighted CART learner can be reused as the weak learner.
            sample = rng.choice(len(y), size=len(y), replace=True, p=weights)
            learner = DecisionTreeClassifier(
                max_depth=self.max_depth, min_samples_leaf=1, seed=self.seed + round_index
            )
            learner.fit(X[sample], y[sample])
            predictions = learner.predict(X)
            incorrect = (predictions != y).astype(np.float64)
            error = float(np.clip((weights * incorrect).sum(), 1e-10, 1.0 - 1e-10))
            # SAMME stops adding estimators once the weak learner is no
            # better than random guessing over K classes.
            if error >= 1.0 - 1.0 / self.n_classes:
                if not self._estimators:
                    self._estimators.append(learner)
                    self._alphas.append(1.0)
                break
            alpha = self.learning_rate * (
                np.log((1.0 - error) / error) + np.log(self.n_classes - 1.0)
            )
            self._estimators.append(learner)
            self._alphas.append(float(alpha))
            weights *= np.exp(alpha * incorrect)
            weights /= weights.sum()
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if not self._estimators:
            raise RuntimeError("classifier used before fit()")
        X = np.asarray(X, dtype=np.float64)
        votes = np.zeros((len(X), self.n_classes))
        for learner, alpha in zip(self._estimators, self._alphas):
            predictions = learner.predict(X)
            votes[np.arange(len(X)), predictions] += alpha
        return votes

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        votes = self.decision_function(X)
        totals = np.clip(votes.sum(axis=1, keepdims=True), 1e-12, None)
        return votes / totals

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.decision_function(X).argmax(axis=1)
