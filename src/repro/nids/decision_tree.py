"""CART decision tree classifier (Gini impurity, binary splits)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    """A tree node; leaves carry a class distribution."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    distribution: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeClassifier:
    """Greedy CART tree with Gini impurity and threshold splits.

    Features are expected to be numeric (use
    :class:`repro.nids.features.TabularFeaturizer`); one-hot encoded
    categoricals split naturally at 0.5.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 8,
        min_samples_leaf: int = 2,
        max_thresholds: int = 16,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_thresholds = max_thresholds
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self.n_classes = 0

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=int)
        if len(X) != len(y):
            raise ValueError("X and y lengths differ")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        # Never shrink a pre-set class count: ensembles (random forest) fix
        # the class space up front and bootstrap samples may miss rare classes.
        self.n_classes = max(self.n_classes, int(y.max()) + 1)
        self._rng = np.random.default_rng(self.seed)
        self._root = self._grow(X, y, depth=0)
        return self

    def _class_distribution(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, minlength=self.n_classes).astype(np.float64)
        return counts / counts.sum()

    @staticmethod
    def _gini(counts: np.ndarray) -> float:
        total = counts.sum()
        if total == 0:
            return 0.0
        p = counts / total
        return float(1.0 - (p**2).sum())

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        distribution = self._class_distribution(y)
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or len(np.unique(y)) == 1
        ):
            return _Node(distribution=distribution)

        best = self._best_split(X, y)
        if best is None:
            return _Node(distribution=distribution)
        feature, threshold = best
        mask = X[:, feature] <= threshold
        left = self._grow(X[mask], y[mask], depth + 1)
        right = self._grow(X[~mask], y[~mask], depth + 1)
        return _Node(feature=feature, threshold=threshold, left=left, right=right,
                     distribution=distribution)

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> tuple[int, float] | None:
        n_features = X.shape[1]
        feature_indices = np.arange(n_features)
        if self.max_features is not None and self.max_features < n_features:
            feature_indices = self._rng.choice(n_features, size=self.max_features, replace=False)
        parent_counts = np.bincount(y, minlength=self.n_classes)
        parent_gini = self._gini(parent_counts)
        best_gain = 1e-9
        best: tuple[int, float] | None = None
        for feature in feature_indices:
            values = X[:, feature]
            unique = np.unique(values)
            if len(unique) < 2:
                continue
            if len(unique) > self.max_thresholds:
                quantiles = np.linspace(0, 1, self.max_thresholds + 2)[1:-1]
                thresholds = np.unique(np.quantile(values, quantiles))
            else:
                thresholds = (unique[:-1] + unique[1:]) / 2.0
            for threshold in thresholds:
                mask = values <= threshold
                n_left = int(mask.sum())
                n_right = len(y) - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                left_counts = np.bincount(y[mask], minlength=self.n_classes)
                right_counts = parent_counts - left_counts
                gini = (
                    n_left * self._gini(left_counts) + n_right * self._gini(right_counts)
                ) / len(y)
                gain = parent_gini - gini
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float(threshold))
        return best

    # ------------------------------------------------------------------ #
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("classifier used before fit()")
        X = np.asarray(X, dtype=np.float64)
        out = np.zeros((len(X), self.n_classes))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.distribution
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)
