"""Linear support-vector classifier trained with the Pegasos sub-gradient method.

Multi-class classification uses the one-vs-rest reduction: one hinge-loss
linear classifier per class, the predicted class being the one with the
largest margin.  The primal objective per binary problem is

    lambda/2 * ||w||^2 + mean(max(0, 1 - y * (w.x + b)))

optimised with the Pegasos step size ``1 / (lambda * t)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearSVMClassifier"]


class LinearSVMClassifier:
    """One-vs-rest linear SVM with hinge loss (Pegasos sub-gradient descent)."""

    def __init__(
        self,
        regularization: float = 1e-3,
        epochs: int = 30,
        batch_size: int = 64,
        seed: int = 0,
    ) -> None:
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        self.regularization = regularization
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.weights: np.ndarray | None = None  # (n_classes, n_features)
        self.biases: np.ndarray | None = None
        self.n_classes = 0

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVMClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=int)
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        if len(X) != len(y):
            raise ValueError("X and y lengths differ")
        rng = np.random.default_rng(self.seed)
        self.n_classes = int(y.max()) + 1
        n_features = X.shape[1]
        self.weights = np.zeros((self.n_classes, n_features))
        self.biases = np.zeros(self.n_classes)

        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(len(X))
            for start in range(0, len(X), self.batch_size):
                step += 1
                batch = order[start : start + self.batch_size]
                eta = 1.0 / (self.regularization * step)
                Xb = X[batch]
                for k in range(self.n_classes):
                    targets = np.where(y[batch] == k, 1.0, -1.0)
                    margins = targets * (Xb @ self.weights[k] + self.biases[k])
                    violating = margins < 1.0
                    grad_w = self.regularization * self.weights[k]
                    grad_b = 0.0
                    if violating.any():
                        grad_w = grad_w - (targets[violating, None] * Xb[violating]).mean(axis=0)
                        grad_b = -float(targets[violating].mean())
                    self.weights[k] -= eta * grad_w
                    self.biases[k] -= eta * grad_b
        return self

    # ------------------------------------------------------------------ #
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Per-class margins, shape (n_samples, n_classes)."""
        if self.weights is None or self.biases is None:
            raise RuntimeError("classifier used before fit()")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.weights.T + self.biases

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.decision_function(X).argmax(axis=1)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax over margins -- a calibration convenience, not true SVM output."""
        margins = self.decision_function(X)
        shifted = margins - margins.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)
