"""Train-on-synthetic / test-on-real (TSTR) utility evaluation.

This is the harness behind Figures 3 and 4: every classifier is trained once
on real data (the baseline bar) and once on each synthesizer's output, and
all of them are scored on the same held-out real test set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nids.boosting import AdaBoostClassifier, GradientBoostingClassifier
from repro.nids.decision_tree import DecisionTreeClassifier
from repro.nids.features import TabularFeaturizer
from repro.nids.knn import KNearestNeighbors
from repro.nids.logistic_regression import LogisticRegressionClassifier
from repro.nids.metrics import classification_report
from repro.nids.mlp import MLPClassifier
from repro.nids.naive_bayes import GaussianNaiveBayes
from repro.nids.random_forest import RandomForestClassifier
from repro.nids.svm import LinearSVMClassifier
from repro.tabular.table import Table

__all__ = [
    "DEFAULT_CLASSIFIERS",
    "make_classifier",
    "train_and_score",
    "UtilityResult",
    "evaluate_utility",
]

#: Classifier names used by the figure benchmarks (a representative subset of
#: the full registry keeps the benches fast; pass an explicit list for more).
DEFAULT_CLASSIFIERS = ("decision_tree", "random_forest", "logistic_regression", "naive_bayes")

_REGISTRY = {
    "decision_tree": lambda seed: DecisionTreeClassifier(seed=seed),
    "random_forest": lambda seed: RandomForestClassifier(seed=seed),
    "logistic_regression": lambda seed: LogisticRegressionClassifier(seed=seed, epochs=100),
    "naive_bayes": lambda seed: GaussianNaiveBayes(),
    "knn": lambda seed: KNearestNeighbors(seed=seed),
    "mlp": lambda seed: MLPClassifier(seed=seed, epochs=40),
    "gradient_boosting": lambda seed: GradientBoostingClassifier(
        seed=seed, n_estimators=25, max_depth=3
    ),
    "adaboost": lambda seed: AdaBoostClassifier(seed=seed, n_estimators=20, max_depth=2),
    "svm": lambda seed: LinearSVMClassifier(seed=seed, epochs=30),
}


def make_classifier(name: str, seed: int = 0):
    """Instantiate a classifier by registry name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown classifier {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name](seed)


def train_and_score(
    classifier_name: str,
    train: Table,
    test: Table,
    label_column: str,
    seed: int = 0,
) -> dict[str, float]:
    """Train one classifier on ``train`` and report metrics on ``test``.

    The featurizer is always fitted on the *training* table's schema (which
    the synthetic tables share), so feature layouts are identical across
    real-trained and synthetic-trained runs.
    """
    featurizer = TabularFeaturizer(label_column).fit(train)
    X_train, y_train = featurizer.transform(train)
    X_test, y_test = featurizer.transform(test)
    model = make_classifier(classifier_name, seed=seed)
    model.fit(X_train, y_train)
    predictions = model.predict(X_test)
    return classification_report(y_test, predictions)


@dataclass
class UtilityResult:
    """Per-classifier accuracies for one training source (real or one model)."""

    source: str
    per_classifier: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def mean_accuracy(self) -> float:
        if not self.per_classifier:
            return float("nan")
        return float(np.mean([m["accuracy"] for m in self.per_classifier.values()]))

    @property
    def mean_f1(self) -> float:
        if not self.per_classifier:
            return float("nan")
        return float(np.mean([m["f1"] for m in self.per_classifier.values()]))

    def as_row(self) -> dict[str, float | str]:
        row: dict[str, float | str] = {"source": self.source}
        for name, metrics in self.per_classifier.items():
            row[name] = round(metrics["accuracy"], 4)
        row["mean_accuracy"] = round(self.mean_accuracy, 4)
        return row


def evaluate_utility(
    real_train: Table,
    real_test: Table,
    synthetic_tables: dict[str, Table],
    label_column: str,
    classifiers: tuple[str, ...] = DEFAULT_CLASSIFIERS,
    seed: int = 0,
) -> list[UtilityResult]:
    """TSTR evaluation: the baseline (real-trained) plus one row per model.

    Returns a list of :class:`UtilityResult`, the first of which is always
    the ``"REAL"`` baseline the paper's figures show alongside the models.
    """
    results: list[UtilityResult] = []
    baseline = UtilityResult(source="REAL")
    for classifier in classifiers:
        baseline.per_classifier[classifier] = train_and_score(
            classifier, real_train, real_test, label_column, seed=seed
        )
    results.append(baseline)

    for model_name, synthetic in synthetic_tables.items():
        result = UtilityResult(source=model_name)
        for classifier in classifiers:
            result.per_classifier[classifier] = train_and_score(
                classifier, synthetic, real_test, label_column, seed=seed
            )
        results.append(result)
    return results
