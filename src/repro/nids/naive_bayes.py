"""Gaussian naive Bayes over featurised columns."""

from __future__ import annotations

import numpy as np

__all__ = ["GaussianNaiveBayes"]


class GaussianNaiveBayes:
    """Classic Gaussian NB with variance smoothing.

    One-hot encoded categorical features are handled adequately by the
    Gaussian likelihood (it reduces to a Bernoulli-like score), which keeps
    the implementation to a single model as in scikit-learn's default NIDS
    baselines.
    """

    def __init__(self, var_smoothing: float = 1e-6) -> None:
        if var_smoothing <= 0:
            raise ValueError("var_smoothing must be positive")
        self.var_smoothing = var_smoothing
        self.class_priors: np.ndarray | None = None
        self.means: np.ndarray | None = None
        self.variances: np.ndarray | None = None
        self.n_classes = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=int)
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        self.n_classes = int(y.max()) + 1
        n_features = X.shape[1]
        self.class_priors = np.zeros(self.n_classes)
        self.means = np.zeros((self.n_classes, n_features))
        self.variances = np.ones((self.n_classes, n_features))
        global_var = X.var(axis=0).mean() + self.var_smoothing
        for c in range(self.n_classes):
            members = X[y == c]
            if len(members) == 0:
                self.class_priors[c] = 1e-12
                continue
            self.class_priors[c] = len(members) / len(X)
            self.means[c] = members.mean(axis=0)
            self.variances[c] = members.var(axis=0) + self.var_smoothing * global_var
        return self

    def predict_log_proba(self, X: np.ndarray) -> np.ndarray:
        if self.class_priors is None:
            raise RuntimeError("classifier used before fit()")
        X = np.asarray(X, dtype=np.float64)
        log_probs = np.zeros((len(X), self.n_classes))
        for c in range(self.n_classes):
            log_likelihood = -0.5 * (
                np.log(2 * np.pi * self.variances[c])
                + (X - self.means[c]) ** 2 / self.variances[c]
            ).sum(axis=1)
            log_probs[:, c] = np.log(self.class_priors[c] + 1e-12) + log_likelihood
        return log_probs

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        log_probs = self.predict_log_proba(X)
        log_probs -= log_probs.max(axis=1, keepdims=True)
        probs = np.exp(log_probs)
        return probs / probs.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_log_proba(X).argmax(axis=1)
