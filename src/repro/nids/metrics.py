"""Classification metrics for the NIDS evaluation."""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "f1_score",
    "macro_f1",
    "classification_report",
]


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if len(y_true) == 0:
        raise ValueError("cannot compute metrics on empty arrays")
    return y_true, y_pred


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float((y_true == y_pred).mean())


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None
) -> np.ndarray:
    """Confusion matrix with true classes as rows and predictions as columns."""
    y_true, y_pred = _validate(y_true, y_pred)
    if n_classes is None:
        n_classes = int(max(y_true.max(), y_pred.max())) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=int)
    for t, p in zip(y_true.astype(int), y_pred.astype(int)):
        matrix[t, p] += 1
    return matrix


def precision_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "macro") -> float:
    """Macro- or micro-averaged precision."""
    return _prf(y_true, y_pred, average)[0]


def recall_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "macro") -> float:
    """Macro- or micro-averaged recall."""
    return _prf(y_true, y_pred, average)[1]


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "macro") -> float:
    """Macro- or micro-averaged F1."""
    return _prf(y_true, y_pred, average)[2]


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Convenience alias for macro-averaged F1."""
    return f1_score(y_true, y_pred, average="macro")


def _prf(y_true: np.ndarray, y_pred: np.ndarray, average: str) -> tuple[float, float, float]:
    if average not in ("macro", "micro"):
        raise ValueError("average must be 'macro' or 'micro'")
    matrix = confusion_matrix(y_true, y_pred)
    tp = np.diag(matrix).astype(np.float64)
    fp = matrix.sum(axis=0) - tp
    fn = matrix.sum(axis=1) - tp
    if average == "micro":
        precision = tp.sum() / max(tp.sum() + fp.sum(), 1e-12)
        recall = tp.sum() / max(tp.sum() + fn.sum(), 1e-12)
    else:
        with np.errstate(divide="ignore", invalid="ignore"):
            per_class_precision = np.where(tp + fp > 0, tp / (tp + fp), 0.0)
            per_class_recall = np.where(tp + fn > 0, tp / (tp + fn), 0.0)
        # Only average over classes present in the ground truth.
        present = matrix.sum(axis=1) > 0
        precision = float(per_class_precision[present].mean()) if present.any() else 0.0
        recall = float(per_class_recall[present].mean()) if present.any() else 0.0
    f1 = 2 * precision * recall / max(precision + recall, 1e-12)
    return float(precision), float(recall), float(f1)


def classification_report(y_true: np.ndarray, y_pred: np.ndarray) -> dict[str, float]:
    """Accuracy plus macro precision / recall / F1 in one dict."""
    precision, recall, f1 = _prf(y_true, y_pred, "macro")
    return {
        "accuracy": accuracy_score(y_true, y_pred),
        "precision": precision,
        "recall": recall,
        "f1": f1,
    }
