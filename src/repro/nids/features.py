"""Feature extraction: tables to numeric matrices for the NIDS classifiers."""

from __future__ import annotations

import numpy as np

from repro.tabular.encoders import OneHotEncoder, StandardScaler
from repro.tabular.schema import TableSchema
from repro.tabular.table import Table

__all__ = ["TabularFeaturizer"]


class TabularFeaturizer:
    """Encodes a table into a dense float matrix plus an integer label vector.

    Categorical feature columns are one-hot encoded against the schema's
    category list (so train/test/synthetic tables map to identical layouts);
    continuous columns are standardised with statistics from the fitting
    table.  The label column is encoded to integer class ids.
    """

    def __init__(self, label_column: str) -> None:
        self.label_column = label_column
        self.schema: TableSchema | None = None
        self._encoders: dict[str, object] = {}
        self.classes_: list = []
        self._fitted = False

    def fit(self, table: Table) -> "TabularFeaturizer":
        if self.label_column not in table.schema:
            raise KeyError(f"label column {self.label_column!r} not in table")
        self.schema = table.schema
        self._encoders = {}
        for spec in table.schema:
            if spec.name == self.label_column:
                continue
            if spec.is_categorical:
                encoder = OneHotEncoder(
                    categories=list(spec.categories) if spec.categories else None,
                    handle_unknown="ignore",
                )
                encoder.fit(table.column(spec.name))
            else:
                encoder = StandardScaler().fit(table.column(spec.name).astype(np.float64))
            self._encoders[spec.name] = encoder
        label_spec = table.schema.column(self.label_column)
        self.classes_ = list(label_spec.categories) if label_spec.categories else list(
            dict.fromkeys(table.column(self.label_column))
        )
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("TabularFeaturizer used before fit()")

    @property
    def n_classes(self) -> int:
        self._require_fitted()
        return len(self.classes_)

    def transform_features(self, table: Table) -> np.ndarray:
        """Numeric feature matrix (label column excluded)."""
        self._require_fitted()
        blocks: list[np.ndarray] = []
        for spec in self.schema:
            if spec.name == self.label_column:
                continue
            encoder = self._encoders[spec.name]
            values = table.column(spec.name)
            if isinstance(encoder, OneHotEncoder):
                blocks.append(encoder.transform(values))
            else:
                blocks.append(encoder.transform(values.astype(np.float64))[:, None])
        return np.concatenate(blocks, axis=1) if blocks else np.zeros((table.n_rows, 0))

    def transform_labels(self, table: Table) -> np.ndarray:
        """Integer class ids; unseen labels map to class 0."""
        self._require_fitted()
        index = {value: i for i, value in enumerate(self.classes_)}
        return np.asarray(
            [index.get(value, 0) for value in table.column(self.label_column)], dtype=int
        )

    def transform(self, table: Table) -> tuple[np.ndarray, np.ndarray]:
        """Feature matrix and label vector together."""
        return self.transform_features(table), self.transform_labels(table)

    def label_of(self, class_id: int):
        """Original label value for an integer class id."""
        self._require_fitted()
        return self.classes_[int(class_id)]
