"""ML-based network intrusion detection (the downstream utility task).

The paper evaluates synthetic data by training NIDS classifiers on it and
testing on held-out real traffic (train-on-synthetic / test-on-real, Figures
3 and 4).  Since scikit-learn is unavailable, the standard classifiers are
implemented from scratch:

* :class:`DecisionTreeClassifier` (CART, Gini impurity)
* :class:`RandomForestClassifier` (bagged trees with feature subsampling)
* :class:`LogisticRegressionClassifier` (multinomial softmax regression)
* :class:`GaussianNaiveBayes`
* :class:`KNearestNeighbors`
* :class:`MLPClassifier` (on :mod:`repro.neural`)
* :class:`GradientBoostingClassifier` / :class:`AdaBoostClassifier`
* :class:`LinearSVMClassifier` (one-vs-rest hinge loss, Pegasos updates)

plus :class:`TabularFeaturizer` (table -> numeric matrix), the usual
classification metrics, and :func:`evaluate_utility`, the TSTR harness used
by the figure benchmarks.
"""

from repro.nids.boosting import AdaBoostClassifier, GradientBoostingClassifier
from repro.nids.features import TabularFeaturizer
from repro.nids.svm import LinearSVMClassifier
from repro.nids.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    macro_f1,
    precision_score,
    recall_score,
)
from repro.nids.decision_tree import DecisionTreeClassifier
from repro.nids.random_forest import RandomForestClassifier
from repro.nids.logistic_regression import LogisticRegressionClassifier
from repro.nids.naive_bayes import GaussianNaiveBayes
from repro.nids.knn import KNearestNeighbors
from repro.nids.mlp import MLPClassifier
from repro.nids.pipeline import (
    DEFAULT_CLASSIFIERS,
    UtilityResult,
    evaluate_utility,
    make_classifier,
    train_and_score,
)

__all__ = [
    "TabularFeaturizer",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "macro_f1",
    "confusion_matrix",
    "classification_report",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "LogisticRegressionClassifier",
    "GaussianNaiveBayes",
    "KNearestNeighbors",
    "MLPClassifier",
    "GradientBoostingClassifier",
    "AdaBoostClassifier",
    "LinearSVMClassifier",
    "DEFAULT_CLASSIFIERS",
    "UtilityResult",
    "evaluate_utility",
    "make_classifier",
    "train_and_score",
]
