"""Multinomial logistic regression trained with mini-batch gradient descent."""

from __future__ import annotations

import numpy as np

__all__ = ["LogisticRegressionClassifier"]


class LogisticRegressionClassifier:
    """Softmax regression with L2 regularisation."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        epochs: int = 200,
        batch_size: int = 128,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if learning_rate <= 0 or epochs <= 0 or batch_size <= 0:
            raise ValueError("learning_rate, epochs and batch_size must be positive")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self.weights: np.ndarray | None = None
        self.bias: np.ndarray | None = None
        self.n_classes = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegressionClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=int)
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        rng = np.random.default_rng(self.seed)
        self.n_classes = int(y.max()) + 1
        n_features = X.shape[1]
        self.weights = rng.normal(0, 0.01, size=(n_features, self.n_classes))
        self.bias = np.zeros(self.n_classes)
        one_hot = np.zeros((len(y), self.n_classes))
        one_hot[np.arange(len(y)), y] = 1.0

        for _ in range(self.epochs):
            indices = rng.permutation(len(X))
            for start in range(0, len(X), self.batch_size):
                batch = indices[start : start + self.batch_size]
                logits = X[batch] @ self.weights + self.bias
                logits -= logits.max(axis=1, keepdims=True)
                probs = np.exp(logits)
                probs /= probs.sum(axis=1, keepdims=True)
                grad_logits = (probs - one_hot[batch]) / len(batch)
                grad_w = X[batch].T @ grad_logits + self.l2 * self.weights
                grad_b = grad_logits.sum(axis=0)
                self.weights -= self.learning_rate * grad_w
                self.bias -= self.learning_rate * grad_b
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.weights is None or self.bias is None:
            raise RuntimeError("classifier used before fit()")
        logits = np.asarray(X, dtype=np.float64) @ self.weights + self.bias
        logits -= logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        return probs / probs.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)
