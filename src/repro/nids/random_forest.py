"""Random forest: bagged CART trees with feature subsampling."""

from __future__ import annotations

import numpy as np

from repro.nids.decision_tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier:
    """Bootstrap-aggregated decision trees."""

    def __init__(
        self,
        n_estimators: int = 15,
        max_depth: int = 10,
        min_samples_split: int = 8,
        max_features: str | int = "sqrt",
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self.trees: list[DecisionTreeClassifier] = []
        self.n_classes = 0

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, n_features))
        raise ValueError(f"unsupported max_features {self.max_features!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=int)
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        rng = np.random.default_rng(self.seed)
        self.n_classes = int(y.max()) + 1
        max_features = self._resolve_max_features(X.shape[1])
        self.trees = []
        for i in range(self.n_estimators):
            indices = rng.integers(0, len(X), size=len(X))
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=max_features,
                seed=self.seed + i + 1,
            )
            tree.n_classes = self.n_classes
            tree.fit(X[indices], y[indices])
            self.trees.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.trees:
            raise RuntimeError("classifier used before fit()")
        X = np.asarray(X, dtype=np.float64)
        votes = np.zeros((len(X), self.n_classes))
        for tree in self.trees:
            proba = tree.predict_proba(X)
            if proba.shape[1] < self.n_classes:
                padded = np.zeros((len(X), self.n_classes))
                padded[:, : proba.shape[1]] = proba
                proba = padded
            votes += proba
        return votes / len(self.trees)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)
