"""k-nearest-neighbours classifier with chunked distance computation."""

from __future__ import annotations

import numpy as np

__all__ = ["KNearestNeighbors"]


class KNearestNeighbors:
    """Euclidean k-NN with majority voting.

    A reference-set cap keeps prediction tractable on large training tables
    (the reference subset is sampled uniformly at fit time).
    """

    def __init__(self, k: int = 5, max_reference: int = 4000, chunk_size: int = 256,
                 seed: int = 0) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.max_reference = max_reference
        self.chunk_size = chunk_size
        self.seed = seed
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self.n_classes = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNearestNeighbors":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=int)
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        self.n_classes = int(y.max()) + 1
        if len(X) > self.max_reference:
            rng = np.random.default_rng(self.seed)
            indices = rng.choice(len(X), size=self.max_reference, replace=False)
            X, y = X[indices], y[indices]
        self._X = X
        self._y = y
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._X is None or self._y is None:
            raise RuntimeError("classifier used before fit()")
        X = np.asarray(X, dtype=np.float64)
        k = min(self.k, len(self._X))
        out = np.zeros((len(X), self.n_classes))
        for start in range(0, len(X), self.chunk_size):
            chunk = X[start : start + self.chunk_size]
            distances = ((chunk[:, None, :] - self._X[None, :, :]) ** 2).sum(axis=2)
            neighbours = np.argpartition(distances, k - 1, axis=1)[:, :k]
            for i, row in enumerate(neighbours):
                counts = np.bincount(self._y[row], minlength=self.n_classes)
                out[start + i] = counts / counts.sum()
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)
