"""MLP classifier built on :mod:`repro.neural`."""

from __future__ import annotations

import numpy as np

from repro.neural.layers import Dense, ReLU
from repro.neural.losses import CrossEntropy
from repro.neural.network import Sequential
from repro.neural.optimizers import Adam

__all__ = ["MLPClassifier"]


class MLPClassifier:
    """Two-hidden-layer multilayer perceptron with softmax output."""

    def __init__(
        self,
        hidden_dims: tuple[int, ...] = (64, 32),
        learning_rate: float = 1e-3,
        epochs: int = 60,
        batch_size: int = 128,
        seed: int = 0,
    ) -> None:
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        self.hidden_dims = hidden_dims
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.network: Sequential | None = None
        self.n_classes = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=int)
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        rng = np.random.default_rng(self.seed)
        self.n_classes = int(y.max()) + 1
        layers = []
        width = X.shape[1]
        for hidden in self.hidden_dims:
            layers.append(Dense(width, hidden, rng=rng, init="he"))
            layers.append(ReLU())
            width = hidden
        layers.append(Dense(width, self.n_classes, rng=rng, init="glorot"))
        self.network = Sequential(layers)
        self.network.consolidate()
        optimizer = Adam(self.network.parameters(), lr=self.learning_rate)
        loss = CrossEntropy()
        for _ in range(self.epochs):
            indices = rng.permutation(len(X))
            for start in range(0, len(X), self.batch_size):
                batch = indices[start : start + self.batch_size]
                logits = self.network.forward(X[batch], training=True)
                loss.forward(logits, y[batch])
                self.network.zero_grad()
                self.network.backward(loss.backward())
                optimizer.step()
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.network is None:
            raise RuntimeError("classifier used before fit()")
        logits = self.network.forward(np.asarray(X, dtype=np.float64), training=False)
        logits -= logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        return probs / probs.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)
