"""KiNETGAN reproduction package.

This package reproduces "KiNETGAN: Enabling Distributed Network Intrusion
Detection through Knowledge-Infused Synthetic Data Generation" (ICDCS 2024)
as a self-contained Python library built only on numpy / scipy / networkx.

Architecturally the package is layered around one shared training engine:
:mod:`repro.engine` owns every epoch/batch loop in the repository -- seeded
batch iteration, metric averaging, and a callback stack for history
recording, periodic logging, early stopping and checkpointing.  KiNETGAN,
each GAN/VAE baseline and the federated detector clients plug into it as
small ``TrainStep`` objects, so loop-level features and optimisations (the
vectorized one-hot hardening in
:meth:`repro.tabular.transformer.DataTransformer.harden`, batched
knowledge-graph validity scoring, bit-reproducible seeding) are implemented
once and shared by every model.

Top-level convenience re-exports cover the most common entry points:

* :class:`repro.core.KiNETGAN` -- the paper's synthesizer.
* :mod:`repro.engine` -- ``TrainingEngine``, the ``TrainStep`` protocol,
  callbacks (``History``, ``PeriodicLogger``, ``EarlyStopping``,
  ``Checkpointer``) and the seeding helpers.
* :mod:`repro.baselines` -- CTGAN, TVAE, TableGAN, PATEGAN, OCTGAN.
* :mod:`repro.datasets` -- simulators for the lab IoT capture, UNSW-NB15,
  NSL-KDD and CIC-IDS-2017.
* :mod:`repro.knowledge` -- the UCO-extended ontology, NetworkKG and reasoner.
* :mod:`repro.fidelity`, :mod:`repro.nids`, :mod:`repro.privacy` -- the
  evaluation battery (Table I, Figures 3-7) plus divergence / propensity /
  coverage diagnostics and Renyi-DP accounting.
* :mod:`repro.distributed` -- the synthetic-sharing distributed NIDS scenario.
* :mod:`repro.federated` -- FedAvg / secure aggregation / DP-FedAvg and
  federated KiNETGAN (the paper's future-work agenda).
* :mod:`repro.runtime` -- the serial / process-pool executors the multi-node
  layers run on; seeded parallel runs are bit-identical to serial ones.
* :mod:`repro.serve` -- versioned model artifacts (``save_model`` /
  ``load_model`` with bit-identical reload sampling) and the micro-batching
  ``SamplingService`` over an LRU model registry.
* :mod:`repro.cli` -- ``python -m repro {datasets, generate, save, sample,
  serve, evaluate, federated, distributed}``, including the engine knobs
  ``--log-every``, ``--patience`` and ``--checkpoint-dir`` on ``generate``
  and the runtime's ``--workers`` on the multi-node commands.
"""

from repro._version import __version__

__all__ = ["__version__"]
