"""A device node in the distributed NIDS deployment."""

from __future__ import annotations

import numpy as np

from repro.core.base import Synthesizer
from repro.core.config import KiNETGANConfig
from repro.core.synthesizer import KiNETGAN
from repro.distributed.protocol import SyntheticShare
from repro.knowledge.catalog import DomainCatalog
from repro.knowledge.builder import build_network_kg
from repro.knowledge.reasoner import KGReasoner
from repro.knowledge.validator import BatchValidator
from repro.nids.features import TabularFeaturizer
from repro.nids.metrics import accuracy_score, f1_score
from repro.nids.pipeline import make_classifier
from repro.tabular.table import Table

__all__ = ["DeviceNode"]


class DeviceNode:
    """A monitored device (or site) with local traffic it cannot share raw.

    The node trains a local synthesizer on its own traffic and publishes a
    :class:`SyntheticShare`; it can also train a purely local detector so
    the simulation can quantify what synthetic sharing buys.
    """

    def __init__(
        self,
        node_id: str,
        table: Table,
        label_column: str,
        catalog: DomainCatalog | None = None,
        condition_columns: list[str] | None = None,
        synthesizer: Synthesizer | None = None,
        config: KiNETGANConfig | None = None,
        seed: int = 0,
    ) -> None:
        if table.n_rows == 0:
            raise ValueError(f"node {node_id!r} has no local data")
        self.node_id = node_id
        self.table = table
        self.label_column = label_column
        self.catalog = catalog
        self.condition_columns = condition_columns
        self.seed = seed
        self.synthesizer = synthesizer if synthesizer is not None else KiNETGAN(
            config if config is not None else KiNETGANConfig(seed=seed)
        )
        self._reasoner: KGReasoner | None = None
        self._local_classifier = None
        self._local_featurizer: TabularFeaturizer | None = None
        self._fitted = False

    # ------------------------------------------------------------------ #
    @property
    def n_records(self) -> int:
        return self.table.n_rows

    def fit_synthesizer(self) -> "DeviceNode":
        """Train the local generator on local traffic only."""
        kwargs: dict = {}
        if isinstance(self.synthesizer, KiNETGAN):
            kwargs["condition_columns"] = self.condition_columns
            if self.catalog is not None:
                kwargs["catalog"] = self.catalog
        self.synthesizer.fit(self.table, **kwargs)
        if self.catalog is not None:
            self._reasoner = KGReasoner(
                build_network_kg(self.catalog), field_map=self.catalog.field_map
            )
        self._fitted = True
        return self

    def produce_share(self, n_records: int | None = None,
                      rng: np.random.Generator | None = None) -> SyntheticShare:
        """Generate the synthetic records this node publishes."""
        if not self._fitted:
            raise RuntimeError("fit_synthesizer() must be called before produce_share()")
        n_records = n_records if n_records is not None else self.table.n_rows
        synthetic = self.synthesizer.sample(n_records, rng=rng)
        validity = None
        if self._reasoner is not None:
            validity = BatchValidator(self._reasoner).report(synthetic).validity_rate
        return SyntheticShare(
            node_id=self.node_id,
            synthetic=synthetic,
            n_real_records=self.table.n_rows,
            generator_name=self.synthesizer.name,
            validity_rate=validity,
        )

    # ------------------------------------------------------------------ #
    def train_local_detector(self, classifier: str = "decision_tree") -> "DeviceNode":
        """Train a detector on local data only (the no-sharing baseline)."""
        self._local_featurizer = TabularFeaturizer(self.label_column).fit(self.table)
        X, y = self._local_featurizer.transform(self.table)
        self._local_classifier = make_classifier(classifier, seed=self.seed)
        self._local_classifier.fit(X, y)
        return self

    def evaluate_local_detector(self, test: Table) -> dict[str, float]:
        """Accuracy and macro-F1 of the local-only detector on a test set.

        Macro-F1 matters here: a node that never observed an attack class can
        still post a high accuracy (benign traffic dominates) while being
        useless against that attack, which is exactly the gap synthetic
        sharing is meant to close.
        """
        if self._local_classifier is None or self._local_featurizer is None:
            raise RuntimeError("train_local_detector() must be called first")
        X, y = self._local_featurizer.transform(test)
        predictions = self._local_classifier.predict(X)
        return {
            "accuracy": accuracy_score(y, predictions),
            "f1": f1_score(y, predictions),
        }
