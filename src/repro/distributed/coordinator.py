"""The coordinator of the distributed NIDS deployment."""

from __future__ import annotations

from repro.distributed.protocol import EvaluationSummary, SyntheticShare
from repro.nids.features import TabularFeaturizer
from repro.nids.metrics import accuracy_score, f1_score
from repro.nids.pipeline import make_classifier
from repro.tabular.table import Table

__all__ = ["Coordinator"]


class Coordinator:
    """Collects synthetic shares and trains the global intrusion detector.

    The coordinator never sees raw device traffic -- only the synthetic
    tables inside :class:`SyntheticShare` messages -- which is the privacy
    property the paper's framework is built around.
    """

    def __init__(self, label_column: str, classifier: str = "random_forest", seed: int = 0) -> None:
        self.label_column = label_column
        self.classifier_name = classifier
        self.seed = seed
        self.shares: list[SyntheticShare] = []
        self._classifier = None
        self._featurizer: TabularFeaturizer | None = None

    # ------------------------------------------------------------------ #
    def receive(self, share: SyntheticShare) -> None:
        """Accept a node's synthetic contribution."""
        if share.synthetic.n_rows == 0:
            raise ValueError(f"share from {share.node_id!r} is empty")
        if self.label_column not in share.synthetic.schema:
            raise ValueError(
                f"share from {share.node_id!r} lacks label column {self.label_column!r}"
            )
        self.shares.append(share)

    @property
    def pooled_training_data(self) -> Table:
        """All received synthetic records, concatenated."""
        if not self.shares:
            raise RuntimeError("no shares received yet")
        pooled = self.shares[0].synthetic
        for share in self.shares[1:]:
            pooled = pooled.concat(share.synthetic)
        return pooled

    def train_global_detector(self) -> "Coordinator":
        """Train the global classifier on the pooled synthetic data."""
        pooled = self.pooled_training_data
        self._featurizer = TabularFeaturizer(self.label_column).fit(pooled)
        X, y = self._featurizer.transform(pooled)
        self._classifier = make_classifier(self.classifier_name, seed=self.seed)
        self._classifier.fit(X, y)
        return self

    # ------------------------------------------------------------------ #
    def evaluate(self, test: Table, per_node_accuracy: dict[str, float] | None = None
                 ) -> EvaluationSummary:
        """Score the global detector on real held-out traffic."""
        if self._classifier is None or self._featurizer is None:
            raise RuntimeError("train_global_detector() must be called first")
        X, y = self._featurizer.transform(test)
        predictions = self._classifier.predict(X)
        return EvaluationSummary(
            global_accuracy=accuracy_score(y, predictions),
            global_f1=f1_score(y, predictions),
            per_node_accuracy=per_node_accuracy or {},
        )
