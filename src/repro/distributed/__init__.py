"""Distributed NIDS via synthetic-data sharing.

The paper motivates KiNETGAN with distributed intrusion detection: devices
cannot share raw traffic (privacy, regulation), so each device trains a
local knowledge-infused generator and shares *synthetic* traffic instead;
a coordinator aggregates the shares and trains the global NIDS model.

This subpackage simulates that deployment end to end:

* :mod:`repro.distributed.protocol` -- the messages exchanged.
* :class:`repro.distributed.node.DeviceNode` -- a device holding local
  traffic, its local synthesizer and its local detector.
* :class:`repro.distributed.coordinator.Coordinator` -- collects synthetic
  shares and trains the global classifier.
* :class:`repro.distributed.simulation.DistributedNIDSSimulation` -- splits
  a dataset across nodes (optionally non-IID), runs the whole exchange and
  compares local-only, synthetic-sharing and centralised-real detection
  accuracy (benchmark A3 in DESIGN.md).
"""

from repro.distributed.protocol import SyntheticShare, EvaluationSummary
from repro.distributed.node import DeviceNode
from repro.distributed.coordinator import Coordinator
from repro.distributed.simulation import DistributedNIDSSimulation, SimulationResult

__all__ = [
    "SyntheticShare",
    "EvaluationSummary",
    "DeviceNode",
    "Coordinator",
    "DistributedNIDSSimulation",
    "SimulationResult",
]
