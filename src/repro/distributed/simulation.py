"""End-to-end simulation of the distributed NIDS deployment.

``DistributedNIDSSimulation`` partitions a dataset bundle across several
device nodes (optionally with a non-IID skew, so each node observes a
different mix of events -- the realistic setting the paper targets), trains
a local synthesizer per node, pools the synthetic shares at the coordinator
and reports three detection accuracies on a common real test set:

* ``local_only`` -- mean accuracy of per-node detectors trained on their own
  (small, skewed) local data;
* ``synthetic_sharing`` -- the coordinator's detector trained on the pooled
  synthetic shares (the paper's proposal);
* ``centralised_real`` -- the upper bound where raw data could be pooled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.base import Synthesizer
from repro.core.config import KiNETGANConfig
from repro.core.synthesizer import KiNETGAN
from repro.datasets.base import DatasetBundle
from repro.distributed.coordinator import Coordinator
from repro.distributed.node import DeviceNode
from repro.distributed.protocol import SyntheticShare
from repro.nids.features import TabularFeaturizer
from repro.nids.metrics import accuracy_score, f1_score
from repro.nids.pipeline import make_classifier
from repro.runtime import Executor, map_with_quorum, resolve_executor, spawn_seeds
from repro.runtime.state import StateRef
from repro.tabular.split import train_test_split
from repro.tabular.table import Table

__all__ = ["SimulationResult", "DistributedNIDSSimulation"]


@dataclass
class _NodeTask:
    """Everything one device node does in a run, as one executor work unit.

    A node's pipeline (train the local detector, evaluate it, fit the local
    synthesizer, publish a synthetic share) is independent of every other
    node once its share seed is fixed, so the whole pipeline fans out as a
    single task.  The share seed is a child sequence spawned by the
    simulation in the parent process, which keeps serial and process-pool
    runs bit-identical.  This is the legacy payload form: the node *and*
    the common test table are re-pickled into every task.
    """

    node: DeviceNode
    classifier: str
    share_size: int | None
    share_seed: np.random.SeedSequence
    test: Table


@dataclass
class _ResidentNodeTask:
    """The resident form of :class:`_NodeTask`: refs instead of payloads.

    The node pipeline and the test table are installed into the execution
    plane once (the test table in particular is shared by *every* node, so
    the payload transport used to pickle it ``num_nodes`` times); the task
    itself carries only refs, the classifier name, the share size and the
    parent-spawned share seed.
    """

    node: StateRef
    classifier: str
    share_size: int | None
    share_seed: np.random.SeedSequence
    test: StateRef


@dataclass
class _NodeResult:
    """What the coordinator needs back from one node's task."""

    node_id: str
    local_accuracy: float
    local_f1: float
    share: SyntheticShare


def _run_node_pipeline(
    node: DeviceNode,
    classifier: str,
    share_size: int | None,
    share_seed: np.random.SeedSequence,
    test: Table,
) -> _NodeResult:
    """Local detector + synthesizer + share for one node (any transport)."""
    node.train_local_detector(classifier)
    metrics = node.evaluate_local_detector(test)
    node.fit_synthesizer()
    share = node.produce_share(share_size, rng=np.random.default_rng(share_seed))
    return _NodeResult(
        node_id=node.node_id,
        local_accuracy=metrics["accuracy"],
        local_f1=metrics["f1"],
        share=share,
    )


def _run_node_task(task: _NodeTask) -> _NodeResult:
    """Module-level worker for the legacy payload transport."""
    return _run_node_pipeline(
        task.node, task.classifier, task.share_size, task.share_seed, task.test
    )


def _run_resident_node_task(task: _ResidentNodeTask) -> _NodeResult:
    """Module-level worker for the resident transport."""
    return _run_node_pipeline(
        task.node.resolve(), task.classifier, task.share_size, task.share_seed, task.test.resolve()
    )


@dataclass
class SimulationResult:
    """Accuracies (and macro-F1) of the three deployment strategies."""

    local_only: float
    synthetic_sharing: float
    centralised_real: float
    local_only_f1: float = float("nan")
    synthetic_sharing_f1: float = float("nan")
    centralised_real_f1: float = float("nan")
    per_node_local: dict[str, float] = field(default_factory=dict)
    share_validity: dict[str, float | None] = field(default_factory=dict)
    #: Nodes whose pipeline failed (after retries); the run continued over
    #: the survivors and every aggregate above excludes the dead nodes.
    failed_nodes: list[str] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"accuracy: local-only={self.local_only:.3f}  "
            f"synthetic-sharing={self.synthetic_sharing:.3f}  "
            f"centralised-real={self.centralised_real:.3f} | "
            f"macro-F1: local-only={self.local_only_f1:.3f}  "
            f"synthetic-sharing={self.synthetic_sharing_f1:.3f}  "
            f"centralised-real={self.centralised_real_f1:.3f}"
        )


class DistributedNIDSSimulation:
    """Orchestrates nodes, coordinator and evaluation."""

    def __init__(
        self,
        bundle: DatasetBundle,
        num_nodes: int = 3,
        non_iid_skew: float = 0.5,
        classifier: str = "decision_tree",
        config: KiNETGANConfig | None = None,
        synthesizer_factory=None,
        test_fraction: float = 0.25,
        seed: int = 0,
        executor: Executor | str | int | None = None,
        transport: str = "resident",
        min_nodes: int = 1,
        task_timeout: float | None = None,
        task_retries: int = 0,
        retry_backoff: float = 0.0,
    ) -> None:
        """Parameters
        ----------
        bundle:
            The dataset to distribute (lab IoT by default in the benchmarks).
        num_nodes:
            Number of device nodes.
        non_iid_skew:
            0.0 gives an IID split; towards 1.0 each node increasingly
            specialises in a subset of event labels.
        synthesizer_factory:
            Callable ``(seed) -> Synthesizer``; defaults to KiNETGAN with the
            given config.  With a process-pool executor the factory runs in
            the parent; only the constructed synthesizer must be picklable.
        executor:
            ``None``/``"serial"`` (default) runs nodes back-to-back in
            process; ``N > 1`` / ``"process[:N]"`` fans the per-node
            pipelines out over a process pool and ``"thread[:N]"`` over a
            thread pool (:func:`repro.runtime.resolve_executor`).  Seeded
            results are bit-identical in every case.
        transport:
            ``"resident"`` (default) installs the node pipelines and the
            shared test table into the execution plane once and dispatches
            ref-only tasks; ``"payload"`` re-pickles node + test table into
            every task (the pre-resident reference transport).  Seeded
            results are bit-identical on either transport.
        min_nodes:
            Quorum: how many node pipelines must survive (after
            ``task_retries`` replays under the ``task_timeout`` deadline)
            for the run to produce a result; dead nodes are marked in
            ``SimulationResult.failed_nodes`` and excluded from every
            aggregate, and fewer survivors than the quorum raise
            :class:`~repro.runtime.QuorumError`.
        """
        if num_nodes < 2:
            raise ValueError("num_nodes must be at least 2")
        if min_nodes < 1:
            raise ValueError("min_nodes must be at least 1")
        if task_retries < 0:
            raise ValueError("task_retries must be non-negative")
        if transport not in ("resident", "payload"):
            raise ValueError(f"unknown transport {transport!r}; options: ('resident', 'payload')")
        if not 0.0 <= non_iid_skew < 1.0:
            raise ValueError("non_iid_skew must be in [0, 1)")
        self.bundle = bundle
        self.num_nodes = num_nodes
        self.non_iid_skew = non_iid_skew
        self.classifier = classifier
        self.config = config if config is not None else KiNETGANConfig()
        self.synthesizer_factory = synthesizer_factory
        self.test_fraction = test_fraction
        self.seed = seed
        self.executor = resolve_executor(executor)
        self.transport = transport
        self.min_nodes = min_nodes
        self.task_timeout = task_timeout
        self.task_retries = task_retries
        self.retry_backoff = retry_backoff

    def close(self) -> None:
        """Release the executor's worker pool (no-op for the serial one)."""
        self.executor.close()

    def __enter__(self) -> "DistributedNIDSSimulation":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _make_synthesizer(self, seed: int) -> Synthesizer:
        if self.synthesizer_factory is not None:
            return self.synthesizer_factory(seed)
        return KiNETGAN(self.config.with_overrides(seed=seed))

    def partition(self, table: Table, rng: np.random.Generator) -> list[Table]:
        """Split ``table`` across nodes, optionally with label skew."""
        labels = table.column(self.bundle.label_column)
        label_values = list(dict.fromkeys(labels))
        assignments = np.zeros(table.n_rows, dtype=int)
        for i in range(table.n_rows):
            if rng.uniform() < self.non_iid_skew:
                # Skewed assignment: each label value has a "home" node.
                home = label_values.index(labels[i]) % self.num_nodes
                assignments[i] = home
            else:
                assignments[i] = rng.integers(0, self.num_nodes)
        partitions = []
        for node in range(self.num_nodes):
            indices = np.nonzero(assignments == node)[0]
            if len(indices) == 0:
                indices = rng.integers(0, table.n_rows, size=10)
            partitions.append(table.select_rows(indices))
        return partitions

    # ------------------------------------------------------------------ #
    def run(self, share_size: int | None = None) -> SimulationResult:
        """Run the full simulation and return the three-way comparison."""
        rng = np.random.default_rng(self.seed)
        train, test = train_test_split(
            self.bundle.table,
            test_fraction=self.test_fraction,
            rng=rng,
            stratify_column=self.bundle.label_column,
        )
        partitions = self.partition(train, rng)

        nodes: list[DeviceNode] = []
        for i, part in enumerate(partitions):
            node = DeviceNode(
                node_id=f"node-{i}",
                table=part,
                label_column=self.bundle.label_column,
                catalog=self.bundle.catalog,
                condition_columns=self._usable_condition_columns(part),
                synthesizer=self._make_synthesizer(self.seed + i),
                seed=self.seed + i,
            )
            nodes.append(node)

        # Every node's pipeline (local detector, synthesizer fit, synthetic
        # share) is one executor task; share seeds are spawned here, in the
        # parent, so the fan-out is deterministic under any executor.  The
        # resident transport installs the pipelines and the shared test
        # table once and ships ref-only tasks.
        share_seeds = spawn_seeds(self.seed, len(nodes))
        node_ids = [node.node_id for node in nodes]
        if self.transport == "resident":
            node_refs = [self.executor.install(node) for node in nodes]
            test_ref = self.executor.install(test)
            resident_tasks = [
                _ResidentNodeTask(
                    node=node_ref,
                    classifier=self.classifier,
                    share_size=share_size,
                    share_seed=share_seed,
                    test=test_ref,
                )
                for node_ref, share_seed in zip(node_refs, share_seeds)
            ]
            try:
                survivors, failed_nodes = self._dispatch(
                    _run_resident_node_task, resident_tasks, node_ids
                )
            finally:
                for node_ref in node_refs:
                    self.executor.evict(node_ref)
                self.executor.evict(test_ref)
        else:
            tasks = [
                _NodeTask(
                    node=node,
                    classifier=self.classifier,
                    share_size=share_size,
                    share_seed=share_seed,
                    test=test,
                )
                for node, share_seed in zip(nodes, share_seeds)
            ]
            survivors, failed_nodes = self._dispatch(_run_node_task, tasks, node_ids)
        results = [result for _, result in survivors]

        # Local-only baseline (dead nodes excluded from every aggregate).
        per_node_local: dict[str, float] = {}
        per_node_f1: list[float] = []
        for result in results:
            per_node_local[result.node_id] = result.local_accuracy
            per_node_f1.append(result.local_f1)
        local_only = float(np.mean(list(per_node_local.values())))
        local_only_f1 = float(np.mean(per_node_f1))

        # Synthetic sharing through the coordinator.
        coordinator = Coordinator(
            label_column=self.bundle.label_column, classifier=self.classifier, seed=self.seed
        )
        share_validity: dict[str, float | None] = {}
        for result in results:
            share_validity[result.node_id] = result.share.validity_rate
            coordinator.receive(result.share)
        coordinator.train_global_detector()
        summary = coordinator.evaluate(test, per_node_accuracy=per_node_local)

        # Centralised-real upper bound.
        featurizer = TabularFeaturizer(self.bundle.label_column).fit(train)
        X_train, y_train = featurizer.transform(train)
        X_test, y_test = featurizer.transform(test)
        central = make_classifier(self.classifier, seed=self.seed)
        central.fit(X_train, y_train)
        central_predictions = central.predict(X_test)

        return SimulationResult(
            local_only=local_only,
            synthetic_sharing=summary.global_accuracy,
            centralised_real=accuracy_score(y_test, central_predictions),
            local_only_f1=local_only_f1,
            synthetic_sharing_f1=summary.global_f1,
            centralised_real_f1=f1_score(y_test, central_predictions),
            per_node_local=per_node_local,
            share_validity=share_validity,
            failed_nodes=failed_nodes,
        )

    def _dispatch(
        self, fn, tasks: list, node_ids: list[str]
    ) -> tuple[list[tuple[int, _NodeResult]], list[str]]:
        """Fan the node pipelines out; mark dead nodes, enforce the quorum."""
        return map_with_quorum(
            self.executor,
            fn,
            tasks,
            node_ids,
            min_survivors=self.min_nodes,
            timeout=self.task_timeout,
            retries=self.task_retries,
            backoff=self.retry_backoff,
            unit="node",
        )

    def _usable_condition_columns(self, part: Table) -> list[str]:
        """Condition columns that have at least two observed values locally."""
        usable = []
        for name in self.bundle.condition_columns:
            if name in part.schema and len(part.value_counts(name)) >= 1:
                usable.append(name)
        return usable or None
