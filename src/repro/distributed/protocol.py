"""Messages exchanged between device nodes and the coordinator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tabular.table import Table

__all__ = ["SyntheticShare", "EvaluationSummary"]


@dataclass
class SyntheticShare:
    """A device's contribution to the global training pool.

    Only synthetic records leave the device; ``n_real_records`` is shared as
    metadata (it does not reveal record contents) so the coordinator can
    weight contributions if desired.
    """

    node_id: str
    synthetic: Table
    n_real_records: int
    generator_name: str
    validity_rate: float | None = None

    def __post_init__(self) -> None:
        if self.n_real_records < 0:
            raise ValueError("n_real_records must be non-negative")
        if self.validity_rate is not None and not 0.0 <= self.validity_rate <= 1.0:
            raise ValueError("validity_rate must be in [0, 1]")


@dataclass
class EvaluationSummary:
    """Per-node and global detection metrics produced by the coordinator."""

    global_accuracy: float
    global_f1: float
    per_node_accuracy: dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        nodes = ", ".join(f"{k}={v:.3f}" for k, v in self.per_node_accuracy.items())
        return (
            f"global accuracy={self.global_accuracy:.3f} f1={self.global_f1:.3f} "
            f"(local: {nodes})"
        )
