"""Server-side aggregation rules and simulated secure aggregation.

The aggregation rules operate on client *updates* (state dictionaries, see
:mod:`repro.federated.parameters`):

* :func:`fedavg_aggregate` -- example-count-weighted mean (McMahan et al.).
* :func:`trimmed_mean_aggregate` -- coordinate-wise trimmed mean, robust to a
  bounded fraction of byzantine clients.
* :func:`median_aggregate` -- coordinate-wise median.

:class:`SecureAggregationSession` simulates the pairwise-masking protocol of
Bonawitz et al.: every pair of clients derives a shared mask from a common
seed, one adds it and the other subtracts it, so individual masked updates
look random to the server while their *sum* equals the sum of the true
updates.  The paper's future-work section calls for exactly this kind of
secure aggregation when federating KiNETGAN training.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.federated.parameters import StateCodec, StateDict, weighted_average

__all__ = [
    "fedavg_aggregate",
    "trimmed_mean_aggregate",
    "median_aggregate",
    "safe_mean",
    "SecureAggregationSession",
]


def safe_mean(values: list[float]) -> float:
    """Mean of the finite entries; quiet NaN when none are usable.

    Round summaries average per-client metrics that may be missing or NaN
    (clients that report nothing usable); plain ``np.mean``/``np.nanmean``
    would emit a ``RuntimeWarning`` on an all-NaN or empty round, so this
    filters first and degrades to NaN silently.
    """
    finite = [value for value in values if np.isfinite(value)]
    if not finite:
        return float("nan")
    return float(np.mean(finite))


def fedavg_aggregate(updates: list[StateDict], weights: list[float] | None = None) -> StateDict:
    """Example-count-weighted average of client updates (FedAvg)."""
    return weighted_average(updates, weights)


def _stack_updates(updates: list[StateDict]) -> tuple[np.ndarray, StateCodec]:
    """Pack updates into a ``(clients, total_params)`` matrix via the codec."""
    if not updates:
        raise ValueError("need at least one update")
    codec = StateCodec(updates[0])
    return codec.encode_many(updates), codec


def trimmed_mean_aggregate(updates: list[StateDict], trim_fraction: float = 0.1) -> StateDict:
    """Coordinate-wise trimmed mean over client updates.

    ``trim_fraction`` of the highest and of the lowest values are discarded
    per coordinate before averaging; with ``trim_fraction = 0`` this is the
    unweighted mean.
    """
    if not 0.0 <= trim_fraction < 0.5:
        raise ValueError("trim_fraction must be in [0, 0.5)")
    stacked, codec = _stack_updates(updates)
    n_clients = stacked.shape[0]
    trim = int(np.floor(trim_fraction * n_clients))
    if 2 * trim >= n_clients:
        trim = max(0, (n_clients - 1) // 2)
    ordered = np.sort(stacked, axis=0)
    kept = ordered[trim : n_clients - trim] if trim else ordered
    return codec.decode(kept.mean(axis=0))


def median_aggregate(updates: list[StateDict]) -> StateDict:
    """Coordinate-wise median over client updates (robust, unweighted)."""
    stacked, codec = _stack_updates(updates)
    return codec.decode(np.median(stacked, axis=0))


class SecureAggregationSession:
    """Simulated pairwise-masking secure aggregation.

    The session is created for a fixed set of participants and a parameter
    layout (taken from a template state).  Each client masks its update with
    the sum of pairwise masks it shares with every other participant; the
    server can only recover the *sum* of updates, provided every participant
    submits.  This is an in-process simulation of the cryptographic protocol
    -- the point is to exercise the data flow (the server never handles a
    raw update) and the cancellation property, not to provide real
    cryptography.
    """

    def __init__(self, client_ids: list[str], template: StateDict, seed: int = 0) -> None:
        if len(client_ids) < 2:
            raise ValueError("secure aggregation needs at least two participants")
        if len(set(client_ids)) != len(client_ids):
            raise ValueError("client ids must be unique")
        self.client_ids = list(client_ids)
        self._codec = StateCodec(template)
        self._dim = self._codec.dim
        self._seed = seed
        self._masked: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    def _pair_mask(self, first: str, second: str) -> np.ndarray:
        """The mask shared by an (ordered) pair of clients."""
        low, high = sorted((first, second))
        digest = hashlib.sha256(f"{low}|{high}|{self._seed}".encode()).digest()
        pair_seed = int.from_bytes(digest[:8], "big")
        rng = np.random.default_rng(pair_seed)
        return rng.normal(0.0, 1.0, size=self._dim)

    def mask_update(self, client_id: str, update: StateDict) -> np.ndarray:
        """The masked flat vector ``client_id`` would send to the server."""
        if client_id not in self.client_ids:
            raise KeyError(f"unknown client {client_id!r}")
        try:
            masked = self._codec.encode(update)
        except ValueError as error:
            raise ValueError("update layout does not match the session template") from error
        for other in self.client_ids:
            if other == client_id:
                continue
            mask = self._pair_mask(client_id, other)
            if client_id < other:
                masked += mask
            else:
                masked -= mask
        return masked

    def submit(self, client_id: str, update: StateDict) -> None:
        """Mask and record a client's update."""
        self._masked[client_id] = self.mask_update(client_id, update)

    @property
    def n_submitted(self) -> int:
        return len(self._masked)

    def aggregate(self) -> StateDict:
        """Sum of all submitted updates (masks cancel); requires all clients."""
        missing = [cid for cid in self.client_ids if cid not in self._masked]
        if missing:
            raise RuntimeError(
                "secure aggregation cannot complete: missing submissions from "
                + ", ".join(missing)
            )
        total = np.zeros(self._dim, dtype=np.float64)
        for masked in self._masked.values():
            total += masked
        return self._codec.decode(total)

    def aggregate_mean(self) -> StateDict:
        """The unweighted mean of all submitted updates."""
        total = self.aggregate()
        return self._codec.decode(self._codec.encode(total) / len(self.client_ids))
