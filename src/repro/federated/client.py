"""The client side of federated detector training.

A :class:`FederatedClient` owns a private feature matrix / label vector (its
device's traffic, already featurised) and can run a local optimisation pass
starting from the globally broadcast parameters.  It supports plain FedAvg
local SGD and the FedProx proximal term, and reports the update
(``local - global``) together with its example count so the server can
weight contributions.

The local pass is a :class:`repro.engine.SupervisedStep` driven by the
shared :class:`repro.engine.TrainingEngine` -- the same loop machinery the
synthesizers train on -- with the FedProx term injected through the step's
``grad_hook``.

For the parallel runtime (:mod:`repro.runtime`) a round of local training
is packaged one of two ways:

* the **resident** path (default): the client -- its private partition and
  training config -- is installed into the execution plane *once* with
  :meth:`repro.runtime.Executor.install`, and each round ships only a
  :class:`ClientRoundTask` of refs plus the child
  :class:`~numpy.random.SeedSequence` spawned *in the parent* just before
  dispatch.  The broadcast global parameters arrive as a flattened
  :class:`~repro.federated.parameters.StateCodec` buffer in a shared array,
  and the worker writes its flattened update into its private row of the
  round's ``(clients, total_params)`` result matrix -- under the process
  executor both travel through :mod:`multiprocessing.shared_memory`, so a
  steady-state round pickles nothing but refs and a seed.
* the **legacy payload** path: a :class:`ClientPayload` carrying the whole
  client and the broadcast state, re-pickled every round (kept for the
  parity suite and as the reference transport).

``run_client_round`` / ``run_client_payload`` are the module-level
functions a pool maps over; because the child seed is fixed at spawn time,
serial, thread and process rounds are bit-identical on either path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.engine import SupervisedStep, TrainingEngine
from repro.federated.parameters import StateCodec, StateDict, copy_state, state_subtract
from repro.neural.losses import CrossEntropy
from repro.neural.network import Sequential
from repro.neural.optimizers import SGD
from repro.runtime.state import BufferRef, StateRef

__all__ = [
    "ClientUpdate",
    "ClientPayload",
    "ClientRoundTask",
    "FederatedClient",
    "run_client_payload",
    "run_client_round",
]


@dataclass
class ClientUpdate:
    """What a client sends back to the server after local training."""

    client_id: str
    update: StateDict
    n_examples: int
    local_loss: float
    metrics: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_examples <= 0:
            raise ValueError("n_examples must be positive")


class FederatedClient:
    """A device holding private labelled traffic for detector training."""

    def __init__(
        self,
        client_id: str,
        features: np.ndarray,
        labels: np.ndarray,
        model_fn: Callable[[], Sequential],
        learning_rate: float = 0.05,
        batch_size: int = 64,
        local_epochs: int = 1,
        proximal_mu: float = 0.0,
        seed: int = 0,
    ) -> None:
        """Parameters
        ----------
        model_fn:
            Zero-argument factory producing the shared model architecture.
            Every client and the server must use the same factory so state
            dictionaries are exchangeable.
        proximal_mu:
            FedProx proximal coefficient; 0 recovers plain FedAvg local SGD.
        """
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=int)
        if len(features) == 0:
            raise ValueError(f"client {client_id!r} has no local examples")
        if len(features) != len(labels):
            raise ValueError("features and labels must have the same length")
        if learning_rate <= 0 or batch_size <= 0 or local_epochs <= 0:
            raise ValueError("learning_rate, batch_size and local_epochs must be positive")
        if proximal_mu < 0:
            raise ValueError("proximal_mu must be non-negative")
        self.client_id = client_id
        self.features = features
        self.labels = labels
        self.model_fn = model_fn
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.local_epochs = local_epochs
        self.proximal_mu = proximal_mu
        self.seed = seed
        # Each round consumes a child stream spawned from this sequence in
        # the parent process, so the randomness of round r is a pure function
        # of (seed, r) -- independent of which executor runs the round.
        self._seed_sequence = np.random.SeedSequence(seed)

    # ------------------------------------------------------------------ #
    @property
    def n_examples(self) -> int:
        return len(self.features)

    def label_distribution(self) -> dict[int, float]:
        """Share of each class in the local data (useful to inspect skew)."""
        values, counts = np.unique(self.labels, return_counts=True)
        total = counts.sum()
        return {int(v): float(c) / total for v, c in zip(values, counts)}

    # ------------------------------------------------------------------ #
    def spawn_round_seed(self) -> np.random.SeedSequence:
        """Spawn the seed of the next local round (call in the parent only)."""
        return self._seed_sequence.spawn(1)[0]

    def make_payload(self, global_state: StateDict) -> "ClientPayload":
        """Package one round of local training for an executor.

        The round seed is spawned here, in the calling (parent) process, so
        dispatching the payload to a worker cannot change the stream the
        round consumes.
        """
        return ClientPayload(
            client=self, global_state=global_state, round_seed=self.spawn_round_seed()
        )

    def local_update(
        self, global_state: StateDict, rng: np.random.Generator | None = None
    ) -> ClientUpdate:
        """Run local training from ``global_state`` and return the delta.

        ``rng`` defaults to a generator built from the next spawned round
        seed; the executor path passes the payload's pre-spawned seed in
        explicitly.
        """
        if rng is None:
            rng = np.random.default_rng(self.spawn_round_seed())
        model = self.model_fn()
        model.load_state_dict(copy_state(global_state))
        reference_params: list[np.ndarray] | None = None
        if self.proximal_mu > 0:
            reference_model = self.model_fn()
            reference_model.load_state_dict(copy_state(global_state))
            reference_params = [param for param, _ in reference_model.parameters()]

        grad_hook = None
        if reference_params is not None:
            reference = reference_params
            grad_hook = lambda m: self._add_proximal_gradient(m, reference)  # noqa: E731
        step = SupervisedStep(
            model=model,
            loss_fn=CrossEntropy(),
            optimizer=SGD(model.parameters(), lr=self.learning_rate),
            features=self._features_for(model),
            labels=self.labels,
            batch_size=self.batch_size,
            grad_hook=grad_hook,
        )
        engine = TrainingEngine(
            step,
            epochs=self.local_epochs,
            batch_size=self.batch_size,
            n_rows=self.n_examples,
            rng=rng,
        )
        engine.run()
        last_loss = step.last_loss

        local_state = model.state_dict()
        update = state_subtract(local_state, global_state)
        accuracy = self._local_accuracy(model)
        return ClientUpdate(
            client_id=self.client_id,
            update=update,
            n_examples=self.n_examples,
            local_loss=last_loss,
            metrics={"local_accuracy": accuracy},
        )

    def evaluate(self, state: StateDict, features: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy of the given parameters on an arbitrary labelled set."""
        model = self.model_fn()
        model.load_state_dict(copy_state(state))
        features = np.asarray(features, dtype=getattr(model, "dtype", np.float64))
        predictions = model.forward(features, training=False)
        return float((predictions.argmax(axis=1) == np.asarray(labels, dtype=int)).mean())

    # ------------------------------------------------------------------ #
    def _features_for(self, model: Sequential) -> np.ndarray:
        """The local feature matrix in the model's dtype.

        Features are stored float64 (the featuriser's output); a float32
        detector rounds them once at this boundary, per round, so the
        stored partition stays exact.
        """
        dtype = getattr(model, "dtype", None)
        if dtype is None or self.features.dtype == dtype:
            return self.features
        return self.features.astype(dtype)
    def _add_proximal_gradient(
        self, model: Sequential, reference_params: list[np.ndarray]
    ) -> None:
        """Add the FedProx term ``mu * (w - w_global)`` to the parameter grads.

        ``reference_params`` comes from a second model instance built by the
        same factory and loaded with the global state, so the parameter lists
        are aligned by construction.
        """
        pairs = model.parameters()
        if len(pairs) != len(reference_params):
            raise ValueError("model and reference parameter lists are misaligned")
        for (param, grad), reference in zip(pairs, reference_params):
            grad += self.proximal_mu * (param - reference)

    def _local_accuracy(self, model: Sequential) -> float:
        features = self._features_for(model)
        predictions = model.forward(features, training=False).argmax(axis=1)
        return float((predictions == self.labels).mean())


@dataclass
class ClientPayload:
    """One round of local training, packaged for a runtime executor.

    Everything a worker process needs: the client (its private partition and
    training config), the broadcast global state, and the child seed spawned
    in the parent.  The payload pickles cleanly provided the client's
    ``model_fn`` is a module-level function or a picklable class instance.
    """

    client: FederatedClient
    global_state: StateDict
    round_seed: np.random.SeedSequence

    def run(self) -> ClientUpdate:
        """Execute the local round (in whatever process the executor picked)."""
        return self.client.local_update(
            self.global_state, rng=np.random.default_rng(self.round_seed)
        )


def run_client_payload(payload: ClientPayload) -> ClientUpdate:
    """Module-level entry point a process pool can map over payloads."""
    return payload.run()


@dataclass
class ClientRoundTask:
    """One round of local training on a worker-resident client.

    Everything heavy is addressed by ref: ``client`` resolves to the
    installed :class:`FederatedClient`, ``codec`` to the shared
    :class:`~repro.federated.parameters.StateCodec`, ``global_params`` to
    the broadcast flattened global state and ``update_out`` to this
    client's row of the round's ``(clients, total_params)`` update matrix.
    Only the refs and the parent-spawned round seed cross the task pipe.
    """

    client: StateRef
    codec: StateRef
    global_params: BufferRef
    update_out: BufferRef
    round_seed: np.random.SeedSequence

    def run(self) -> ClientUpdate:
        """Execute the round; the flattened update lands in ``update_out``.

        The returned :class:`ClientUpdate` carries the metrics only (its
        ``update`` dict is empty): the caller rebuilds the state delta from
        the shared update matrix, so no parameter bytes ride the result
        pipe.
        """
        client: FederatedClient = self.client.resolve()
        codec: StateCodec = self.codec.resolve()
        # The broadcast buffer is only valid for the duration of the round;
        # decoding a copy detaches the update computation from it.
        global_state = codec.decode(np.array(self.global_params.resolve(), copy=True))
        update = client.local_update(global_state, rng=np.random.default_rng(self.round_seed))
        codec.encode(update.update, out=self.update_out.resolve())
        update.update = {}
        return update


def run_client_round(task: ClientRoundTask) -> ClientUpdate:
    """Module-level entry point for the resident-state round transport."""
    return task.run()
