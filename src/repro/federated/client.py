"""The client side of federated detector training.

A :class:`FederatedClient` owns a private feature matrix / label vector (its
device's traffic, already featurised) and can run a local optimisation pass
starting from the globally broadcast parameters.  It supports plain FedAvg
local SGD and the FedProx proximal term, and reports the update
(``local - global``) together with its example count so the server can
weight contributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.federated.parameters import StateDict, copy_state, state_subtract
from repro.neural.losses import CrossEntropy
from repro.neural.network import Sequential
from repro.neural.optimizers import SGD

__all__ = ["ClientUpdate", "FederatedClient"]


@dataclass
class ClientUpdate:
    """What a client sends back to the server after local training."""

    client_id: str
    update: StateDict
    n_examples: int
    local_loss: float
    metrics: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_examples <= 0:
            raise ValueError("n_examples must be positive")


class FederatedClient:
    """A device holding private labelled traffic for detector training."""

    def __init__(
        self,
        client_id: str,
        features: np.ndarray,
        labels: np.ndarray,
        model_fn: Callable[[], Sequential],
        learning_rate: float = 0.05,
        batch_size: int = 64,
        local_epochs: int = 1,
        proximal_mu: float = 0.0,
        seed: int = 0,
    ) -> None:
        """Parameters
        ----------
        model_fn:
            Zero-argument factory producing the shared model architecture.
            Every client and the server must use the same factory so state
            dictionaries are exchangeable.
        proximal_mu:
            FedProx proximal coefficient; 0 recovers plain FedAvg local SGD.
        """
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=int)
        if len(features) == 0:
            raise ValueError(f"client {client_id!r} has no local examples")
        if len(features) != len(labels):
            raise ValueError("features and labels must have the same length")
        if learning_rate <= 0 or batch_size <= 0 or local_epochs <= 0:
            raise ValueError("learning_rate, batch_size and local_epochs must be positive")
        if proximal_mu < 0:
            raise ValueError("proximal_mu must be non-negative")
        self.client_id = client_id
        self.features = features
        self.labels = labels
        self.model_fn = model_fn
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.local_epochs = local_epochs
        self.proximal_mu = proximal_mu
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    @property
    def n_examples(self) -> int:
        return len(self.features)

    def label_distribution(self) -> dict[int, float]:
        """Share of each class in the local data (useful to inspect skew)."""
        values, counts = np.unique(self.labels, return_counts=True)
        total = counts.sum()
        return {int(v): float(c) / total for v, c in zip(values, counts)}

    # ------------------------------------------------------------------ #
    def local_update(self, global_state: StateDict) -> ClientUpdate:
        """Run local training from ``global_state`` and return the delta."""
        model = self.model_fn()
        model.load_state_dict(copy_state(global_state))
        reference_params: list[np.ndarray] | None = None
        if self.proximal_mu > 0:
            reference_model = self.model_fn()
            reference_model.load_state_dict(copy_state(global_state))
            reference_params = [param for param, _ in reference_model.parameters()]

        optimizer = SGD(model.parameters(), lr=self.learning_rate)
        loss_fn = CrossEntropy()
        last_loss = 0.0
        for _ in range(self.local_epochs):
            order = self.rng.permutation(self.n_examples)
            for start in range(0, self.n_examples, self.batch_size):
                batch = order[start : start + self.batch_size]
                logits = model.forward(self.features[batch], training=True)
                last_loss = float(loss_fn.forward(logits, self.labels[batch]))
                model.zero_grad()
                model.backward(loss_fn.backward())
                if reference_params is not None:
                    self._add_proximal_gradient(model, reference_params)
                optimizer.step()

        local_state = model.state_dict()
        update = state_subtract(local_state, global_state)
        accuracy = self._local_accuracy(model)
        return ClientUpdate(
            client_id=self.client_id,
            update=update,
            n_examples=self.n_examples,
            local_loss=last_loss,
            metrics={"local_accuracy": accuracy},
        )

    def evaluate(self, state: StateDict, features: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy of the given parameters on an arbitrary labelled set."""
        model = self.model_fn()
        model.load_state_dict(copy_state(state))
        predictions = model.forward(np.asarray(features, dtype=np.float64), training=False)
        return float((predictions.argmax(axis=1) == np.asarray(labels, dtype=int)).mean())

    # ------------------------------------------------------------------ #
    def _add_proximal_gradient(
        self, model: Sequential, reference_params: list[np.ndarray]
    ) -> None:
        """Add the FedProx term ``mu * (w - w_global)`` to the parameter grads.

        ``reference_params`` comes from a second model instance built by the
        same factory and loaded with the global state, so the parameter lists
        are aligned by construction.
        """
        pairs = model.parameters()
        if len(pairs) != len(reference_params):
            raise ValueError("model and reference parameter lists are misaligned")
        for (param, grad), reference in zip(pairs, reference_params):
            grad += self.proximal_mu * (param - reference)

    def _local_accuracy(self, model: Sequential) -> float:
        predictions = model.forward(self.features, training=False).argmax(axis=1)
        return float((predictions == self.labels).mean())
