"""Differentially-private federated averaging (DP-FedAvg).

The paper's future-work section proposes "developing secure aggregation
protocols and differential privacy mechanisms to protect individual data
contributions" when federating KiNETGAN.  This module implements the
client-level DP-FedAvg recipe of McMahan et al.:

1. every selected client's update (``local - global``) is clipped to a fixed
   L2 norm,
2. the server adds Gaussian noise calibrated to that clipping norm to the
   *average* update,
3. the privacy loss is tracked with the Renyi-DP accountant
   (:mod:`repro.privacy.accountant`), with the client sampling fraction as
   the subsampling rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.federated.parameters import StateDict, clip_state_norm
from repro.privacy.accountant import RDPAccountant

__all__ = ["DPFedAvgConfig", "DPFedAvgMechanism"]


@dataclass(frozen=True)
class DPFedAvgConfig:
    """Knobs of client-level DP-FedAvg.

    Attributes
    ----------
    clip_norm:
        Maximum L2 norm of a single client update (the sensitivity of the
        per-client contribution).
    noise_multiplier:
        Ratio of the Gaussian noise standard deviation to ``clip_norm``;
        larger means more privacy and more distortion.
    delta:
        Target delta of the reported ``(epsilon, delta)`` guarantee.
    """

    clip_norm: float = 1.0
    noise_multiplier: float = 1.0
    delta: float = 1e-5

    def __post_init__(self) -> None:
        if self.clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if self.noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        if not 0.0 < self.delta < 1.0:
            raise ValueError("delta must be in (0, 1)")


class DPFedAvgMechanism:
    """Stateful clip-and-noise mechanism used by the federated server."""

    def __init__(self, config: DPFedAvgConfig, rng: np.random.Generator | None = None) -> None:
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng()
        self.accountant = RDPAccountant()
        self._clip_events: list[float] = []

    # ------------------------------------------------------------------ #
    def clip_update(self, update: StateDict) -> StateDict:
        """Clip one client update to the configured norm (records the norm)."""
        clipped, norm = clip_state_norm(update, self.config.clip_norm)
        self._clip_events.append(norm)
        return clipped

    def noise_average(self, average: StateDict, n_clients: int) -> StateDict:
        """Add calibrated Gaussian noise to the averaged update.

        The averaged update of ``n_clients`` clipped contributions has
        per-client sensitivity ``clip_norm / n_clients``, so the noise
        standard deviation is ``noise_multiplier * clip_norm / n_clients``.
        """
        if n_clients <= 0:
            raise ValueError("n_clients must be positive")
        if self.config.noise_multiplier == 0:
            return average
        std = self.config.noise_multiplier * self.config.clip_norm / n_clients
        # Noise is drawn in float64 (one seeded stream regardless of model
        # dtype) and the sum rounds back to the update's own dtype, so a
        # float32 model's noised average stays float32.
        return {
            key: (value + self.rng.normal(0.0, std, size=value.shape)).astype(
                value.dtype, copy=False
            )
            for key, value in average.items()
        }

    def record_round(self, sample_rate: float) -> None:
        """Account one federated round at the given client-sampling rate."""
        if self.config.noise_multiplier > 0:
            self.accountant.step(
                noise_multiplier=self.config.noise_multiplier,
                sample_rate=sample_rate,
                steps=1,
            )

    # ------------------------------------------------------------------ #
    @property
    def clipped_fraction(self) -> float:
        """Fraction of observed client updates whose norm exceeded the clip."""
        if not self._clip_events:
            return 0.0
        clipped = sum(1 for norm in self._clip_events if norm > self.config.clip_norm)
        return clipped / len(self._clip_events)

    def epsilon(self) -> float:
        """The (epsilon, delta)-DP guarantee spent so far."""
        if self.config.noise_multiplier == 0:
            return float("inf")
        return self.accountant.get_epsilon(self.config.delta)
