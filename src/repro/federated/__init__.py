"""Federated learning for distributed NIDS (the paper's future-work agenda).

The paper's conclusion sketches three extensions this subpackage implements:

* **federated detector training** -- devices jointly train one intrusion
  detector by exchanging only model weights
  (:class:`FederatedClient` / :class:`FederatedServer`,
  :class:`FederatedNIDSSimulation`);
* **secure aggregation** -- simulated pairwise-masking so the coordinator
  only ever sees sums of updates (:class:`SecureAggregationSession`);
* **differential privacy for contributions** -- client-level DP-FedAvg with
  Renyi-DP accounting (:class:`DPFedAvgConfig`, :class:`DPFedAvgMechanism`);
* **federated KiNETGAN** -- the generative model itself is trained across
  sites with weight averaging, so synthetic data can be produced jointly
  without any traffic leaving a device (:class:`FederatedKiNETGAN`).
"""

from repro.federated.aggregation import (
    SecureAggregationSession,
    fedavg_aggregate,
    median_aggregate,
    safe_mean,
    trimmed_mean_aggregate,
)
from repro.federated.client import (
    ClientPayload,
    ClientUpdate,
    FederatedClient,
    run_client_payload,
)
from repro.federated.dp import DPFedAvgConfig, DPFedAvgMechanism
from repro.federated.kinetgan import (
    FederatedKiNETGAN,
    FederatedKiNETGANRound,
    FederatedKiNETGANSite,
)
from repro.federated.parameters import (
    StateCodec,
    StateDict,
    clip_state_norm,
    copy_state,
    flatten_state,
    state_add,
    state_l2_norm,
    state_scale,
    state_subtract,
    unflatten_state,
    weighted_average,
    zeros_like_state,
)
from repro.federated.partition import dirichlet_partition, iid_partition, label_skew_partition
from repro.federated.server import FederatedHistory, FederatedRound, FederatedServer
from repro.federated.simulation import (
    DetectorFactory,
    FederatedNIDSResult,
    FederatedNIDSSimulation,
)

__all__ = [
    "StateCodec",
    "StateDict",
    "copy_state",
    "zeros_like_state",
    "state_add",
    "state_subtract",
    "state_scale",
    "state_l2_norm",
    "clip_state_norm",
    "weighted_average",
    "flatten_state",
    "unflatten_state",
    "fedavg_aggregate",
    "trimmed_mean_aggregate",
    "median_aggregate",
    "safe_mean",
    "SecureAggregationSession",
    "DPFedAvgConfig",
    "DPFedAvgMechanism",
    "ClientPayload",
    "ClientUpdate",
    "FederatedClient",
    "run_client_payload",
    "DetectorFactory",
    "FederatedRound",
    "FederatedHistory",
    "FederatedServer",
    "iid_partition",
    "label_skew_partition",
    "dirichlet_partition",
    "FederatedKiNETGANSite",
    "FederatedKiNETGANRound",
    "FederatedKiNETGAN",
    "FederatedNIDSResult",
    "FederatedNIDSSimulation",
]
