"""The federated server: round orchestration, aggregation, evaluation.

:class:`FederatedServer` drives the classic synchronous FL loop the paper's
future-work section sketches for distributed NIDS: broadcast the global
detector, let each selected device train locally on traffic it cannot share,
aggregate the updates (optionally through simulated secure aggregation and a
client-level DP mechanism) and repeat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.federated.aggregation import (
    SecureAggregationSession,
    fedavg_aggregate,
    median_aggregate,
    safe_mean,
    trimmed_mean_aggregate,
)
from repro.federated.client import (
    ClientRoundTask,
    ClientUpdate,
    FederatedClient,
    run_client_payload,
    run_client_round,
)
from repro.federated.dp import DPFedAvgConfig, DPFedAvgMechanism
from repro.federated.parameters import StateCodec, StateDict, copy_state, state_add, state_scale
from repro.neural.network import Sequential
from repro.runtime import Executor, map_with_quorum, resolve_executor

__all__ = ["FederatedRound", "FederatedHistory", "FederatedServer"]

#: Round transports selectable on the server.
TRANSPORTS = ("resident", "payload")

#: Aggregation rules selectable by name.
AGGREGATORS: dict[str, Callable[..., StateDict]] = {
    "fedavg": fedavg_aggregate,
    "trimmed_mean": trimmed_mean_aggregate,
    "median": median_aggregate,
}


class _ResidentTransport:
    """Parent-side bookkeeping of the resident-state round transport.

    Installed once per server/executor pair: every client (its partition
    and config) plus the shared :class:`StateCodec`, one broadcast buffer
    for the flattened global state and one ``(clients, total_params)``
    matrix the workers write their flattened updates into.  Under the
    process executor all four live in shared memory, so a round's
    parameter traffic never touches the task pipe; under serial/thread
    executors the refs resolve to the parent's own objects and arrays.
    """

    def __init__(
        self, executor: Executor, clients: list[FederatedClient], template: StateDict
    ) -> None:
        self.executor = executor
        self.codec = StateCodec(template)
        self.codec_ref = executor.install(self.codec)
        self.client_refs = [executor.install(client) for client in clients]
        # Buffers inherit the codec's transport dtype: float32 models ship
        # (and shared-memory map) half the bytes per round.
        self.global_buffer = executor.shared_array((self.codec.dim,), dtype=self.codec.dtype)
        self.update_buffer = executor.shared_array(
            (len(clients), self.codec.dim), dtype=self.codec.dtype
        )

    def close(self) -> None:
        for ref in self.client_refs:
            self.executor.evict(ref)
        self.client_refs = []
        self.executor.evict(self.codec_ref)
        self.global_buffer.close()
        self.update_buffer.close()


@dataclass
class FederatedRound:
    """Summary of one federated round."""

    round_index: int
    participants: list[str]
    mean_client_loss: float
    mean_client_accuracy: float
    global_accuracy: float | None = None
    epsilon: float | None = None
    #: Clients selected for the round whose work units failed (crashed,
    #: timed out, dropped) after exhausting their retries.  The round
    #: aggregated over the surviving quorum only.
    dropped: list[str] = field(default_factory=list)


@dataclass
class FederatedHistory:
    """Per-round traces of a federated run."""

    rounds: list[FederatedRound] = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def final_accuracy(self) -> float | None:
        for round_info in reversed(self.rounds):
            if round_info.global_accuracy is not None:
                return round_info.global_accuracy
        return None

    def accuracies(self) -> list[float]:
        return [r.global_accuracy for r in self.rounds if r.global_accuracy is not None]


class FederatedServer:
    """Synchronous federated-averaging server over :class:`FederatedClient` s."""

    def __init__(
        self,
        model_fn: Callable[[], Sequential],
        clients: list[FederatedClient],
        aggregator: str = "fedavg",
        client_fraction: float = 1.0,
        server_lr: float = 1.0,
        dp_config: DPFedAvgConfig | None = None,
        secure_aggregation: bool = False,
        seed: int = 0,
        executor: Executor | str | int | None = None,
        transport: str = "resident",
        min_clients: int = 1,
        task_timeout: float | None = None,
        task_retries: int = 0,
        retry_backoff: float = 0.0,
    ) -> None:
        """Parameters
        ----------
        model_fn:
            The shared architecture factory (same one the clients use).
        aggregator:
            ``"fedavg"`` (example-weighted), ``"trimmed_mean"`` or ``"median"``.
        client_fraction:
            Fraction of clients selected per round (at least one is always
            selected).
        server_lr:
            Scale applied to the aggregated update before it is added to the
            global model (1.0 = plain FedAvg).
        dp_config:
            When given, client updates are clipped and the averaged update is
            noised per DP-FedAvg; the spent epsilon is reported per round.
        secure_aggregation:
            Route updates through the simulated pairwise-masking protocol.
            Only meaningful with the unweighted aggregators; with FedAvg the
            weighting is applied before masking.
        executor:
            How client rounds run: ``None``/``"serial"`` (default) trains
            participants in-process, ``int N > 1`` / ``"process[:N]"`` fans
            them out over a process pool, ``"thread[:N]"`` over a thread
            pool (see :func:`repro.runtime.resolve_executor`).  Seeded
            results are bit-identical in every case.
        transport:
            ``"resident"`` (default) installs clients into the execution
            plane once and ships only refs, round seeds and flattened
            parameter buffers per round; ``"payload"`` re-ships the whole
            :class:`~repro.federated.client.ClientPayload` every round
            (the pre-resident reference transport).  Seeded results are
            bit-identical on either transport.
        min_clients:
            Quorum: the minimum number of client rounds that must survive
            (after retries) for a round to aggregate.  Fewer survivors
            raise :class:`~repro.runtime.QuorumError` and leave the global
            state untouched.  Dropped clients are recorded per round and
            re-weighted away exactly like ``client_fraction``
            non-participants.
        task_timeout:
            Per-client-round deadline in seconds (``None`` = unbounded).
        task_retries:
            How many times a failed client round is replayed before the
            client is dropped from the round.  Replays re-run the same
            payload with the same parent-spawned round seed, so a
            recovered round is bit-identical to a fault-free one.
        retry_backoff:
            Base seconds of the exponential backoff between replays.
        """
        if not clients:
            raise ValueError("need at least one client")
        if aggregator not in AGGREGATORS:
            raise ValueError(f"unknown aggregator {aggregator!r}; options: {sorted(AGGREGATORS)}")
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}; options: {TRANSPORTS}")
        if not 0.0 < client_fraction <= 1.0:
            raise ValueError("client_fraction must be in (0, 1]")
        if server_lr <= 0:
            raise ValueError("server_lr must be positive")
        if min_clients < 1:
            raise ValueError("min_clients must be at least 1")
        if task_retries < 0:
            raise ValueError("task_retries must be non-negative")
        self.min_clients = min_clients
        self.task_timeout = task_timeout
        self.task_retries = task_retries
        self.retry_backoff = retry_backoff
        self.model_fn = model_fn
        self.clients = list(clients)
        self.aggregator = aggregator
        self.client_fraction = client_fraction
        self.server_lr = server_lr
        self.secure_aggregation = secure_aggregation
        self.executor = resolve_executor(executor)
        self.transport = transport
        self.rng = np.random.default_rng(seed)

        self.global_model = model_fn()
        self.global_state: StateDict = self.global_model.state_dict()
        self.dp_mechanism = DPFedAvgMechanism(dp_config, rng=self.rng) if dp_config else None
        self.history = FederatedHistory()
        self._transport_state: _ResidentTransport | None = None

    def release_transport(self) -> None:
        """Release the resident round transport but keep the executor open.

        For servers sharing a caller-owned executor (the federated NIDS
        simulation runs several servers over one pool): frees the installed
        clients and shared buffers without shutting the workers down.
        """
        if self._transport_state is not None:
            self._transport_state.close()
            self._transport_state = None

    def close(self) -> None:
        """Release the round transport and the executor's worker pool."""
        self.release_transport()
        self.executor.close()

    def __enter__(self) -> "FederatedServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _select_indices(self) -> list[int]:
        """Sample the participant indices of one round (sorted)."""
        count = max(1, int(round(self.client_fraction * len(self.clients))))
        indices = self.rng.choice(len(self.clients), size=count, replace=False)
        return sorted(int(i) for i in indices)

    def select_clients(self) -> list[FederatedClient]:
        """Sample the participants of one round."""
        return [self.clients[i] for i in self._select_indices()]

    def _ensure_transport(self) -> _ResidentTransport:
        """Install clients / codec / buffers on first resident round."""
        if self._transport_state is None:
            self._transport_state = _ResidentTransport(
                self.executor, self.clients, self.global_state
            )
        return self._transport_state

    def _dispatch(
        self, fn: Callable, payloads: list, client_ids: list[str]
    ) -> tuple[list[tuple[int, ClientUpdate]], list[str]]:
        """Fan one round's work units out; keep survivors, enforce quorum.

        Returns ``(survivors, dropped)`` where survivors are
        ``(slot, update)`` pairs in submission order (the slot indexes the
        round's shared update matrix) and ``dropped`` lists the client ids
        whose tasks still failed after ``task_retries`` replays.  Raises
        :class:`~repro.runtime.QuorumError` -- before any state is touched
        -- when fewer than ``min_clients`` survive.  The fault-free fast
        path is the plain :meth:`Executor.map` the pre-resilience server
        used.
        """
        return map_with_quorum(
            self.executor,
            fn,
            payloads,
            client_ids,
            min_survivors=self.min_clients,
            timeout=self.task_timeout,
            retries=self.task_retries,
            backoff=self.retry_backoff,
            unit="client",
        )

    def run_round(
        self,
        eval_features: np.ndarray | None = None,
        eval_labels: np.ndarray | None = None,
    ) -> FederatedRound:
        """One synchronous round: select, train locally, aggregate, update.

        Local training is fanned out through the server's executor.  On the
        default resident transport each participant is addressed by its
        installed ref and the round ships only a :class:`ClientRoundTask`
        (refs + a round seed spawned here, before dispatch); the broadcast
        parameters and the update matrix travel through shared buffers.  On
        the legacy payload transport the whole :class:`ClientPayload` is
        re-pickled per round.  Serial, thread and process execution run
        exactly the same code on exactly the same streams either way.
        """
        indices = self._select_indices()
        participants = [self.clients[i] for i in indices]
        if self.transport == "resident":
            updates, dropped = self._run_resident_round(indices)
        else:
            payloads = [
                client.make_payload(copy_state(self.global_state)) for client in participants
            ]
            survivors, dropped = self._dispatch(
                run_client_payload, payloads, [c.client_id for c in participants]
            )
            updates = [update for _, update in survivors]

        if self.dp_mechanism is not None:
            for update in updates:
                update.update = self.dp_mechanism.clip_update(update.update)

        aggregated = self._aggregate(updates)

        if self.dp_mechanism is not None:
            aggregated = self.dp_mechanism.noise_average(aggregated, n_clients=len(updates))
            self.dp_mechanism.record_round(sample_rate=len(updates) / len(self.clients))

        self.global_state = state_add(
            self.global_state, state_scale(aggregated, self.server_lr)
        )
        self.global_model.load_state_dict(copy_state(self.global_state))

        global_accuracy = None
        if eval_features is not None and eval_labels is not None:
            global_accuracy = self.evaluate(eval_features, eval_labels)

        round_info = FederatedRound(
            round_index=self.history.n_rounds,
            participants=[u.client_id for u in updates],
            mean_client_loss=safe_mean([u.local_loss for u in updates]),
            mean_client_accuracy=safe_mean(
                [u.metrics["local_accuracy"] for u in updates if "local_accuracy" in u.metrics]
            ),
            global_accuracy=global_accuracy,
            epsilon=self.dp_mechanism.epsilon() if self.dp_mechanism else None,
            dropped=dropped,
        )
        self.history.rounds.append(round_info)
        return round_info

    def _run_resident_round(
        self, indices: list[int]
    ) -> tuple[list[ClientUpdate], list[str]]:
        """Dispatch one round over the resident transport and rebuild updates.

        The workers leave their flattened updates in the shared
        ``(clients, total_params)`` matrix; rows are decoded (copied out of
        the shared buffer) back into state dictionaries here so the
        aggregation / DP / secure-aggregation paths below see exactly what
        the payload transport would have produced, bit for bit.
        """
        transport = self._ensure_transport()
        codec = transport.codec
        codec.encode(self.global_state, out=transport.global_buffer.array)
        tasks = [
            ClientRoundTask(
                client=transport.client_refs[index],
                codec=transport.codec_ref,
                global_params=transport.global_buffer.ref(),
                update_out=transport.update_buffer.ref(slot),
                round_seed=self.clients[index].spawn_round_seed(),
            )
            for slot, index in enumerate(indices)
        ]
        survivors, dropped = self._dispatch(
            run_client_round, tasks, [self.clients[i].client_id for i in indices]
        )
        updates: list[ClientUpdate] = []
        for slot, update in survivors:
            update.update = codec.decode(
                np.array(transport.update_buffer.array[slot], copy=True)
            )
            updates.append(update)
        return updates, dropped

    def run(
        self,
        num_rounds: int,
        eval_features: np.ndarray | None = None,
        eval_labels: np.ndarray | None = None,
    ) -> FederatedHistory:
        """Run ``num_rounds`` rounds and return the history."""
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        for _ in range(num_rounds):
            self.run_round(eval_features, eval_labels)
        return self.history

    # ------------------------------------------------------------------ #
    def _aggregate(self, updates: list[ClientUpdate]) -> StateDict:
        states = [update.update for update in updates]
        if self.secure_aggregation:
            # Weight before masking so the masked sum already reflects FedAvg
            # weights, then divide by the total weight after unmasking.
            weights = (
                [float(update.n_examples) for update in updates]
                if self.aggregator == "fedavg"
                else [1.0] * len(updates)
            )
            total_weight = sum(weights)
            session = SecureAggregationSession(
                client_ids=[update.client_id for update in updates],
                template=states[0],
                seed=int(self.rng.integers(0, 2**31 - 1)),
            )
            for update, weight in zip(updates, weights):
                session.submit(update.client_id, state_scale(update.update, weight))
            return state_scale(session.aggregate(), 1.0 / total_weight)

        if self.aggregator == "fedavg":
            return AGGREGATORS["fedavg"](states, [float(u.n_examples) for u in updates])
        return AGGREGATORS[self.aggregator](states)

    # ------------------------------------------------------------------ #
    def evaluate(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy of the current global model on a labelled set."""
        predictions = self.global_model.forward(
            np.asarray(features, dtype=np.float64), training=False
        ).argmax(axis=1)
        return float((predictions == np.asarray(labels, dtype=int)).mean())

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Class predictions of the current global model."""
        logits = self.global_model.forward(np.asarray(features, dtype=np.float64), training=False)
        return logits.argmax(axis=1)

    def epsilon(self) -> float | None:
        """Total DP budget spent so far (None when DP is disabled)."""
        return self.dp_mechanism.epsilon() if self.dp_mechanism else None
