"""Federated training of the KiNETGAN generator itself.

The distributed scenario in :mod:`repro.distributed` shares *synthetic rows*;
the paper's future-work section goes one step further and proposes federating
the generative model so that not even synthetic rows need to flow until the
jointly trained generator is ready.  :class:`FederatedKiNETGAN` implements
that: every site trains KiNETGAN locally on its own traffic for a few epochs
per round, only generator / discriminator *weights* are exchanged, and the
coordinator federated-averages them (optionally clipping and noising the
per-site weight updates with DP-FedAvg).

All sites must agree on the transformed feature layout, so the coordinator
fits a single :class:`~repro.tabular.transformer.DataTransformer` on a public
reference table (for example a small schema-conformant calibration sample or
an early synthetic share) and broadcasts it; each site then builds its own
condition sampler over its private table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import KiNETGANConfig
from repro.core.trainer import KiNETGANTrainer
from repro.engine import sampling_rng, seeded_rng
from repro.federated.aggregation import safe_mean
from repro.federated.dp import DPFedAvgConfig, DPFedAvgMechanism
from repro.federated.parameters import (
    StateDict,
    copy_state,
    state_add,
    state_subtract,
    weighted_average,
)
from repro.knowledge.builder import build_network_kg
from repro.knowledge.catalog import DomainCatalog
from repro.knowledge.reasoner import KGReasoner
from repro.runtime import Executor, resolve_executor
from repro.tabular.sampler import ConditionSampler
from repro.tabular.table import Table
from repro.tabular.transformer import DataTransformer

__all__ = ["FederatedKiNETGANSite", "FederatedKiNETGANRound", "FederatedKiNETGAN"]


class FederatedKiNETGANSite:
    """One participating site: private traffic plus a local KiNETGAN trainer."""

    def __init__(
        self,
        site_id: str,
        table: Table,
        transformer: DataTransformer,
        config: KiNETGANConfig,
        condition_columns: list[str] | None = None,
        reasoner: KGReasoner | None = None,
        seed: int = 0,
    ) -> None:
        if table.n_rows == 0:
            raise ValueError(f"site {site_id!r} has no local data")
        self.site_id = site_id
        self.table = table
        self.config = config.with_overrides(seed=seed)
        self.sampler = ConditionSampler(
            table=table,
            transformer=transformer,
            conditional_columns=condition_columns,
            uniform_probability=config.uniform_probability,
        )
        self.trainer = KiNETGANTrainer(
            config=self.config,
            transformer=transformer,
            sampler=self.sampler,
            reasoner=reasoner,
        )
        self.transformer = transformer

    # ------------------------------------------------------------------ #
    @property
    def n_records(self) -> int:
        return self.table.n_rows

    def get_state(self) -> tuple[StateDict, StateDict]:
        """Current (generator, discriminator) network states."""
        return (
            self.trainer.generator.network.state_dict(),
            self.trainer.discriminator.network.state_dict(),
        )

    def set_state(self, generator_state: StateDict, discriminator_state: StateDict) -> None:
        """Load broadcast global states into the local networks."""
        self.trainer.generator.network.load_state_dict(copy_state(generator_state))
        self.trainer.discriminator.network.load_state_dict(copy_state(discriminator_state))

    def train_local(self, epochs: int) -> dict[str, float]:
        """Run ``epochs`` local KiNETGAN epochs on the private table."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        original_epochs = self.trainer.config.epochs
        self.trainer.config = self.trainer.config.with_overrides(epochs=epochs)
        try:
            history = self.trainer.fit(self.table)
        finally:
            self.trainer.config = self.trainer.config.with_overrides(epochs=original_epochs)
        return history.last()

    def sample(self, n: int, rng: np.random.Generator) -> Table:
        """Synthetic rows generated locally from the current weights."""
        matrix = self.trainer.generate_matrix(n, rng=rng)
        return self.transformer.inverse_transform(matrix)

    def absorb(self, trained: "FederatedKiNETGANSite") -> None:
        """Adopt the state of a trained (possibly round-tripped) copy.

        When a round runs on a process pool the worker trains a pickled
        copy; absorbing its attributes into *this* object keeps every
        external reference (for example the site handle ``add_site``
        returned) pointing at the trained state.  A no-op when the copy is
        this very object, as under the serial executor.
        """
        if trained is self:
            return
        self.__dict__.update(trained.__dict__)


@dataclass
class _SiteTask:
    """One site's local-training slice of a round (executor work unit).

    The *whole site* is shipped and shipped back: its trainer carries state
    that must persist across rounds (Adam moments, the training RNG, the
    history), so the worker returns the updated site and the coordinator
    absorbs it into its existing site object (keeping external site handles
    valid).  Under the serial executor this is the identity -- the same
    object is mutated in place, exactly as the pre-runtime loop did.
    """

    site: FederatedKiNETGANSite
    generator_state: StateDict
    discriminator_state: StateDict
    local_epochs: int


def _run_site_task(task: _SiteTask) -> tuple[FederatedKiNETGANSite, dict[str, float]]:
    """Module-level worker: broadcast, train locally, return the site."""
    site = task.site
    site.set_state(task.generator_state, task.discriminator_state)
    metrics = site.train_local(task.local_epochs)
    return site, metrics


@dataclass
class FederatedKiNETGANRound:
    """Summary of one federated KiNETGAN round."""

    round_index: int
    participants: list[str]
    mean_generator_loss: float
    mean_discriminator_loss: float
    epsilon: float | None = None


class FederatedKiNETGAN:
    """Coordinator for federated KiNETGAN weight averaging.

    Typical use::

        fed = FederatedKiNETGAN(
            reference_table=calibration_sample,
            catalog=bundle.catalog,
            condition_columns=bundle.condition_columns,
            config=KiNETGANConfig(epochs=1),     # epochs ignored, see local_epochs
        )
        fed.add_site("hospital-a", table_a)
        fed.add_site("hospital-b", table_b)
        fed.run(num_rounds=10, local_epochs=2)
        synthetic = fed.sample(5000)
    """

    def __init__(
        self,
        reference_table: Table,
        config: KiNETGANConfig | None = None,
        catalog: DomainCatalog | None = None,
        condition_columns: list[str] | None = None,
        dp_config: DPFedAvgConfig | None = None,
        seed: int = 0,
        executor: Executor | str | int | None = None,
        client_fraction: float = 1.0,
    ) -> None:
        """``client_fraction`` subsamples the participating sites per round
        (the knob the federated detector server already has): each round
        trains ``max(1, round(fraction * n_sites))`` sites drawn without
        replacement from the coordinator's seeded RNG.  At the default 1.0
        no draw is consumed, so existing seeded runs replay bit-for-bit."""
        if not 0.0 < client_fraction <= 1.0:
            raise ValueError("client_fraction must be in (0, 1]")
        self.config = config if config is not None else KiNETGANConfig()
        self.condition_columns = condition_columns
        self.client_fraction = client_fraction
        self.seed = seed
        self.rng = seeded_rng(seed)
        self.executor = resolve_executor(executor)
        self.transformer = DataTransformer(
            max_modes=self.config.max_modes,
            continuous_encoding=self.config.continuous_encoding,
            seed=self.config.seed,
        ).fit(reference_table)
        self.reasoner: KGReasoner | None = None
        if catalog is not None and self.config.use_knowledge_discriminator:
            self.reasoner = KGReasoner(build_network_kg(catalog), field_map=catalog.field_map)
        self.sites: list[FederatedKiNETGANSite] = []
        self.dp_generator = DPFedAvgMechanism(dp_config, rng=self.rng) if dp_config else None
        self.dp_discriminator = DPFedAvgMechanism(dp_config, rng=self.rng) if dp_config else None
        self.rounds: list[FederatedKiNETGANRound] = []
        self._global_generator: StateDict | None = None
        self._global_discriminator: StateDict | None = None

    def close(self) -> None:
        """Release the executor's worker pool (no-op for the serial one)."""
        self.executor.close()

    # ------------------------------------------------------------------ #
    def add_site(self, site_id: str, table: Table) -> FederatedKiNETGANSite:
        """Register a participating site holding ``table`` privately."""
        if any(site.site_id == site_id for site in self.sites):
            raise ValueError(f"duplicate site id {site_id!r}")
        site = FederatedKiNETGANSite(
            site_id=site_id,
            table=table,
            transformer=self.transformer,
            config=self.config,
            condition_columns=self._usable_condition_columns(table),
            reasoner=self.reasoner,
            seed=self.seed + len(self.sites),
        )
        self.sites.append(site)
        return site

    def _usable_condition_columns(self, table: Table) -> list[str] | None:
        if self.condition_columns is None:
            return None
        usable = [name for name in self.condition_columns if name in table.schema]
        return usable or None

    # ------------------------------------------------------------------ #
    @property
    def n_sites(self) -> int:
        return len(self.sites)

    def _require_sites(self) -> None:
        if len(self.sites) < 2:
            raise RuntimeError("federated training needs at least two sites")

    def _initialise_global(self) -> None:
        if self._global_generator is None:
            generator_state, discriminator_state = self.sites[0].get_state()
            self._global_generator = copy_state(generator_state)
            self._global_discriminator = copy_state(discriminator_state)

    def _select_sites(self) -> list[int]:
        """Seeded per-round site subset (indices into ``self.sites``).

        At ``client_fraction == 1.0`` every site participates and *no* RNG
        draw is consumed, keeping pre-subsampling seeded runs bit-identical.
        Below 1.0 the subset is a pure function of the coordinator seed and
        the round index, so serial and process-pool runs select the same
        sites (the selection happens in the parent, before dispatch).
        """
        if self.client_fraction >= 1.0:
            return list(range(len(self.sites)))
        count = max(1, int(round(self.client_fraction * len(self.sites))))
        indices = self.rng.choice(len(self.sites), size=count, replace=False)
        return sorted(int(i) for i in indices)

    def run_round(self, local_epochs: int = 1) -> FederatedKiNETGANRound:
        """One round: select sites, broadcast, local training, (DP) aggregation.

        Sites train through the coordinator's executor.  Each work unit
        carries the whole site (trainer optimizer moments and RNG included),
        and the coordinator's site absorbs the returned copy, so a round on
        the process pool is bit-identical to a serial one and existing site
        handles keep pointing at the trained state.
        """
        self._require_sites()
        self._initialise_global()
        assert self._global_generator is not None and self._global_discriminator is not None

        selected = self._select_sites()
        tasks = [
            _SiteTask(
                site=self.sites[index],
                generator_state=self._global_generator,
                discriminator_state=self._global_discriminator,
                local_epochs=local_epochs,
            )
            for index in selected
        ]
        results = self.executor.map(_run_site_task, tasks)

        generator_states: list[StateDict] = []
        discriminator_states: list[StateDict] = []
        weights: list[float] = []
        generator_losses: list[float] = []
        discriminator_losses: list[float] = []

        for index, (site, metrics) in zip(selected, results):
            self.sites[index].absorb(site)
            generator_losses.append(metrics.get("generator_loss", float("nan")))
            discriminator_losses.append(metrics.get("discriminator_loss", float("nan")))
            generator_state, discriminator_state = site.get_state()
            generator_states.append(generator_state)
            discriminator_states.append(discriminator_state)
            weights.append(float(site.n_records))

        new_generator = self._aggregate(
            generator_states, weights, self._global_generator, self.dp_generator
        )
        new_discriminator = self._aggregate(
            discriminator_states, weights, self._global_discriminator, self.dp_discriminator
        )
        self._global_generator = new_generator
        self._global_discriminator = new_discriminator

        epsilon = None
        if self.dp_generator is not None:
            sample_rate = len(selected) / len(self.sites)
            self.dp_generator.record_round(sample_rate=sample_rate)
            self.dp_discriminator.record_round(sample_rate=sample_rate)
            epsilon = self.dp_generator.epsilon() + self.dp_discriminator.epsilon()

        round_info = FederatedKiNETGANRound(
            round_index=len(self.rounds),
            participants=[self.sites[index].site_id for index in selected],
            mean_generator_loss=safe_mean(generator_losses),
            mean_discriminator_loss=safe_mean(discriminator_losses),
            epsilon=epsilon,
        )
        self.rounds.append(round_info)
        return round_info

    def _aggregate(
        self,
        states: list[StateDict],
        weights: list[float],
        global_state: StateDict,
        dp_mechanism: DPFedAvgMechanism | None,
    ) -> StateDict:
        if dp_mechanism is None:
            return weighted_average(states, weights)
        # DP path: clip each site's *delta* and noise the averaged delta.
        deltas = [
            dp_mechanism.clip_update(state_subtract(state, global_state)) for state in states
        ]
        averaged = weighted_average(deltas, weights)
        averaged = dp_mechanism.noise_average(averaged, n_clients=len(deltas))
        return state_add(global_state, averaged)

    def run(self, num_rounds: int, local_epochs: int = 1) -> list[FederatedKiNETGANRound]:
        """Run several rounds; returns the per-round summaries."""
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        for _ in range(num_rounds):
            self.run_round(local_epochs=local_epochs)
        return self.rounds

    # ------------------------------------------------------------------ #
    def global_states(self) -> tuple[StateDict, StateDict]:
        """The current global (generator, discriminator) states."""
        if self._global_generator is None or self._global_discriminator is None:
            raise RuntimeError("run at least one round first")
        return copy_state(self._global_generator), copy_state(self._global_discriminator)

    def sample(self, n: int, rng: np.random.Generator | None = None) -> Table:
        """Pooled synthetic rows generated at the sites with the global weights.

        Each site generates a share proportional to its data size using its
        *local* condition distribution, which is exactly how deployment would
        look: the coordinator never needs a condition distribution of its own.
        """
        self._require_sites()
        if n <= 0:
            raise ValueError("n must be positive")
        if self._global_generator is None:
            raise RuntimeError("run at least one round before sampling")
        rng = rng if rng is not None else sampling_rng(self.seed)
        total_records = sum(site.n_records for site in self.sites)
        pooled: Table | None = None
        remaining = n
        for i, site in enumerate(self.sites):
            if i == len(self.sites) - 1:
                share = remaining
            else:
                share = int(round(n * site.n_records / total_records))
                share = min(share, remaining)
            if share <= 0:
                continue
            site.set_state(self._global_generator, self._global_discriminator)
            local = site.sample(share, rng)
            pooled = local if pooled is None else pooled.concat(local)
            remaining -= share
        assert pooled is not None
        return pooled
